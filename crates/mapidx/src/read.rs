//! The mmap loader and lookup path.
//!
//! Two opens with different trust models:
//!
//! * [`SnapshotIndex::open`] — the serve path. Maps the file lazily,
//!   validates the header (magic, version, CRC) and checks the declared
//!   geometry against the real file length; cost is independent of file
//!   size, which is what makes a 10M-entry restart a millisecond affair.
//! * [`SnapshotIndex::open_verified`] — the distrustful path (tools,
//!   post-crash inspection, property tests). Prefaults the mapping and
//!   additionally runs the full [`BodySum`] pass, refusing any flipped
//!   record or heap byte with a typed [`IndexError::BodyChecksum`].
//!   Also available after a fast open as [`SnapshotIndex::verify`].
//!
//! Either way, nothing in this module panics on untrusted bytes: every
//! lookup is bounds-checked, so even corruption the fast open cannot see
//! (or a hypothetical checksum collision) yields a wrong-but-safe answer,
//! never an out-of-range read.

use crate::format::{
    bucket_of, key_hash, BodySum, Header, IndexError, BUCKET_ENTRY_LEN, HEADER_LEN, RECORD_LEN,
};
use crate::mmap::Mmap;
use freephish_store::tail::TailCursor;
use std::fs::File;
use std::path::Path;

/// An immutable verdict index served from a memory-mapped bake file.
pub struct SnapshotIndex {
    map: Mmap,
    header: Header,
    heap_off: usize,
    buckets_off: usize,
}

impl SnapshotIndex {
    /// Map and validate `path` for serving: header parse, CRC and
    /// geometry checks only. O(1) in file size — pages fault in as
    /// lookups touch them.
    pub fn open(path: impl AsRef<Path>) -> Result<SnapshotIndex, IndexError> {
        SnapshotIndex::open_inner(path.as_ref(), false)
    }

    /// Map `path` prefaulted and additionally verify the body checksum
    /// over every record, heap and bucket byte. One memory-bandwidth
    /// pass; use when the file's integrity is in question.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<SnapshotIndex, IndexError> {
        let idx = SnapshotIndex::open_inner(path.as_ref(), true)?;
        idx.verify()?;
        Ok(idx)
    }

    fn open_inner(path: &Path, populate: bool) -> Result<SnapshotIndex, IndexError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(IndexError::TooSmall { len: file_len });
        }
        let map = if populate {
            Mmap::map_readonly_populated(&file, file_len as usize)?
        } else {
            Mmap::map_readonly(&file, file_len as usize)?
        };
        let bytes = map.as_slice();
        let header = Header::decode(bytes)?;
        let expected = header.expected_len();
        if expected != file_len || header.total_len != file_len {
            return Err(IndexError::LengthMismatch {
                expected: expected.min(header.total_len),
                found: file_len,
            });
        }
        let heap_off = HEADER_LEN + header.entry_count as usize * RECORD_LEN;
        let buckets_off = heap_off + header.keyheap_len as usize;
        Ok(SnapshotIndex {
            map,
            header,
            heap_off,
            buckets_off,
        })
    }

    /// Re-run the body checksum over the live mapping. The write-once +
    /// atomic-rename file contract means a pass here proves the bytes the
    /// bake wrote are the bytes being served.
    pub fn verify(&self) -> Result<(), IndexError> {
        let mut sum = BodySum::new();
        sum.update(&self.map.as_slice()[HEADER_LEN..]);
        let found = sum.finish();
        if found != self.header.body_sum {
            return Err(IndexError::BodyChecksum {
                expected: self.header.body_sum,
                found,
            });
        }
        Ok(())
    }

    /// Look up one URL; `Some(score)` with the exact baked f64 bits.
    pub fn get(&self, url: &str) -> Option<f64> {
        let key = url.as_bytes();
        let hash = key_hash(key);
        let bucket = bucket_of(hash, self.header.bucket_count) as usize;
        let lo = self.bucket_offset(bucket)?;
        let hi = self.bucket_offset(bucket + 1)?;
        if lo > hi || hi > self.header.entry_count as usize {
            return None;
        }
        let bytes = self.map.as_slice();
        let heap = bytes.get(self.heap_off..self.buckets_off)?;
        for i in lo..hi {
            let off = HEADER_LEN + i * RECORD_LEN;
            let rec = bytes.get(off..off + RECORD_LEN)?;
            let rec_hash = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            if rec_hash < hash {
                continue;
            }
            if rec_hash > hash {
                break; // records are hash-sorted within the bucket
            }
            let key_off = u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize;
            let key_len = u32::from_le_bytes(rec[12..16].try_into().unwrap()) as usize;
            if heap.get(key_off..key_off + key_len) == Some(key) {
                return Some(f64::from_bits(u64::from_le_bytes(
                    rec[16..24].try_into().unwrap(),
                )));
            }
        }
        None
    }

    fn bucket_offset(&self, i: usize) -> Option<usize> {
        let off = self.buckets_off + i * BUCKET_ENTRY_LEN;
        let raw = self.map.as_slice().get(off..off + BUCKET_ENTRY_LEN)?;
        Some(u32::from_le_bytes(raw.try_into().unwrap()) as usize)
    }

    /// Number of baked entries.
    pub fn len(&self) -> u64 {
        self.header.entry_count
    }

    /// True when the bake contained no verdicts.
    pub fn is_empty(&self) -> bool {
        self.header.entry_count == 0
    }

    /// Whole-file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.header.total_len
    }

    /// The journal position the bake drained to. A restarting node
    /// resumes its tail follower here instead of replaying the WAL.
    pub fn cursor(&self) -> Option<TailCursor> {
        self.header.cursor
    }

    /// Iterate every baked `(url, score)` pair, in hash order. Keys that
    /// are not valid UTF-8 (impossible for our writer) are skipped.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        let bytes = self.map.as_slice();
        let heap = &bytes[self.heap_off..self.buckets_off];
        (0..self.header.entry_count as usize).filter_map(move |i| {
            let off = HEADER_LEN + i * RECORD_LEN;
            let rec = bytes.get(off..off + RECORD_LEN)?;
            let key_off = u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize;
            let key_len = u32::from_le_bytes(rec[12..16].try_into().unwrap()) as usize;
            let key = std::str::from_utf8(heap.get(key_off..key_off + key_len)?).ok()?;
            let score = f64::from_bits(u64::from_le_bytes(rec[16..24].try_into().unwrap()));
            Some((key, score))
        })
    }
}
