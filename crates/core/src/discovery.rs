//! Discovery channels: *how* anti-phishing crawlers find new attacks, and
//! why FWB hosting starves them (Section 3, "Increased Difficulty of
//! Discovery").
//!
//! Three standard discovery channels are implemented against the simulated
//! world:
//!
//! * [`CtLogWatcher`] — follows the Certificate Transparency stream and
//!   surfaces newly certified domains. Self-hosted phishing *must* obtain a
//!   certificate, so it appears here; FWB sites inherit the service's
//!   certificate and never do.
//! * [`SearchIndexMiner`] — queries the search index for sensitive-
//!   vocabulary pages. Only the small indexed fraction of FWB attacks
//!   (≈4%) is reachable.
//! * [`SocialStreamWatcher`] — the channel FreePhish actually uses: watch
//!   the posts where the lures are shared.
//!
//! [`DiscoveryReport`] measures per-channel recall over a campaign — the
//! quantitative version of the paper's qualitative argument for building a
//! social-stream-based framework.

use crate::campaign::{CampaignRecord, RecordClass};
use crate::world::World;
use freephish_simclock::SimTime;
use std::collections::HashSet;

/// A discovery channel: given the world and the time horizon, which URLs
/// did it surface?
pub trait DiscoveryChannel {
    /// Channel name for reporting.
    fn name(&self) -> &'static str;

    /// URLs surfaced by this channel up to `horizon`.
    fn discovered(
        &self,
        world: &World,
        records: &[CampaignRecord],
        horizon: SimTime,
    ) -> HashSet<String>;
}

/// Watch the CT log for new certificates and derive candidate URLs.
pub struct CtLogWatcher;

impl DiscoveryChannel for CtLogWatcher {
    fn name(&self) -> &'static str {
        "CT-log watcher"
    }

    fn discovered(
        &self,
        world: &World,
        records: &[CampaignRecord],
        horizon: SimTime,
    ) -> HashSet<String> {
        // Domains certified within the horizon.
        let certified: HashSet<String> = world
            .ctlog
            .entries_between(SimTime::ZERO, horizon)
            .into_iter()
            .map(|e| e.domain.clone())
            .collect();
        // A record is discovered when its host matches a certified domain.
        records
            .iter()
            .filter(|r| {
                let host = r
                    .url
                    .strip_prefix("https://")
                    .and_then(|rest| rest.split('/').next())
                    .unwrap_or("");
                certified.iter().any(|d| {
                    if let Some(suffix) = d.strip_prefix("*.") {
                        host == suffix || host.ends_with(&format!(".{suffix}"))
                    } else {
                        host == d
                    }
                })
            })
            .map(|r| r.url.clone())
            .collect()
    }
}

/// Mine the search index for phishing-vocabulary pages.
pub struct SearchIndexMiner;

impl DiscoveryChannel for SearchIndexMiner {
    fn name(&self) -> &'static str {
        "search-index miner"
    }

    fn discovered(
        &self,
        world: &World,
        records: &[CampaignRecord],
        _horizon: SimTime,
    ) -> HashSet<String> {
        records
            .iter()
            .filter(|r| world.search.contains(&r.url))
            .map(|r| r.url.clone())
            .collect()
    }
}

/// Watch the social streams — FreePhish's channel.
pub struct SocialStreamWatcher;

impl DiscoveryChannel for SocialStreamWatcher {
    fn name(&self) -> &'static str {
        "social-stream watcher"
    }

    fn discovered(
        &self,
        world: &World,
        records: &[CampaignRecord],
        horizon: SimTime,
    ) -> HashSet<String> {
        // Everything shared in a post that survived until at least one
        // 10-minute poll observed it.
        records
            .iter()
            .filter(|r| r.posted_at < horizon)
            .filter(|r| {
                world
                    .feed(r.platform)
                    .post(r.post)
                    .map(|p| {
                        let first_poll = crate::pipeline::quantize_to_poll(r.posted_at);
                        p.is_visible(first_poll) && first_poll < horizon
                    })
                    .unwrap_or(false)
            })
            .map(|r| r.url.clone())
            .collect()
    }
}

/// Per-channel recall over the two populations.
#[derive(Debug, Clone)]
pub struct DiscoveryReport {
    /// Channel name.
    pub channel: &'static str,
    /// Fraction of FWB phishing URLs the channel surfaced.
    pub fwb_recall: f64,
    /// Fraction of self-hosted phishing URLs the channel surfaced.
    pub self_hosted_recall: f64,
}

/// Measure every channel's recall over a campaign.
pub fn discovery_report(
    world: &World,
    records: &[CampaignRecord],
    horizon: SimTime,
) -> Vec<DiscoveryReport> {
    let channels: Vec<Box<dyn DiscoveryChannel>> = vec![
        Box::new(CtLogWatcher),
        Box::new(SearchIndexMiner),
        Box::new(SocialStreamWatcher),
    ];
    let fwb: Vec<&CampaignRecord> = records
        .iter()
        .filter(|r| matches!(r.class, RecordClass::FwbPhish(_)))
        .collect();
    let sh: Vec<&CampaignRecord> = records
        .iter()
        .filter(|r| r.class == RecordClass::SelfHostedPhish)
        .collect();
    channels
        .iter()
        .map(|c| {
            let found = c.discovered(world, records, horizon);
            let recall = |pop: &[&CampaignRecord]| {
                if pop.is_empty() {
                    0.0
                } else {
                    pop.iter().filter(|r| found.contains(&r.url)).count() as f64 / pop.len() as f64
                }
            };
            DiscoveryReport {
                channel: c.name(),
                fwb_recall: recall(&fwb),
                self_hosted_recall: recall(&sh),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{self, CampaignConfig};

    fn measured() -> (World, Vec<CampaignRecord>) {
        let mut world = World::new(21);
        let records = campaign::run(
            &CampaignConfig {
                scale: 0.02,
                days: 30,
                benign_fraction: 0.0,
                seed: 21,
            },
            &mut world,
        );
        (world, records)
    }

    #[test]
    fn ct_log_blind_to_fwb_attacks() {
        let (world, records) = measured();
        let report = discovery_report(&world, &records, SimTime::from_days(30));
        let ct = report
            .iter()
            .find(|r| r.channel == "CT-log watcher")
            .unwrap();
        // The paper's structural finding: FWB sites inherit the service
        // cert, so CT-based discovery finds none of them...
        assert_eq!(ct.fwb_recall, 0.0);
        // ...while every self-hosted site had to get a certificate.
        assert!(ct.self_hosted_recall > 0.95, "{}", ct.self_hosted_recall);
    }

    #[test]
    fn search_index_finds_few_fwb_attacks() {
        let (world, records) = measured();
        let report = discovery_report(&world, &records, SimTime::from_days(30));
        let idx = report
            .iter()
            .find(|r| r.channel == "search-index miner")
            .unwrap();
        // ≈4% of FWB phishing is indexed (noindex + no inbound links).
        assert!(idx.fwb_recall < 0.09, "{}", idx.fwb_recall);
        assert!(idx.self_hosted_recall > idx.fwb_recall * 2.0);
    }

    #[test]
    fn social_stream_is_the_effective_channel() {
        let (world, records) = measured();
        let report = discovery_report(&world, &records, SimTime::from_days(30));
        let social = report
            .iter()
            .find(|r| r.channel == "social-stream watcher")
            .unwrap();
        // The stream sees nearly everything (a few posts are moderated
        // away before the first poll).
        assert!(social.fwb_recall > 0.9, "{}", social.fwb_recall);
        let ct = report
            .iter()
            .find(|r| r.channel == "CT-log watcher")
            .unwrap();
        assert!(social.fwb_recall > ct.fwb_recall + 0.8);
    }
}
