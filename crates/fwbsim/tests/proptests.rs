//! Property tests over the hosting simulator: takedown state machines and
//! registries must behave like real infrastructure.

use freephish_fwbsim::history::{self, HistoryConfig};
use freephish_fwbsim::{CtLog, FwbHost, SelfHostedPopulation, WhoisDb};
use freephish_simclock::{Rng64, SimTime};
use freephish_webgen::{FwbKind, PageKind, PageSpec};
use proptest::prelude::*;

fn any_fwb() -> impl Strategy<Value = FwbKind> {
    (0usize..17).prop_map(|i| FwbKind::all().nth(i).unwrap())
}

fn make_site(fwb: FwbKind, i: u64) -> freephish_webgen::GeneratedSite {
    PageSpec {
        fwb,
        kind: PageKind::CredentialPhish {
            brand: (i % 100) as usize,
        },
        site_name: format!("prop-{i}"),
        noindex: false,
        obfuscate_banner: false,
        seed: i,
    }
    .generate()
}

proptest! {
    /// Once removed, a site never serves again; while unreported, it always
    /// serves.
    #[test]
    fn takedown_is_permanent(
        fwb in any_fwb(),
        seed in any::<u64>(),
        report_mins in 0u64..10_000,
        probes in proptest::collection::vec(0u64..2_000_000, 1..8),
    ) {
        let mut host = FwbHost::new(fwb, seed);
        let id = host.publish(make_site(fwb, seed), SimTime::ZERO);
        let outcome = host.report_abuse(id, SimTime::from_mins(report_mins));
        let site = host.site(id);
        for &p in &probes {
            let t = SimTime::from_secs(p);
            match outcome.removal_at {
                Some(at) => prop_assert_eq!(site.is_active(t), t < at),
                None => prop_assert!(site.is_active(t)),
            }
        }
    }

    /// Removal, when it happens, is strictly after the report.
    #[test]
    fn removal_after_report(fwb in any_fwb(), seed in any::<u64>()) {
        let mut host = FwbHost::new(fwb, seed);
        let report_at = SimTime::from_mins(30);
        for i in 0..50u64 {
            let id = host.publish(make_site(fwb, i), SimTime::ZERO);
            if let Some(at) = host.report_abuse(id, report_at).removal_at {
                prop_assert!(at > report_at);
            }
        }
    }

    /// WHOIS ages only grow with time, for any mix of aged and fresh
    /// registrations.
    #[test]
    fn whois_ages_monotone(
        age in 0u64..20_000,
        reg_day in 0u64..1_000,
        d1 in 0u64..2_000,
        dd in 0u64..2_000,
    ) {
        let mut db = WhoisDb::default();
        db.register_aged("old.example", age);
        db.register_fresh("fresh.example", reg_day);
        for domain in ["old.example", "fresh.example"] {
            let a = db.age_days(domain, d1);
            let b = db.age_days(domain, d1 + dd);
            if let (Some(a), Some(b)) = (a, b) {
                prop_assert!(b >= a, "{domain}: {a} then {b}");
            }
        }
    }

    /// Self-hosted spawns always leave both a WHOIS record and a CT entry —
    /// the discovery trail FWB attacks lack.
    #[test]
    fn self_hosted_always_leaves_trail(seed in any::<u64>(), brand in 0usize..109) {
        let mut pop = SelfHostedPopulation::new(seed);
        let mut whois = WhoisDb::default();
        let mut ct = CtLog::new();
        let i = pop.spawn(brand, SimTime::from_days(1), &mut whois, &mut ct);
        let site = &pop.sites()[i];
        prop_assert!(whois.age_days(&site.domain, 1).is_some());
        prop_assert!(ct.covers_host(&site.domain));
    }

    /// The historical generator respects its total for any config.
    #[test]
    fn history_total_respected(total in 100usize..2_000, growth in 1.0f64..1.6) {
        let mut rng = Rng64::new(42);
        let records = history::generate(
            &HistoryConfig {
                total,
                growth,
                ..HistoryConfig::default()
            },
            &mut rng,
        );
        prop_assert_eq!(records.len(), total);
        prop_assert!(records.iter().all(|r| r.quarter < history::QUARTERS.len()));
        prop_assert!(records.iter().all(|r| r.brand < 109));
    }
}
