//! Segment files: the on-disk unit of the write-ahead log.
//!
//! A segment is `wal-<index>.log`: an 8-byte header (`FPWL` magic + the
//! segment index, little-endian) followed by length-prefixed,
//! CRC32-checksummed records:
//!
//! ```text
//! record := len:u32le | crc32(payload):u32le | payload[len]
//! ```
//!
//! Scanning validates every frame and reports the first defect — a partial
//! frame, an implausible length, or a checksum mismatch — as a *torn tail*
//! together with the byte offset of the last good record, so recovery can
//! truncate the file there and keep the valid prefix.

use crate::crc32::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"FPWL";
/// Header size: magic + segment index.
pub const SEGMENT_HEADER_LEN: u64 = 8;
/// Frame overhead per record: length + checksum.
pub const FRAME_OVERHEAD: u64 = 8;
/// Upper bound on a single record; larger lengths are treated as
/// corruption, not allocation requests.
pub const MAX_RECORD_LEN: u32 = 1 << 26;

/// File name of segment `index`.
pub fn segment_file_name(index: u32) -> String {
    format!("wal-{index:010}.log")
}

/// Parse a segment file name back to its index.
pub fn parse_segment_name(name: &str) -> Option<u32> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Append one framed record to `buf`.
pub fn encode_frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Torn {
    /// Fewer bytes remain than a frame header or its declared payload.
    PartialFrame,
    /// The declared length exceeds [`MAX_RECORD_LEN`].
    BadLength(u32),
    /// The payload does not match its checksum.
    BadChecksum,
}

impl std::fmt::Display for Torn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Torn::PartialFrame => write!(f, "partial frame"),
            Torn::BadLength(n) => write!(f, "implausible record length {n}"),
            Torn::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

/// One record recovered from a segment.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// The record payload.
    pub payload: Vec<u8>,
    /// Byte offset just past this record's frame — a valid truncation
    /// point.
    pub end_offset: u64,
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Segment index from the header.
    pub index: u32,
    /// Every record with a valid frame, in file order.
    pub records: Vec<ScannedRecord>,
    /// Offset just past the last good record (the header alone when no
    /// record is valid) — where a torn tail should be truncated.
    pub good_len: u64,
    /// The first defect found, if the file did not end cleanly.
    pub torn: Option<Torn>,
    /// Actual file length.
    pub file_len: u64,
    /// Whether the 8-byte header itself was intact.
    pub header_ok: bool,
}

/// Decode frames from `bytes` starting at `offset`. Shared by segment and
/// snapshot scanning.
fn scan_frames(bytes: &[u8], mut offset: usize) -> (Vec<ScannedRecord>, u64, Option<Torn>) {
    let mut records = Vec::new();
    let mut good_len = offset as u64;
    let torn = loop {
        if offset == bytes.len() {
            break None; // clean end
        }
        if bytes.len() - offset < FRAME_OVERHEAD as usize {
            break Some(Torn::PartialFrame);
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break Some(Torn::BadLength(len));
        }
        let body_start = offset + FRAME_OVERHEAD as usize;
        if bytes.len() - body_start < len as usize {
            break Some(Torn::PartialFrame);
        }
        let payload = &bytes[body_start..body_start + len as usize];
        if crc32(payload) != crc {
            break Some(Torn::BadChecksum);
        }
        offset = body_start + len as usize;
        good_len = offset as u64;
        records.push(ScannedRecord {
            payload: payload.to_vec(),
            end_offset: good_len,
        });
    };
    (records, good_len, torn)
}

/// Scan one segment file, validating the header and every frame.
pub fn scan_segment(path: &Path) -> std::io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;

    let index = parse_segment_name(
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default(),
    )
    .unwrap_or(0);
    let header_ok = bytes.len() >= SEGMENT_HEADER_LEN as usize
        && bytes[..4] == SEGMENT_MAGIC
        && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) == index;
    if !header_ok {
        return Ok(SegmentScan {
            index,
            records: Vec::new(),
            good_len: 0,
            torn: Some(Torn::PartialFrame),
            file_len,
            header_ok,
        });
    }
    let (records, good_len, torn) = scan_frames(&bytes, SEGMENT_HEADER_LEN as usize);
    Ok(SegmentScan {
        index,
        records,
        good_len,
        torn,
        file_len,
        header_ok,
    })
}

/// Decode frames from an in-memory buffer (snapshot payloads reuse the
/// record framing to carry many events in one file).
pub fn scan_buffer(bytes: &[u8]) -> (Vec<Vec<u8>>, Option<Torn>) {
    let (records, _, torn) = scan_frames(bytes, 0);
    (records.into_iter().map(|r| r.payload).collect(), torn)
}

/// Buffered appender for the active segment. Appends accumulate in memory
/// until [`SegmentWriter::flush`] (write(2)) or [`SegmentWriter::sync`]
/// (write + fdatasync) — the store's fsync policy decides when to call
/// which.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    index: u32,
    /// Logical length: header + every appended frame (flushed or not).
    len: u64,
    buf: Vec<u8>,
}

impl SegmentWriter {
    /// Create segment `index` in `dir` and write its header (flushed, not
    /// yet fsynced).
    pub fn create(dir: &Path, index: u32) -> std::io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(index));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&index.to_le_bytes());
        file.write_all(&header)?;
        Ok(SegmentWriter {
            file,
            path,
            index,
            len: SEGMENT_HEADER_LEN,
            buf: Vec::new(),
        })
    }

    /// Reopen an existing segment for appending at `len` (recovery has
    /// already truncated any torn tail).
    pub fn open_append(dir: &Path, index: u32, len: u64) -> std::io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(index));
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.seek(SeekFrom::Start(len))?;
        Ok(SegmentWriter {
            file,
            path,
            index,
            len,
            buf: Vec::new(),
        })
    }

    /// Append one framed record (buffered). Returns the frame size in
    /// bytes.
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let before = self.buf.len();
        encode_frame_into(&mut self.buf, payload);
        let framed = (self.buf.len() - before) as u64;
        self.len += framed;
        framed
    }

    /// Write buffered frames to the file (no fsync).
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush and fdatasync.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.file.sync_data()
    }

    /// Logical length (header + all appended frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == SEGMENT_HEADER_LEN
    }

    /// This segment's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_file_name(7), "wal-0000000007.log");
        assert_eq!(parse_segment_name("wal-0000000007.log"), Some(7));
        assert_eq!(parse_segment_name("snap-0000000007.snap"), None);
        assert_eq!(parse_segment_name("wal-x.log"), None);
    }

    #[test]
    fn write_scan_round_trip() {
        let dir = TempDir::new("segment-roundtrip");
        let mut w = SegmentWriter::create(dir.path(), 3).unwrap();
        w.append(b"first");
        w.append(b"");
        w.append(&[0xAB; 300]);
        w.sync().unwrap();
        let scan = scan_segment(&dir.path().join(segment_file_name(3))).unwrap();
        assert!(scan.header_ok);
        assert_eq!(scan.torn, None);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].payload, b"first");
        assert_eq!(scan.records[1].payload, b"");
        assert_eq!(scan.records[2].payload, vec![0xAB; 300]);
        assert_eq!(scan.good_len, scan.file_len);
        assert_eq!(scan.good_len, w.len());
    }

    #[test]
    fn truncated_tail_detected_and_prefix_kept() {
        let dir = TempDir::new("segment-torn");
        let mut w = SegmentWriter::create(dir.path(), 0).unwrap();
        w.append(b"keep me");
        let keep_len = w.len();
        w.append(b"the torn one");
        w.sync().unwrap();
        let path = dir.path().join(segment_file_name(0));
        // Chop 3 bytes off the last frame.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"keep me");
        assert_eq!(scan.good_len, keep_len);
        assert_eq!(scan.torn, Some(Torn::PartialFrame));
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = TempDir::new("segment-crc");
        let mut w = SegmentWriter::create(dir.path(), 0).unwrap();
        w.append(b"aaaa");
        w.append(b"bbbb");
        w.sync().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x40; // flip a bit in the second payload
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn, Some(Torn::BadChecksum));
    }

    #[test]
    fn implausible_length_is_corruption_not_allocation() {
        let dir = TempDir::new("segment-len");
        let mut w = SegmentWriter::create(dir.path(), 0).unwrap();
        w.append(b"ok");
        w.sync().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn, Some(Torn::BadLength(u32::MAX)));
    }

    #[test]
    fn bad_header_invalidates_file() {
        let dir = TempDir::new("segment-header");
        let path = dir.path().join(segment_file_name(0));
        std::fs::write(&path, b"NOPE\x00\x00\x00\x00").unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(!scan.header_ok);
        assert!(scan.records.is_empty());
        assert_eq!(scan.good_len, 0);
    }

    #[test]
    fn reopened_segment_appends_after_prefix() {
        let dir = TempDir::new("segment-reopen");
        let mut w = SegmentWriter::create(dir.path(), 1).unwrap();
        w.append(b"one");
        w.sync().unwrap();
        let len = w.len();
        drop(w);
        let mut w2 = SegmentWriter::open_append(dir.path(), 1, len).unwrap();
        w2.append(b"two");
        w2.sync().unwrap();
        let scan = scan_segment(&dir.path().join(segment_file_name(1))).unwrap();
        assert_eq!(scan.torn, None);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"two");
    }
}
