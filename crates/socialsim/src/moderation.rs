//! Platform moderation behaviour.
//!
//! Calibration sources: Table 3 (platforms collectively delete 23.06% of
//! FWB posts at a 10:25 median vs 50.9% / 3:41 for self-hosted phishing),
//! Table 4's Platform column (per-FWB coverage and speed), and Figure 9
//! (Twitter acts more and faster than Facebook on both populations). The
//! measured outputs of `freephish-core::analysis` must *recover* these
//! shapes; nothing downstream reads these constants.

use freephish_fwbsim::history::Platform;
use freephish_simclock::{Rng64, SimDuration, SimTime};
use freephish_webgen::FwbKind;

/// Probability-and-latency profile for one (platform, hosting-class) pair.
#[derive(Debug, Clone, Copy)]
pub struct ModerationProfile {
    /// Probability the post is eventually deleted.
    pub delete_prob: f64,
    /// Median deletion delay in minutes (for deleted posts).
    pub median_mins: f64,
    /// Log-space spread.
    pub sigma: f64,
}

/// Per-FWB platform-collective moderation (Table 4, Platform column):
/// (coverage fraction, median minutes).
fn fwb_platform_base(kind: FwbKind) -> (f64, f64) {
    match kind {
        FwbKind::Weebly => (0.2065, 281.0),
        FwbKind::Webhost000 => (0.1382, 443.0),
        FwbKind::Blogspot => (0.2512, 423.0),
        FwbKind::Wix => (0.3577, 275.0),
        FwbKind::GoogleSites => (0.2845, 1088.0),
        FwbKind::GithubIo => (0.2146, 425.0),
        FwbKind::Firebase => (0.2686, 549.0),
        FwbKind::Squareup => (0.3445, 658.0),
        FwbKind::ZohoForms => (0.1577, 630.0),
        FwbKind::Wordpress => (0.2896, 1027.0),
        FwbKind::GoogleForms => (0.2256, 1887.0),
        FwbKind::Sharepoint => (0.1916, 461.0),
        FwbKind::Yolasite => (0.0479, 1237.0),
        FwbKind::GoDaddySites => (0.1681, 2035.0),
        FwbKind::Mailchimp => (0.2289, 2887.0),
        FwbKind::GlitchMe => (0.0, 0.0),
        FwbKind::Hpage => (0.0, 0.0),
    }
}

impl ModerationProfile {
    /// Moderation of a post sharing an FWB-hosted URL.
    pub fn fwb(platform: Platform, kind: FwbKind) -> ModerationProfile {
        let (base_prob, base_mins) = fwb_platform_base(kind);
        // Figure 9: Twitter removes more, sooner. The multipliers keep the
        // two-platform aggregate at the Table 4 values given the paper's
        // 63/37 Twitter/Facebook traffic split.
        let (pf, mf) = match platform {
            Platform::Twitter => (1.15, 0.72),
            Platform::Facebook => (0.80, 1.45),
        };
        ModerationProfile {
            delete_prob: (base_prob * pf).min(0.95),
            median_mins: (base_mins * mf).max(1.0),
            sigma: 1.0,
        }
    }

    /// Moderation of a post sharing a self-hosted phishing URL
    /// (Table 3: 50.9% collective coverage at a 3:41 median).
    pub fn self_hosted(platform: Platform) -> ModerationProfile {
        match platform {
            Platform::Twitter => ModerationProfile {
                delete_prob: 0.58,
                median_mins: 160.0,
                sigma: 1.0,
            },
            Platform::Facebook => ModerationProfile {
                delete_prob: 0.42,
                median_mins: 320.0,
                sigma: 1.0,
            },
        }
    }

    /// Draw a deletion time for a post created at `posted_at`, or `None`
    /// when moderation never acts.
    pub fn draw_deletion(&self, posted_at: SimTime, rng: &mut Rng64) -> Option<SimTime> {
        if self.delete_prob <= 0.0 || !rng.chance(self.delete_prob) {
            return None;
        }
        let mins = rng.lognormal_median(self.median_mins, self.sigma);
        Some(posted_at + SimDuration::from_secs((mins * 60.0) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_more_aggressive_than_facebook() {
        for kind in FwbKind::all() {
            let tw = ModerationProfile::fwb(Platform::Twitter, kind);
            let fb = ModerationProfile::fwb(Platform::Facebook, kind);
            assert!(tw.delete_prob >= fb.delete_prob, "{kind}");
            if tw.median_mins > 1.0 {
                assert!(tw.median_mins < fb.median_mins, "{kind}");
            }
        }
    }

    #[test]
    fn self_hosted_much_better_covered() {
        // Figure 9's core contrast.
        for platform in Platform::ALL {
            let sh = ModerationProfile::self_hosted(platform);
            let fwb = ModerationProfile::fwb(platform, FwbKind::Weebly);
            assert!(sh.delete_prob > fwb.delete_prob * 1.5);
            assert!(sh.median_mins < fwb.median_mins * 1.5);
        }
    }

    #[test]
    fn glitch_and_hpage_never_moderated() {
        // Table 4: platform coverage 0% for glitch.me and hpage.
        for kind in [FwbKind::GlitchMe, FwbKind::Hpage] {
            let p = ModerationProfile::fwb(Platform::Twitter, kind);
            let mut rng = Rng64::new(1);
            for _ in 0..100 {
                assert!(p.draw_deletion(SimTime::ZERO, &mut rng).is_none());
            }
        }
    }

    #[test]
    fn deletion_draw_rate_matches_probability() {
        let p = ModerationProfile {
            delete_prob: 0.3,
            median_mins: 100.0,
            sigma: 0.5,
        };
        let mut rng = Rng64::new(2);
        let n = 10_000;
        let deleted = (0..n)
            .filter(|_| p.draw_deletion(SimTime::ZERO, &mut rng).is_some())
            .count();
        let rate = deleted as f64 / n as f64;
        assert!((0.27..0.33).contains(&rate), "rate={rate}");
    }

    #[test]
    fn deletion_median_matches_calibration() {
        let p = ModerationProfile {
            delete_prob: 1.0,
            median_mins: 200.0,
            sigma: 0.8,
        };
        let mut rng = Rng64::new(3);
        let mut delays: Vec<u64> = (0..5001)
            .map(|_| p.draw_deletion(SimTime::ZERO, &mut rng).unwrap().as_secs() / 60)
            .collect();
        delays.sort_unstable();
        let med = delays[delays.len() / 2] as f64;
        assert!((170.0..235.0).contains(&med), "median={med}");
    }

    #[test]
    fn deletion_is_after_posting() {
        let p = ModerationProfile::self_hosted(Platform::Twitter);
        let mut rng = Rng64::new(4);
        let posted = SimTime::from_days(3);
        for _ in 0..200 {
            if let Some(d) = p.draw_deletion(posted, &mut rng) {
                assert!(d > posted);
            }
        }
    }
}
