//! End-to-end tests of the ops plane mounted on the evented engine.
//!
//! Two scenarios the unit tests cannot cover:
//!
//! * **readiness under load** — an engine whose index has not published
//!   yet reports 503 on `/readyz`; while client traffic and `/metrics`
//!   scrapes run concurrently, the first publish flips it to 200 exactly
//!   once, and verdicts served before/after the flip match what the
//!   checker itself says (scraping never perturbs the serve path).
//! * **slow capture** — a deterministic outlier request (the checker
//!   stalls on a magic URL) lands in `/traces/slow` with the full
//!   accept → decode → lookup → respond span breakdown.

use freephish_serve::{http_get, EventedServer, OpsServer, ShardedIndex, UrlChecker, Verdict};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One synchronous line-protocol CHECK round trip.
fn check_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, url: &str) -> String {
    stream
        .write_all(format!("CHECK {url}\n").as_bytes())
        .expect("write CHECK");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read verdict");
    assert!(!line.is_empty(), "server closed mid-run");
    line
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

#[test]
fn readiness_flips_once_under_concurrent_load() {
    // Unpublished index: the engine serves (everything SAFE) but is not
    // ready — no generation has been published.
    let index = Arc::new(ShardedIndex::with_default_shards());
    let mut engine = EventedServer::start(index.clone()).expect("start engine");
    let mut ops = OpsServer::start(0, engine.ops_config()).expect("start ops");
    let serve_addr = engine.addr();
    let ops_addr = ops.addr();

    let (code, body) = http_get(ops_addr, "/readyz").expect("GET /readyz");
    assert_eq!(code, 503, "unpublished index must be not-ready: {body}");
    assert!(body.contains("\"ready\": false") || body.contains("\"ready\":false"));

    // Concurrent load: two traffic threads checking URLs, one scraper
    // hammering /metrics. All run across the publish.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for tid in 0..2usize {
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let (mut s, mut r) = connect(serve_addr);
            let mut i = tid.wrapping_mul(7919);
            while !stop.load(Ordering::SeqCst) {
                let url = format!("https://site{}.wixsite.com/home", i % 64);
                i += 1;
                let line = check_line(&mut s, &mut r, &url);
                assert!(
                    line.starts_with("SAFE") || line.starts_with("PHISHING"),
                    "{line:?}"
                );
            }
        }));
    }
    {
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let (code, body) = http_get(ops_addr, "/metrics").expect("GET /metrics");
                assert_eq!(code, 200);
                assert!(body.contains("# HELP "), "no HELP lines:\n{body}");
                assert!(body.contains("serve_requests_total{"), "{body}");
            }
        }));
    }

    // Poll /readyz while the publish lands, recording every observation.
    let mut observed = Vec::new();
    let mut published = false;
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(10);
    loop {
        let (code, _) = http_get(ops_addr, "/readyz").expect("GET /readyz");
        observed.push(code == 200);
        if !published && t0.elapsed() > Duration::from_millis(100) {
            index.publish(vec![("https://evil.weebly.com/login".to_string(), 0.97)]);
            published = true;
        }
        if *observed.last().unwrap() && observed.len() >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never became ready: {observed:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Exactly one false→true flip, and no flip back.
    let flips = observed.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(flips, 1, "readiness must flip exactly once: {observed:?}");
    assert!(!observed[0], "must start not-ready");
    assert!(*observed.last().unwrap(), "must end ready");

    // Check equivalence under scraping: the served verdict for every URL
    // matches a direct checker call.
    let (mut s, mut r) = connect(serve_addr);
    for url in [
        "https://evil.weebly.com/login",
        "https://site0.wixsite.com/home",
    ] {
        let line = check_line(&mut s, &mut r, url);
        let wire_phishing = line.starts_with("PHISHING");
        assert_eq!(
            wire_phishing,
            index.check(url).is_phishing(),
            "wire and checker disagree for {url}: {line:?}"
        );
    }

    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().expect("worker panicked");
    }
    ops.shutdown();
    engine.shutdown();
    assert!(engine.drain(Duration::from_secs(5)));
}

#[test]
fn readiness_with_composed_condition_still_flips_exactly_once() {
    // The daemon's classify-on-miss shape: engine readiness (index
    // published) composed with a wrapper condition (classifier warm).
    // The two become true at different times; /readyz must go 503→200
    // exactly once, only after BOTH hold.
    let index = Arc::new(ShardedIndex::with_default_shards());
    let warm = Arc::new(AtomicBool::new(false));
    let mut engine = EventedServer::start(index.clone()).expect("start engine");
    let hook = warm.clone();
    let cfg = engine.ops_config().with_ready_condition(
        "classifier_warm",
        Arc::new(move || hook.load(Ordering::SeqCst)),
    );
    let mut ops = OpsServer::start(0, cfg).expect("start ops");
    let ops_addr = ops.addr();

    let mut observed = Vec::new();
    let mut published = false;
    let mut warmed = false;
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(10);
    loop {
        let (code, body) = http_get(ops_addr, "/readyz").expect("GET /readyz");
        observed.push(code == 200);
        if published && !warmed {
            // Engine is ready but the classifier is not: the composed
            // condition must hold /readyz at 503 and say why.
            assert_eq!(code, 503, "classifier_warm=false must gate readiness");
            assert!(
                body.contains("\"classifier_warm\": false")
                    || body.contains("\"classifier_warm\":false")
            );
        }
        if !published && t0.elapsed() > Duration::from_millis(50) {
            index.publish(vec![("https://evil.weebly.com/login".to_string(), 0.97)]);
            published = true;
        }
        if published && !warmed && t0.elapsed() > Duration::from_millis(150) {
            warm.store(true, Ordering::SeqCst);
            warmed = true;
        }
        if *observed.last().unwrap() && observed.len() >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never became ready: {observed:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let flips = observed.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(
        flips, 1,
        "composed readiness must flip exactly once: {observed:?}"
    );
    assert!(!observed[0], "must start not-ready");
    assert!(*observed.last().unwrap(), "must end ready");

    ops.shutdown();
    engine.shutdown();
    assert!(engine.drain(Duration::from_secs(5)));
}

/// Wraps the production index, stalling any lookup that involves the
/// magic URL — a deterministic slow outlier for slow capture.
struct SlowOnMagic {
    inner: ShardedIndex,
}

const MAGIC: &str = "https://magic-slow.weebly.com/login";
const STALL: Duration = Duration::from_millis(40);

impl UrlChecker for SlowOnMagic {
    fn check(&self, url: &str) -> Verdict {
        if url == MAGIC {
            std::thread::sleep(STALL);
        }
        self.inner.check(url)
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        if urls.iter().any(|u| u == MAGIC) {
            std::thread::sleep(STALL);
        }
        self.inner.check_many(urls)
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        self.inner.add(url, score)
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }
}

#[test]
fn slow_request_lands_in_traces_slow_with_spans() {
    let index = ShardedIndex::with_default_shards();
    index.publish(vec![(MAGIC.to_string(), 0.99)]);
    let mut engine =
        EventedServer::start(Arc::new(SlowOnMagic { inner: index })).expect("start engine");
    let mut ops = OpsServer::start(0, engine.ops_config()).expect("start ops");

    // A fast baseline so the rolling p99 threshold settles far below the
    // stall, then the one deterministic outlier.
    let (mut s, mut r) = connect(engine.addr());
    for i in 0..60 {
        let line = check_line(&mut s, &mut r, &format!("https://fast{i}.wixsite.com/"));
        assert!(line.starts_with("SAFE"), "{line:?}");
    }
    let line = check_line(&mut s, &mut r, MAGIC);
    assert!(line.starts_with("PHISHING"), "{line:?}");

    let (code, body) = http_get(ops.addr(), "/traces/slow").expect("GET /traces/slow");
    assert_eq!(code, 200);
    let json: serde_json::Value = serde_json::from_str(&body).expect("/traces/slow is JSON");
    let traces = json["traces"].as_array().expect("traces array");
    let slow = traces
        .iter()
        .find(|t| t["total_us"].as_f64().unwrap_or(0.0) >= STALL.as_micros() as f64)
        .unwrap_or_else(|| panic!("no trace as slow as the stall in {body}"));
    assert_eq!(slow["command"], "check");
    assert_eq!(slow["slow"], true);
    let span_names: Vec<&str> = slow["spans"]
        .as_array()
        .expect("spans array")
        .iter()
        .map(|sp| sp["name"].as_str().expect("span name"))
        .collect();
    for stage in ["accept", "decode", "lookup", "respond"] {
        assert!(
            span_names.contains(&stage),
            "missing {stage} span in {span_names:?}"
        );
    }
    // The stall happened inside the lookup stage, and the trace says so.
    let lookup_us = slow["spans"]
        .as_array()
        .unwrap()
        .iter()
        .find(|sp| sp["name"] == "lookup")
        .and_then(|sp| sp["dur_us"].as_f64())
        .expect("lookup span duration");
    assert!(
        lookup_us >= STALL.as_micros() as f64 * 0.9,
        "lookup span too short: {lookup_us}µs"
    );

    // The capture is visible in the scrape counters too.
    let (code, metrics) = http_get(ops.addr(), "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    let captured = metrics
        .lines()
        .find(|l| l.starts_with("trace_slow_captured_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("trace_slow_captured_total in /metrics");
    assert!(captured >= 1, "slow capture not counted:\n{metrics}");

    ops.shutdown();
    engine.shutdown();
    assert!(engine.drain(Duration::from_secs(5)));
}
