//! Million-site worlds: streaming, bounded-memory world generation for
//! soak testing the serve path at paper scale and beyond.
//!
//! The measurement worlds built by [`crate::world`] materialise every
//! site up front, which is right for six-month ecosystem simulations of a
//! few thousand sites but breaks down when the question becomes "does the
//! verdict service hold its SLOs with ten million known URLs?". This
//! module answers that with a different representation: a
//! [`ScaleWorld`] never stores sites at all. Each site is a pure function
//! of `(seed, index)` (via [`freephish_fwbsim::ScaleSampler`]), so
//! iterating a 10M-site world allocates one URL at a time and resident
//! memory stays flat no matter the world size — the property the soak
//! harness's RSS gate checks.
//!
//! Two consumers:
//!
//! * the soak harness streams [`ScaleWorld::iter`] /
//!   [`ScaleWorld::chunks`] to drive mixed `CHECK`/`CHECKN`/`ADD` traffic
//!   with realistic heavy-tailed URL shapes;
//! * [`ScaleWorld::bake_index`] streams the world's verdicts straight
//!   into a [`freephish_mapidx`] snapshot file through the external-merge
//!   writer, producing the 10M-entry index whose mmap load time the
//!   `mapidx_load_ms` gate bounds.

use std::io;
use std::path::Path;

use freephish_fwbsim::{scale, ScaleSampler, ScaleSite, ScaleStats};
use freephish_mapidx::{BakeSummary, IndexWriter};

/// Shape of a scale world. `Default` gives the soak harness's baseline:
/// one million sites with the paper's Table 4 / Figure 5 distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleWorldConfig {
    /// Number of sites in the world.
    pub sites: u64,
    /// Root seed; worlds with equal configs are identical.
    pub seed: u64,
    /// Zipf exponent for brand targeting (Figure 5 head-heaviness).
    pub brand_zipf_s: f64,
    /// Fraction of sites that are phishing pages.
    pub phish_fraction: f64,
}

impl Default for ScaleWorldConfig {
    fn default() -> Self {
        ScaleWorldConfig {
            sites: 1_000_000,
            seed: 0x00F2_EE7A_7E25,
            brand_zipf_s: scale::DEFAULT_BRAND_ZIPF_S,
            phish_fraction: scale::DEFAULT_PHISH_FRACTION,
        }
    }
}

/// A virtual world of `cfg.sites` FWB-hosted sites. Holds only the
/// sampler (a few hundred bytes); every site is regenerated on demand.
#[derive(Debug, Clone)]
pub struct ScaleWorld {
    cfg: ScaleWorldConfig,
    sampler: ScaleSampler,
}

impl ScaleWorld {
    /// Build the world's sampler. O(1) in `cfg.sites`.
    pub fn new(cfg: ScaleWorldConfig) -> ScaleWorld {
        ScaleWorld {
            cfg,
            sampler: ScaleSampler::with_shape(cfg.seed, cfg.brand_zipf_s, cfg.phish_fraction),
        }
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> ScaleWorldConfig {
        self.cfg
    }

    /// Number of sites in the world.
    pub fn len(&self) -> u64 {
        self.cfg.sites
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.cfg.sites == 0
    }

    /// Site `index` (mod world size, so load generators can wrap freely).
    pub fn site_at(&self, index: u64) -> ScaleSite {
        debug_assert!(self.cfg.sites > 0, "site_at on an empty world");
        self.sampler.site_at(index % self.cfg.sites.max(1))
    }

    /// The verdict-store entry for site `index`: `(url, score)`.
    pub fn verdict_at(&self, index: u64) -> (String, f64) {
        let site = self.site_at(index);
        (site.url, site.score)
    }

    /// Stream every site in index order. Constant memory: one
    /// [`ScaleSite`] alive at a time.
    pub fn iter(&self) -> impl Iterator<Item = ScaleSite> + '_ {
        (0..self.cfg.sites).map(move |i| self.sampler.site_at(i))
    }

    /// Stream the world in bounded chunks (for batch APIs like `CHECKN`).
    /// Peak memory is one chunk, not the world.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = Vec<ScaleSite>> + '_ {
        assert!(chunk > 0, "chunk size must be positive");
        let chunk = chunk as u64;
        let n = self.cfg.sites.div_ceil(chunk);
        (0..n).map(move |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(self.cfg.sites);
            (lo..hi).map(|i| self.sampler.site_at(i)).collect()
        })
    }

    /// Survey the world's distribution by visiting every `stride`-th site.
    /// Memory is the fixed counter set in [`ScaleStats`]; time is
    /// `sites / stride` site generations.
    pub fn survey(&self, stride: u64) -> ScaleStats {
        let stride = stride.max(1);
        let mut stats = ScaleStats::new();
        let mut i = 0;
        while i < self.cfg.sites {
            stats.record(&self.sampler.site_at(i));
            i += stride;
        }
        stats
    }

    /// Stream `entries` verdicts (wrapping over the world if `entries >
    /// sites`) into a mapidx snapshot file at `out_path`. This is the
    /// scale path for building multi-million-entry baked baselines
    /// without a journal: the external-merge writer spills sorted runs,
    /// so peak memory is the writer's run budget, not the entry count.
    pub fn bake_index(&self, entries: u64, out_path: &Path) -> io::Result<BakeSummary> {
        let spill = out_path.with_extension("spill");
        let mut writer = IndexWriter::create(&spill)?;
        for i in 0..entries {
            let (url, score) = self.verdict_at(i);
            writer.add(&url, score)?;
        }
        let summary = writer.finish(out_path)?;
        let _ = std::fs::remove_dir_all(&spill);
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_mapidx::SnapshotIndex;

    fn small(sites: u64) -> ScaleWorld {
        ScaleWorld::new(ScaleWorldConfig {
            sites,
            ..ScaleWorldConfig::default()
        })
    }

    #[test]
    fn iter_matches_random_access() {
        let w = small(500);
        for (i, site) in w.iter().enumerate() {
            assert_eq!(site, w.site_at(i as u64));
        }
    }

    #[test]
    fn chunks_cover_the_world_exactly_once() {
        let w = small(1_003);
        let mut seen = 0u64;
        for (c, chunk) in w.chunks(100).enumerate() {
            assert!(chunk.len() <= 100);
            for (j, site) in chunk.iter().enumerate() {
                assert_eq!(site.index, c as u64 * 100 + j as u64);
            }
            seen += chunk.len() as u64;
        }
        assert_eq!(seen, w.len());
    }

    #[test]
    fn indices_wrap_modulo_world_size() {
        let w = small(64);
        assert_eq!(w.site_at(3), w.site_at(67));
        assert_eq!(w.verdict_at(10), w.verdict_at(74));
    }

    #[test]
    fn survey_counts_every_strided_site() {
        let w = small(10_000);
        let stats = w.survey(10);
        assert_eq!(stats.total(), 1_000);
        assert!(stats.phishing > 0 && stats.benign > 0);
        assert!(stats.brand_head_share(10) > 0.2);
    }

    #[test]
    fn baked_index_serves_the_worlds_verdicts_bit_identically() {
        let dir = std::env::temp_dir().join(format!("fp-scalebake-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("world.mapidx");
        let w = small(2_000);
        let summary = w.bake_index(2_000, &out).unwrap();
        assert!(summary.entries <= 2_000, "dedup can only shrink");
        let idx = SnapshotIndex::open(&out).unwrap();
        for i in (0..2_000).step_by(37) {
            let (url, score) = w.verdict_at(i);
            let got = idx.get(&url).expect("baked entry present");
            assert_eq!(
                got.to_bits(),
                score.to_bits(),
                "bit-identical score for {url}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worlds_are_reproducible_across_instances() {
        let a = small(100);
        let b = small(100);
        assert_eq!(
            a.iter().map(|s| s.url).collect::<Vec<_>>(),
            b.iter().map(|s| s.url).collect::<Vec<_>>()
        );
    }
}
