//! The search-engine index.
//!
//! Anti-phishing crawlers mine search indices for new attacks, but FWB
//! phishing pages rarely surface there (Section 3): subdomain pages with no
//! inbound links are not crawled, and 44.7% carry an explicit `noindex`
//! meta tag. Only 4.1% of the paper's 25.2K historical FWB phishing URLs
//! were indexed by Google. Self-hosted pages — registered domains with
//! their own landing pages — are indexed far more often.

use freephish_simclock::Rng64;
use std::collections::HashSet;

/// Probability an FWB-hosted page *without* a noindex tag gets indexed.
/// With the paper's 44.7% noindex rate this yields the observed ≈4.1%
/// overall indexing: 0.553 × 0.075 ≈ 0.041.
const FWB_INDEX_PROB: f64 = 0.075;

/// Probability a self-hosted page gets indexed.
const SELF_HOSTED_INDEX_PROB: f64 = 0.30;

/// A toy search index: the set of indexed URLs. The crawler's decision is
/// made once per URL (re-sharing the same URL does not re-roll the dice).
#[derive(Debug, Default)]
pub struct SearchIndex {
    indexed: HashSet<String>,
    considered: HashSet<String>,
}

impl SearchIndex {
    /// An empty index.
    pub fn new() -> SearchIndex {
        SearchIndex::default()
    }

    /// The crawler considers a newly observed FWB page. `has_noindex` is
    /// whether the page source carries the robots noindex meta tag.
    /// Returns true when indexed.
    pub fn consider_fwb_page(&mut self, url: &str, has_noindex: bool, rng: &mut Rng64) -> bool {
        if !self.considered.insert(url.to_string()) {
            return self.indexed.contains(url);
        }
        if has_noindex {
            return false; // crawlers honour the tag
        }
        if rng.chance(FWB_INDEX_PROB) {
            self.indexed.insert(url.to_string());
            true
        } else {
            false
        }
    }

    /// The crawler considers a self-hosted page (always crawlable: it is a
    /// registered domain's landing page).
    pub fn consider_self_hosted_page(&mut self, url: &str, rng: &mut Rng64) -> bool {
        if !self.considered.insert(url.to_string()) {
            return self.indexed.contains(url);
        }
        if rng.chance(SELF_HOSTED_INDEX_PROB) {
            self.indexed.insert(url.to_string());
            true
        } else {
            false
        }
    }

    /// Whether `url` is indexed.
    pub fn contains(&self, url: &str) -> bool {
        self.indexed.contains(url)
    }

    /// Number of indexed URLs.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noindex_pages_never_indexed() {
        let mut idx = SearchIndex::new();
        let mut rng = Rng64::new(1);
        for i in 0..500 {
            assert!(!idx.consider_fwb_page(&format!("https://n{i}.weebly.com/"), true, &mut rng));
        }
        assert!(idx.is_empty());
    }

    #[test]
    fn overall_fwb_index_rate_matches_section3() {
        // With the paper's 44.7% noindex rate, overall indexing ≈ 4.1%.
        let mut idx = SearchIndex::new();
        let mut rng = Rng64::new(2);
        let n = 25_200;
        let mut indexed = 0;
        for i in 0..n {
            let has_noindex = rng.chance(0.447);
            if idx.consider_fwb_page(&format!("https://u{i}.weebly.com/"), has_noindex, &mut rng) {
                indexed += 1;
            }
        }
        let rate = indexed as f64 / n as f64;
        assert!((0.030..0.053).contains(&rate), "rate={rate}");
    }

    #[test]
    fn self_hosted_indexed_more() {
        let mut idx = SearchIndex::new();
        let mut rng = Rng64::new(3);
        let mut fwb = 0;
        let mut sh = 0;
        for i in 0..2000 {
            if idx.consider_fwb_page(&format!("https://f{i}.weebly.com/"), false, &mut rng) {
                fwb += 1;
            }
            if idx.consider_self_hosted_page(&format!("https://s{i}.xyz/"), &mut rng) {
                sh += 1;
            }
        }
        assert!(sh > fwb * 2, "sh={sh} fwb={fwb}");
    }

    #[test]
    fn contains_reflects_membership() {
        let mut idx = SearchIndex::new();
        let mut rng = Rng64::new(4);
        // Drive until something is indexed.
        let mut url = String::new();
        for i in 0..1000 {
            let u = format!("https://c{i}.weebly.com/");
            if idx.consider_fwb_page(&u, false, &mut rng) {
                url = u;
                break;
            }
        }
        assert!(!url.is_empty());
        assert!(idx.contains(&url));
        assert!(!idx.contains("https://absent.weebly.com/"));
    }
}
