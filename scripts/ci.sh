#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, release build, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q -p freephish-store (host-default threads) =="
cargo test -q -p freephish-store

echo "== cargo test -q -p freephish-store (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-store

echo "== cargo test -q -p freephish-serve (host-default threads) =="
cargo test -q -p freephish-serve

echo "== cargo test -q -p freephish-serve (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-serve

echo "== cargo test -q -p freephish-cluster (host-default threads) =="
cargo test -q -p freephish-cluster

echo "== cargo test -q -p freephish-cluster (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-cluster

echo "== cargo test -q (host-default threads) =="
cargo test -q

echo "== cargo test -q (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q

# Hot-path equivalence: the wire-speed rewrites (span tokenizer, flat
# forests, SWAR/Myers URL lexical) must stay bit-identical to the retained
# legacy implementations, at the host-default worker count and serially.
echo "== hot-path equivalence suites (host-default threads) =="
cargo test -q -p freephish-urlparse --test proptests
cargo test -q -p freephish-htmlparse --test proptests
cargo test -q -p freephish-ml --test proptests
cargo test -q -p freephish-core --lib -- bit_identical

echo "== hot-path equivalence suites (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-urlparse --test proptests
FREEPHISH_THREADS=1 cargo test -q -p freephish-htmlparse --test proptests
FREEPHISH_THREADS=1 cargo test -q -p freephish-ml --test proptests
FREEPHISH_THREADS=1 cargo test -q -p freephish-core --lib -- bit_identical

# Tiered-resolver equivalence: verdicts settled through the classify-on-miss
# pipeline (and served over either engine's wire protocol) must be
# bit-identical to the offline model, serially and at the host-default
# worker count.
echo "== tiered equivalence (host-default threads) =="
cargo test -q -p freephish-core --test tiered_equivalence

echo "== tiered equivalence (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-core --test tiered_equivalence

echo "== ops plane smoke (ops_smoke) =="
cargo build --release -p freephish-bench --bin ops_smoke
./target/release/ops_smoke

# Snapshot-index corruption totality and the two-level read path: any
# byte-level damage to a baked index must surface as a typed error (never
# a panic), and a checker mounted on mmap-baseline + journal-suffix replay
# must stay bit-identical to full replay on both engines, across re-bakes.
echo "== mapidx corruption/round-trip proptests =="
cargo test -q -p freephish-mapidx --test proptests

echo "== overlay equivalence (host-default threads) =="
cargo test -q -p freephish-core --test overlay_equivalence

echo "== overlay equivalence (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 cargo test -q -p freephish-core --test overlay_equivalence

# Downscaled soak smoke: the full million-site pipeline (streaming world
# build -> bake -> mmap load -> mixed CHECK/CHECKN/ADD soak with RSS and
# p99.9 gates) at a size that finishes in seconds. The binary asserts the
# SLOs internally; a failed gate is a nonzero exit here.
echo "== soak smoke (host-default threads) =="
cargo build --release -p freephish-bench --bin loadgen
SOAK_SMOKE_OUT="$(mktemp)"
FREEPHISH_SOAK_SITES=20000 FREEPHISH_SOAK_INDEX=40000 \
  FREEPHISH_SOAK_SECS=1 FREEPHISH_SOAK_CONNS=4 \
  FREEPHISH_BENCH_OUT="$SOAK_SMOKE_OUT" ./target/release/loadgen --soak

echo "== soak smoke (FREEPHISH_THREADS=1) =="
FREEPHISH_THREADS=1 \
  FREEPHISH_SOAK_SITES=20000 FREEPHISH_SOAK_INDEX=40000 \
  FREEPHISH_SOAK_SECS=1 FREEPHISH_SOAK_CONNS=4 \
  FREEPHISH_BENCH_OUT="$SOAK_SMOKE_OUT" ./target/release/loadgen --soak
rm -f "$SOAK_SMOKE_OUT"

echo "== ci.sh: all gates passed =="
