//! A WHOIS-style registrar database mapping registrable domains to creation
//! dates.
//!
//! Section 3's "Longer Domain Age" finding: FWB phishing URLs are
//! subdomains, so WHOIS reports the *service's* creation date — a median of
//! 13.7 years in the paper's sample — while self-hosted phishing domains in
//! PhishTank had a median age of 71 days. Domain age is a common detection
//! heuristic, so this inversion matters.

use freephish_webgen::{FwbKind, ALL_FWBS};
use std::collections::HashMap;

/// Registrar database. Days are measured on the simulation's day axis,
/// where day 0 is the start of the measurement window; domains registered
/// before it have negative offsets encoded as ages.
#[derive(Debug, Clone, Default)]
pub struct WhoisDb {
    /// registrable domain → age in days at simulation day 0 (may be 0 for
    /// domains registered on day 0; domains registered later get their
    /// registration day tracked separately).
    created_before_epoch: HashMap<String, u64>,
    /// registrable domain → simulation day of registration (for domains
    /// registered during the study, i.e. fresh phishing domains).
    created_during: HashMap<String, u64>,
}

impl WhoisDb {
    /// A database pre-seeded with all 17 FWB registrable domains at their
    /// real-world ages.
    pub fn with_fwbs() -> WhoisDb {
        let mut db = WhoisDb::default();
        for d in ALL_FWBS {
            let registrable = registrable_of(d.host);
            db.created_before_epoch
                .insert(registrable, d.domain_age_days);
        }
        db
    }

    /// Register a domain that existed `age_days` before the epoch.
    pub fn register_aged(&mut self, domain: &str, age_days: u64) {
        self.created_before_epoch
            .insert(domain.to_ascii_lowercase(), age_days);
    }

    /// Register a fresh domain on simulation day `day`.
    pub fn register_fresh(&mut self, domain: &str, day: u64) {
        self.created_during.insert(domain.to_ascii_lowercase(), day);
    }

    /// Age in days of `domain` as seen on simulation day `now_day`, or
    /// `None` when unregistered. Subdomains resolve to their registrable
    /// parent the way WHOIS does.
    pub fn age_days(&self, domain: &str, now_day: u64) -> Option<u64> {
        let domain = domain.to_ascii_lowercase();
        // Walk suffixes: "a.b.weebly.com" → try full, then "b.weebly.com",
        // then "weebly.com"...
        let mut candidate: &str = &domain;
        loop {
            if let Some(&age) = self.created_before_epoch.get(candidate) {
                return Some(age + now_day);
            }
            if let Some(&day) = self.created_during.get(candidate) {
                return Some(now_day.saturating_sub(day));
            }
            match candidate.find('.') {
                Some(i) if candidate[i + 1..].contains('.') => candidate = &candidate[i + 1..],
                _ => return None,
            }
        }
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.created_before_epoch.len() + self.created_during.len()
    }

    /// True when no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registrable domain of an FWB host ("sites.google.com" → "google.com").
pub fn registrable_of(host: &str) -> String {
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 2 {
        host.to_string()
    } else {
        labels[labels.len() - 2..].join(".")
    }
}

/// WHOIS-reported age of a site hosted on `fwb`, on day `now_day`. Always
/// resolves to the FWB's own registrable domain — the Section 3 finding.
pub fn fwb_site_age(db: &WhoisDb, fwb: FwbKind, now_day: u64) -> Option<u64> {
    db.age_days(&registrable_of(fwb.descriptor().host), now_day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwb_domains_are_old() {
        let db = WhoisDb::with_fwbs();
        for d in ALL_FWBS {
            let age = fwb_site_age(&db, d.kind, 0).unwrap();
            assert!(age >= 2000, "{} age {age}", d.display_name);
        }
    }

    #[test]
    fn median_fwb_age_is_over_a_decade() {
        // The paper: median "domain age" of FWB phishing URLs ≈ 13.7 years.
        let db = WhoisDb::with_fwbs();
        let mut ages: Vec<u64> = ALL_FWBS
            .iter()
            .map(|d| fwb_site_age(&db, d.kind, 0).unwrap())
            .collect();
        ages.sort_unstable();
        let median = ages[ages.len() / 2];
        assert!(median > 3650, "median {median} days");
    }

    #[test]
    fn subdomain_resolves_to_parent() {
        let db = WhoisDb::with_fwbs();
        assert_eq!(
            db.age_days("victim-login.weebly.com", 10),
            db.age_days("weebly.com", 10)
        );
        // Google Sites URLs resolve to google.com.
        assert!(db.age_days("sites.google.com", 0).is_some());
    }

    #[test]
    fn fresh_domain_ages_forward() {
        let mut db = WhoisDb::default();
        db.register_fresh("paypal-verify.xyz", 100);
        assert_eq!(db.age_days("paypal-verify.xyz", 100), Some(0));
        assert_eq!(db.age_days("paypal-verify.xyz", 171), Some(71));
    }

    #[test]
    fn unregistered_returns_none() {
        let db = WhoisDb::with_fwbs();
        assert_eq!(db.age_days("unknown-domain.example", 5), None);
    }

    #[test]
    fn aged_domain_accumulates() {
        let mut db = WhoisDb::default();
        db.register_aged("old.com", 5000);
        assert_eq!(db.age_days("old.com", 30), Some(5030));
    }

    #[test]
    fn registrable_of_strips_subdomains() {
        assert_eq!(registrable_of("sites.google.com"), "google.com");
        assert_eq!(registrable_of("weebly.com"), "weebly.com");
        assert_eq!(registrable_of("forms.zohopublic.com"), "zohopublic.com");
    }
}
