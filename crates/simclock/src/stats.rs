//! Summary statistics used by the analysis module: medians, percentiles,
//! empirical CDFs and fixed-checkpoint coverage curves — the quantities the
//! paper reports in Tables 3–4 and Figures 6–9.

/// Median of a sample. Returns `None` on an empty slice. For even-sized
/// samples the lower-middle element is returned (the convention used for
/// reporting "median response time" over discrete observations).
pub fn median_u64(values: &[u64]) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    Some(v[(v.len() - 1) / 2])
}

/// Median of an f64 sample (lower-middle convention). `None` when empty.
pub fn median_f64(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(v[(v.len() - 1) / 2])
}

/// Arithmetic mean; `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// p-th percentile (0..=100) by nearest-rank. `None` when empty.
pub fn percentile_u64(values: &[u64], p: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
    Some(v[rank.min(v.len()) - 1])
}

/// An empirical CDF over u64 observations; `eval(x)` is the fraction of
/// observations `<= x`.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<u64>,
}

impl Ecdf {
    /// Build from a sample (which may be empty).
    pub fn new(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        Ecdf { sorted: values }
    }

    /// Fraction of observations `<= x`; 0.0 for an empty sample.
    pub fn eval(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample the CDF at each of `xs`, returning (x, F(x)) pairs — the series
    /// plotted in Figures 7–9.
    pub fn series(&self, xs: &[u64]) -> Vec<(u64, f64)> {
        xs.iter().map(|&x| (x, self.eval(x))).collect()
    }
}

/// Cumulative coverage curve: given per-item event delays (seconds from
/// first appearance to detection; `None` = never detected within the study
/// window) and checkpoint offsets, returns for each checkpoint the fraction
/// of *all* items whose delay is `<=` the checkpoint.
///
/// This matches the paper's Figures 6 and 9: coverage is relative to the
/// full population, so curves plateau below 1.0 when some URLs are never
/// covered.
pub fn coverage_curve(delays: &[Option<u64>], checkpoints_secs: &[u64]) -> Vec<(u64, f64)> {
    if delays.is_empty() {
        return checkpoints_secs.iter().map(|&c| (c, 0.0)).collect();
    }
    let mut detected: Vec<u64> = delays.iter().filter_map(|d| *d).collect();
    detected.sort_unstable();
    let n = delays.len() as f64;
    checkpoints_secs
        .iter()
        .map(|&c| {
            let k = detected.partition_point(|&d| d <= c);
            (c, k as f64 / n)
        })
        .collect()
}

/// Histogram with fixed-width buckets over [0, width*buckets); the final
/// bucket absorbs overflow. Used for per-quarter counts in Figure 1.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    width: u64,
    counts: Vec<u64>,
}

impl FixedHistogram {
    /// `buckets` buckets of `width` each; `buckets` must be > 0.
    pub fn new(width: u64, buckets: usize) -> Self {
        assert!(width > 0 && buckets > 0);
        FixedHistogram {
            width,
            counts: vec![0; buckets],
        }
    }

    /// Record one observation at `x`.
    pub fn record(&mut self, x: u64) {
        let i = ((x / self.width) as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
    }

    /// The bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median_u64(&[5, 1, 9]), Some(5));
        assert_eq!(median_u64(&[4, 1, 3, 2]), Some(2)); // lower-middle
        assert_eq!(median_u64(&[]), None);
        assert_eq!(median_f64(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median_f64(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10, 20, 30, 40, 50];
        assert_eq!(percentile_u64(&v, 50.0), Some(30));
        assert_eq!(percentile_u64(&v, 100.0), Some(50));
        assert_eq!(percentile_u64(&v, 1.0), Some(10));
        assert_eq!(percentile_u64(&[], 50.0), None);
    }

    #[test]
    fn ecdf_eval() {
        let e = Ecdf::new(vec![1, 2, 2, 4]);
        assert_eq!(e.eval(0), 0.0);
        assert_eq!(e.eval(1), 0.25);
        assert_eq!(e.eval(2), 0.75);
        assert_eq!(e.eval(4), 1.0);
        assert_eq!(e.eval(100), 1.0);
        assert!(Ecdf::new(vec![]).is_empty());
        assert_eq!(Ecdf::new(vec![]).eval(5), 0.0);
    }

    #[test]
    fn ecdf_series_monotone() {
        let e = Ecdf::new(vec![3, 7, 7, 20]);
        let s = e.series(&[0, 5, 10, 30]);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(s.last().unwrap().1, 1.0);
    }

    #[test]
    fn coverage_curve_plateaus_below_one() {
        // 4 items: detected at 10s, 100s, never, never.
        let delays = [Some(10), Some(100), None, None];
        let curve = coverage_curve(&delays, &[5, 50, 1000]);
        assert_eq!(curve, vec![(5, 0.0), (50, 0.25), (1000, 0.5)]);
    }

    #[test]
    fn coverage_curve_empty_population() {
        let curve = coverage_curve(&[], &[10]);
        assert_eq!(curve, vec![(10, 0.0)]);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = FixedHistogram::new(10, 3);
        for x in [0, 9, 10, 25, 999] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 2]); // 999 lands in the last bucket
        assert_eq!(h.total(), 5);
    }
}
