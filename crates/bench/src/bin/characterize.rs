//! Section 3 characterization: .com share, domain ages, noindex rate,
//! search-index rate, CT invisibility, banner obfuscation — measured over
//! the campaign's FWB phishing population vs the self-hosted sample.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_core::analysis::{lifetime_stats, TWO_WEEKS_SECS};
use freephish_core::campaign::RecordClass;
use freephish_core::characterize::{characterize, self_hosted_median_age};

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1eb);

    let sites: Vec<_> = m
        .records
        .iter()
        .filter_map(|r| match r.class {
            RecordClass::FwbPhish(fwb) => m
                .world
                .host(fwb)
                .site_by_url(&r.url)
                .map(|id| m.world.host(fwb).site(id).site.clone()),
            _ => None,
        })
        .collect();
    let c = characterize(&m.world, &sites, 180);
    let sh_age = self_hosted_median_age(&m.world, 180);

    println!(
        "\nSection 3 — characterization of {} FWB phishing sites\n",
        c.n
    );
    println!(
        "Hosted on .com-granting FWBs:   {:.1}%   [paper: ~89%]",
        c.on_com_tld * 100.0
    );
    println!(
        "Median WHOIS domain age:        {:.1} years [paper: 13.7 years]",
        c.median_domain_age_days.unwrap_or(0) as f64 / 365.25
    );
    println!(
        "Self-hosted median domain age:  {} days  [paper: 71 days]",
        sh_age.unwrap_or(0)
    );
    println!(
        "noindex meta tag present:       {:.1}%   [paper: 44.7%]",
        c.noindex_rate * 100.0
    );
    println!(
        "Indexed by the search engine:   {:.1}%   [paper: 4.1%]",
        c.indexed_rate * 100.0
    );
    println!(
        "Visible in CT logs:             {:.1}%   [paper: 0% — shared certs]",
        c.ct_visible_rate * 100.0
    );
    println!(
        "FWB banner hidden by attacker:  {:.1}%",
        c.banner_obfuscation_rate * 100.0
    );

    let fwb_life = lifetime_stats(&m.observations, true, TWO_WEEKS_SECS);
    let sh_life = lifetime_stats(&m.observations, false, TWO_WEEKS_SECS);
    println!("\nAttack uptime (two-week window):");
    println!(
        "  FWB:          {:.1}% still alive; removed ones lived {} (median)",
        fwb_life.survival_rate * 100.0,
        fwb_life
            .median_uptime
            .map(|d| d.as_hhmm())
            .unwrap_or_else(|| "N/A".into())
    );
    println!(
        "  self-hosted:  {:.1}% still alive; removed ones lived {} (median)",
        sh_life.survival_rate * 100.0,
        sh_life
            .median_uptime
            .map(|d| d.as_hhmm())
            .unwrap_or_else(|| "N/A".into())
    );

    write_json(
        "characterize",
        &serde_json::json!({
            "experiment": "characterize",
            "scale": scale,
            "n": c.n,
            "on_com_tld": c.on_com_tld,
            "median_domain_age_days": c.median_domain_age_days,
            "self_hosted_median_age_days": sh_age,
            "noindex_rate": c.noindex_rate,
            "indexed_rate": c.indexed_rate,
            "ct_visible_rate": c.ct_visible_rate,
            "banner_obfuscation_rate": c.banner_obfuscation_rate,
        }),
    );
}
