//! The URLNet-style baseline: URL string only.
//!
//! URLNet (Le et al. 2018) learns character- and word-level URL embeddings
//! with CNNs. The offline equivalent hashes character trigrams of the URL
//! into a 512-wide vector and fits an L2-regularised logistic regression —
//! the same information source and the same failure mode the paper
//! observes: FWB URLs look *benign* lexically (old .com domain, clean
//! host), so recall is the weakest of the line-up (0.68 in Table 2), while
//! inference is by far the fastest.

use super::{PageFetcher, PhishDetector};
use crate::groundtruth::LabeledSite;
use freephish_ml::logistic::{char_ngram_vector, LogisticConfig, LogisticRegression};
use freephish_simclock::Rng64;

/// Hash dimensionality of the n-gram space.
const DIM: usize = 512;
/// n-gram order.
const NGRAM: usize = 3;

/// A trained URLNet-style model.
pub struct UrlNetStyle {
    model: LogisticRegression,
}

impl UrlNetStyle {
    /// Train on a labelled corpus. Only the URL strings are consumed.
    pub fn train(corpus: &[LabeledSite], rng: &mut Rng64) -> UrlNetStyle {
        let rows: Vec<Vec<f64>> = corpus
            .iter()
            .map(|ls| char_ngram_vector(&ls.site.url, NGRAM, DIM))
            .collect();
        let labels: Vec<u8> = corpus.iter().map(|ls| ls.label).collect();
        let config = LogisticConfig {
            epochs: 25,
            learning_rate: 0.2,
            l2: 1e-4,
        };
        UrlNetStyle {
            model: LogisticRegression::train(&config, &rows, &labels, rng),
        }
    }
}

impl PhishDetector for UrlNetStyle {
    fn name(&self) -> &'static str {
        "URLNet"
    }

    fn score(&self, url: &str, _html: &str, _fetcher: &dyn PageFetcher) -> f64 {
        self.model
            .predict_proba(&char_ngram_vector(url, NGRAM, DIM))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::{build, GroundTruthConfig};
    use crate::models::NoFetch;

    #[test]
    fn trains_and_scores_in_unit_interval() {
        let corpus = build(&GroundTruthConfig::tiny());
        let mut rng = Rng64::new(1);
        let model = UrlNetStyle::train(&corpus, &mut rng);
        for ls in corpus.iter().take(20) {
            let s = model.score(&ls.site.url, &ls.site.html, &NoFetch);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(model.name(), "URLNet");
    }

    #[test]
    fn better_than_chance_on_held_out() {
        let corpus = build(&GroundTruthConfig {
            n_phish: 400,
            n_benign: 400,
            seed: 2,
        });
        let (train, test) = corpus.split_at(600);
        let mut rng = Rng64::new(3);
        let model = UrlNetStyle::train(train, &mut rng);
        let correct = test
            .iter()
            .filter(|ls| model.predict(&ls.site.url, &ls.site.html, &NoFetch) == ls.label)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.55, "accuracy {acc}");
    }
}
