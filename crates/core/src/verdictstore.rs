//! Store-backed verdict checking: the live-updatable replacement for a
//! static [`crate::extension::KnownSetChecker`].
//!
//! A [`StoreChecker`] follows a pipeline run's journal directory
//! *read-only* (the pipeline process is the WAL's single writer) and
//! applies every journaled verdict to its in-memory known set, so the
//! verdict service hot-reloads as the pipeline appends detections.
//! Manual `ADD`s from the wire protocol are durably journaled in a
//! *sidecar* store ([`SidecarAdds`], at `<dir>/extd-adds`) owned by the
//! daemon — never in the main journal — preserving single-writer
//! integrity on both logs.
//!
//! [`EventedStoreChecker`] is the same contract rebuilt for the evented
//! engine: reads resolve against a `freephish-serve`
//! [`ShardedIndex`] (RCU-style snapshots, no lock held during lookups)
//! and the main journal is ingested by an [`IndexPublisher`] built from
//! [`journal_payload_decoder`].
//!
//! Snapshot redelivery (the tail follower re-reads history after the
//! pipeline compacts its WAL) is harmless here: applying a verdict twice
//! is an idempotent map insert.
//!
//! At million-entry scale both checkers accept a *baked baseline*
//! (`freephish-mapidx`, see [`bake_index`]): an immutable mmap-loadable
//! image of the main journal's net state, loaded in milliseconds. Live
//! state shadows the baseline bit-identically — the journal is later in
//! time than any bake of its prefix — and the tail follower resumes from
//! the cursor stamped in the bake's header, so restart cost stops
//! scaling with journal history (DESIGN.md §15).

use crate::extension::{UrlChecker, Verdict};
use crate::journal::{decode_event, encode_event, obs_store_observer, AddEvent, RunEvent};
use freephish_mapidx::{bake_journal, BakeSummary, SnapshotIndex};
use freephish_serve::{IndexPublisher, OverlayIndex, PayloadDecoder, ShardedIndex};
use freephish_store::segment::scan_buffer;
use freephish_store::{Store, StoreOptions, TailCursor, TailFollower};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the sidecar store directory holding manual additions.
pub const ADDS_SUBDIR: &str = "extd-adds";

/// The daemon-owned durable journal of manual `ADD`s, kept in a sidecar
/// store (`<dir>/extd-adds`) so the pipeline's run journal keeps its
/// single writer.
pub struct SidecarAdds {
    store: Store,
}

impl SidecarAdds {
    /// Open (or create) the sidecar under `dir`. Returns the store plus
    /// every previously journaled `(url, score)` addition, in order.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(SidecarAdds, Vec<(String, f64)>)> {
        let (store, recovered) = Store::open_with(
            dir.as_ref().join(ADDS_SUBDIR),
            StoreOptions::default(),
            Some(obs_store_observer()),
        )?;
        let mut entries = Vec::new();
        let mut apply = |payload: &[u8]| -> io::Result<()> {
            match decode_event(payload)? {
                RunEvent::Add(a) => {
                    entries.push((a.url, a.score));
                    Ok(())
                }
                _ => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "sidecar store holds a non-ADD record",
                )),
            }
        };
        if let Some(snapshot) = &recovered.snapshot {
            let (frames, torn) = scan_buffer(snapshot);
            if torn.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "sidecar snapshot framing is corrupt",
                ));
            }
            for frame in frames {
                apply(&frame)?;
            }
        }
        for (_, payload) in &recovered.records {
            apply(payload)?;
        }
        Ok((SidecarAdds { store }, entries))
    }

    /// Durably journal one manual addition (append + fsync).
    pub fn append(&mut self, url: &str, score: f64) -> io::Result<()> {
        let ev = RunEvent::Add(AddEvent {
            url: url.to_string(),
            score,
        });
        self.store.append(&encode_event(&ev))?;
        self.store.sync()
    }

    /// Flush + fsync (shutdown path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.store.sync()
    }

    /// The sidecar store directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }
}

/// Decode one run-journal payload into an optional `(url, score)` entry:
/// the [`PayloadDecoder`] that lets a `freephish-serve`
/// [`IndexPublisher`] (which knows nothing of the journal schema) ingest
/// this crate's run journals.
pub fn journal_payload_decoder() -> PayloadDecoder {
    Box::new(|payload: &[u8]| match decode_event(payload)? {
        RunEvent::Verdict(v) => Ok(Some((v.url, v.score))),
        RunEvent::Add(a) => Ok(Some((a.url, a.score))),
        // The journal's bookkeeping records carry no verdicts.
        RunEvent::Meta(_) | RunEvent::Report(_) | RunEvent::Checkpoint(_) => Ok(None),
    })
}

/// Bake the *main* run journal at `store_dir` into an immutable
/// mmap-loadable index file at `out_path` (temp file + atomic rename),
/// recording the drained journal cursor in the header so a restarting
/// node resumes its tail follower there instead of replaying.
///
/// Sidecar `ADD`s (`<dir>/extd-adds`) are deliberately *not* baked: the
/// sidecar is replayed into the live delta on every open, and its
/// entries shadow the baseline bit-identically, so the bake stays a pure
/// function of the single-writer main journal.
pub fn bake_index(
    store_dir: impl AsRef<Path>,
    out_path: impl AsRef<Path>,
) -> io::Result<BakeSummary> {
    bake_journal(store_dir, out_path, journal_payload_decoder())
}

/// Load a baked index, mapping loader errors into `io::Error` for the
/// daemon's `io::Result` plumbing.
fn open_snapshot_index(path: &Path) -> io::Result<SnapshotIndex> {
    SnapshotIndex::open(path).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// A [`UrlChecker`] backed by a run-journal store directory, hot-reloading
/// as the pipeline appends verdicts, plus a durable sidecar for manual
/// additions.
pub struct StoreChecker {
    known: RwLock<HashMap<String, f64>>,
    base: Option<Arc<SnapshotIndex>>,
    generation: AtomicU64,
    main: Mutex<TailFollower>,
    adds: Mutex<SidecarAdds>,
}

impl StoreChecker {
    /// Open against the run journal at `dir`. Recovers previously
    /// journaled manual additions from the sidecar immediately; call
    /// [`StoreChecker::reload`] to ingest the main journal (and again
    /// periodically to hot-reload).
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StoreChecker> {
        StoreChecker::open_with_base(dir, None)
    }

    /// Like [`StoreChecker::open`], but with an optional baked-index
    /// baseline: lookups missing the in-memory map fall through to the
    /// mmap, and the main-journal follower resumes from the bake's
    /// cursor instead of replaying the whole WAL.
    pub fn open_with_base(
        dir: impl AsRef<Path>,
        index_file: Option<&Path>,
    ) -> io::Result<StoreChecker> {
        let dir = dir.as_ref().to_path_buf();
        let (adds, recovered) = SidecarAdds::open(&dir)?;
        let known: HashMap<String, f64> = recovered.into_iter().collect();
        let mut base = None;
        let mut main = TailFollower::new(&dir);
        if let Some(path) = index_file {
            let idx = open_snapshot_index(path)?;
            if let Some(cursor) = idx.cursor() {
                main = TailFollower::resume(&dir, cursor);
            }
            base = Some(Arc::new(idx));
        }
        // A loaded baseline counts as one generation so readiness flips
        // even before the first journal record arrives.
        let generation = known.len() as u64 + base.is_some() as u64;
        Ok(StoreChecker {
            known: RwLock::new(known),
            base,
            generation: AtomicU64::new(generation),
            main: Mutex::new(main),
            adds: Mutex::new(adds),
        })
    }

    fn apply_payload(&self, payload: &[u8]) -> io::Result<usize> {
        match decode_event(payload)? {
            RunEvent::Verdict(v) => {
                self.known.write().insert(v.url, v.score);
                Ok(1)
            }
            RunEvent::Add(a) => {
                self.known.write().insert(a.url, a.score);
                Ok(1)
            }
            // The journal's bookkeeping records carry no verdicts.
            RunEvent::Meta(_) | RunEvent::Report(_) | RunEvent::Checkpoint(_) => Ok(0),
        }
    }

    /// Ingest everything the pipeline has journaled since the last call.
    /// Returns the number of verdicts applied; bumps the generation once
    /// when anything changed.
    pub fn reload(&self) -> io::Result<usize> {
        let batch = self.main.lock().poll()?;
        let mut applied = 0;
        if let Some(snapshot) = &batch.snapshot {
            let (frames, torn) = scan_buffer(snapshot);
            if torn.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal snapshot framing is corrupt",
                ));
            }
            for frame in frames {
                applied += self.apply_payload(&frame)?;
            }
        }
        for payload in &batch.records {
            applied += self.apply_payload(payload)?;
        }
        if applied > 0 {
            self.generation.fetch_add(1, Ordering::SeqCst);
        }
        Ok(applied)
    }

    /// Durably journal a manual addition in the sidecar and apply it.
    pub fn add_durable(&self, url: &str, score: f64) -> io::Result<u64> {
        self.adds.lock().append(url, score)?;
        self.known.write().insert(url.to_string(), score);
        Ok(self.generation.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Flush + fsync the sidecar (shutdown path).
    pub fn sync(&self) -> io::Result<()> {
        self.adds.lock().sync()
    }

    /// Number of known-phishing URLs. With a baseline loaded this is an
    /// upper bound: live entries that shadow baked ones count twice.
    pub fn len(&self) -> usize {
        self.known.read().len() + self.base.as_ref().map_or(0, |b| b.len() as usize)
    }

    /// True when nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sidecar store directory.
    pub fn adds_dir(&self) -> PathBuf {
        self.adds.lock().dir().to_path_buf()
    }
}

/// The evented engine's store-backed checker: the [`StoreChecker`]
/// contract rebuilt on a `freephish-serve` [`ShardedIndex`], so reads
/// take RCU-style snapshots instead of a shared `RwLock`, and batches
/// resolve against one consistent generation.
///
/// Main-journal ingestion happens through the [`IndexPublisher`] returned
/// by [`EventedStoreChecker::publisher`]; poll it from the serve loop.
pub struct EventedStoreChecker {
    dir: PathBuf,
    overlay: Arc<OverlayIndex>,
    base_cursor: Option<TailCursor>,
    adds: Mutex<SidecarAdds>,
}

impl EventedStoreChecker {
    /// Open against the run journal at `dir`. Recovers previously
    /// journaled manual additions from the sidecar into the index
    /// immediately; pair with [`EventedStoreChecker::publisher`] to ingest
    /// (and hot-reload) the main journal.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<EventedStoreChecker> {
        EventedStoreChecker::open_with_base(dir, None)
    }

    /// Like [`EventedStoreChecker::open`], but with an optional baked
    /// baseline: reads go through the two-level [`OverlayIndex`] (live
    /// delta over the mmap), and [`EventedStoreChecker::publisher`]
    /// resumes the journal tail from the bake's cursor, so a restart
    /// replays only the suffix.
    pub fn open_with_base(
        dir: impl AsRef<Path>,
        index_file: Option<&Path>,
    ) -> io::Result<EventedStoreChecker> {
        let dir = dir.as_ref().to_path_buf();
        let (adds, recovered) = SidecarAdds::open(&dir)?;
        let delta = Arc::new(ShardedIndex::with_default_shards());
        if !recovered.is_empty() {
            delta.publish(recovered);
        }
        let mut base_cursor = None;
        let overlay = match index_file {
            Some(path) => {
                let idx = open_snapshot_index(path)?;
                base_cursor = idx.cursor();
                Arc::new(OverlayIndex::with_base(idx, delta))
            }
            None => Arc::new(OverlayIndex::new(delta)),
        };
        Ok(EventedStoreChecker {
            dir,
            overlay,
            base_cursor,
            adds: Mutex::new(adds),
        })
    }

    /// An [`IndexPublisher`] tailing the main run journal into this
    /// checker's delta — resumed at the baseline's cursor when one was
    /// loaded.
    pub fn publisher(&self) -> IndexPublisher {
        let follower = match self.base_cursor {
            Some(cursor) => TailFollower::resume(&self.dir, cursor),
            None => TailFollower::new(&self.dir),
        };
        IndexPublisher::with_follower(follower, self.overlay.delta(), journal_payload_decoder())
    }

    /// The live delta index (what the publisher feeds).
    pub fn index(&self) -> Arc<ShardedIndex> {
        self.overlay.delta()
    }

    /// The two-level read path the serve layer mounts.
    pub fn overlay(&self) -> Arc<OverlayIndex> {
        self.overlay.clone()
    }

    /// The run-journal directory this checker follows.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Swap in a freshly baked baseline (re-bake completion). The delta
    /// is deliberately left intact — its entries shadow the new baseline
    /// bit-identically; it shrinks on the next restart, which resumes
    /// from the new bake's cursor.
    pub fn set_base(&self, base: SnapshotIndex) {
        self.overlay.set_base(base);
    }

    /// Durably journal a manual addition in the sidecar and publish it.
    pub fn add_durable(&self, url: &str, score: f64) -> io::Result<u64> {
        self.adds.lock().append(url, score)?;
        self.overlay.add(url, score).map_err(io::Error::other)
    }

    /// Flush + fsync the sidecar (shutdown path).
    pub fn sync(&self) -> io::Result<()> {
        self.adds.lock().sync()
    }

    /// Number of known-phishing URLs. With a baseline loaded this is an
    /// upper bound: delta entries that shadow baked ones count twice.
    pub fn len(&self) -> usize {
        self.overlay.delta().len() + self.overlay.base_len() as usize
    }

    /// True when nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl UrlChecker for EventedStoreChecker {
    fn check(&self, url: &str) -> Verdict {
        self.overlay.check(url)
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        self.overlay.check_many(urls)
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        self.add_durable(url, score)
            .map_err(|e| format!("store write failed: {e}"))
    }

    fn generation(&self) -> u64 {
        self.overlay.generation()
    }
}

impl UrlChecker for StoreChecker {
    fn check(&self, url: &str) -> Verdict {
        // The live map first — journal entries are later in time than any
        // bake of the journal's prefix, so they shadow the baseline.
        if let Some(&score) = self.known.read().get(url) {
            return Verdict::Phishing(score);
        }
        match self.base.as_ref().and_then(|b| b.get(url)) {
            Some(score) => Verdict::Phishing(score),
            None => Verdict::Safe(0.0),
        }
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        self.add_durable(url, score)
            .map_err(|e| format!("store write failed: {e}"))
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

/// What a `--store DIR` resolves to for a chosen serving engine: the
/// checker plus the periodic work a serve loop must do to hot-reload it.
/// The daemon (and any embedder) drives it with one `open` → repeated
/// [`StoreBacking::poll`] → final [`StoreBacking::sync`] — the engine
/// split stays an implementation detail in this module.
pub enum StoreBacking {
    /// Map-backed checker for the threaded engine; poll = journal reload.
    Threaded(Arc<StoreChecker>),
    /// Index-backed checker for the evented engine; poll = publisher poll.
    Evented(Arc<EventedStoreChecker>, IndexPublisher),
}

impl StoreBacking {
    /// Open `dir` for the selected engine, perform one full catch-up read
    /// (so the checker starts current), and durably journal any
    /// `seed_entries` (a `--blocklist` file) through the sidecar.
    pub fn open(
        dir: impl AsRef<Path>,
        evented: bool,
        seed_entries: Vec<(String, f64)>,
    ) -> io::Result<StoreBacking> {
        StoreBacking::open_with(dir, evented, seed_entries, None)
    }

    /// [`StoreBacking::open`] with an optional baked-index baseline
    /// (`--index-file`): the checker mounts the mmap under its live
    /// state and the catch-up read covers only the journal suffix past
    /// the bake's cursor.
    pub fn open_with(
        dir: impl AsRef<Path>,
        evented: bool,
        seed_entries: Vec<(String, f64)>,
        index_file: Option<&Path>,
    ) -> io::Result<StoreBacking> {
        if evented {
            let c = Arc::new(EventedStoreChecker::open_with_base(dir, index_file)?);
            let mut publisher = c.publisher();
            publisher.poll()?;
            for (url, score) in seed_entries {
                c.add_durable(&url, score)?;
            }
            Ok(StoreBacking::Evented(c, publisher))
        } else {
            let c = Arc::new(StoreChecker::open_with_base(dir, index_file)?);
            c.reload()?;
            for (url, score) in seed_entries {
                c.add_durable(&url, score)?;
            }
            Ok(StoreBacking::Threaded(c))
        }
    }

    /// Re-bake the main journal into `out_path` and swap the fresh
    /// baseline into the serving overlay without a restart (evented
    /// engine only). Returns the bake summary.
    pub fn rebake(&self, out_path: &Path) -> io::Result<BakeSummary> {
        match self {
            StoreBacking::Evented(c, _) => {
                let summary = bake_index(c.dir(), out_path)?;
                c.set_base(open_snapshot_index(out_path)?);
                Ok(summary)
            }
            StoreBacking::Threaded(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "re-bake requires the evented engine",
            )),
        }
    }

    /// The checker to mount on the serving engine.
    pub fn checker(&self) -> Arc<dyn UrlChecker> {
        match self {
            StoreBacking::Threaded(c) => c.clone(),
            StoreBacking::Evented(c, _) => c.clone(),
        }
    }

    /// Known phishing URLs currently loaded.
    pub fn len(&self) -> usize {
        match self {
            StoreBacking::Threaded(c) => c.len(),
            StoreBacking::Evented(c, _) => c.len(),
        }
    }

    /// True when no verdicts are loaded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingest whatever the pipeline has appended since the last poll.
    /// The caller's readiness flag should track the result: `Ok` means
    /// the journal tail is caught up.
    pub fn poll(&mut self) -> io::Result<()> {
        match self {
            StoreBacking::Threaded(c) => c.reload().map(|_| ()),
            StoreBacking::Evented(_, publisher) => publisher.poll().map(|_| ()),
        }
    }

    /// Flush the sidecar ADD journal.
    pub fn sync(&self) -> io::Result<()> {
        match self {
            StoreBacking::Threaded(c) => c.sync(),
            StoreBacking::Evented(c, _) => c.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{CheckpointEvent, RunJournal, RunMeta, VerdictEvent};
    use freephish_fwbsim::history::Platform;
    use freephish_store::testutil::TempDir;
    use freephish_webgen::FwbKind;

    fn meta() -> RunMeta {
        RunMeta {
            seed: 9,
            days: 1,
            scale: 0.01,
            benign_fraction: 0.0,
            threshold: 0.5,
            end_secs: 86_400,
        }
    }

    fn verdict(n: u64) -> VerdictEvent {
        VerdictEvent {
            url: format!("https://v{n}.weebly.com/"),
            fwb: FwbKind::Weebly,
            platform: Platform::Twitter,
            post: n,
            observed_at_secs: n * 600,
            score: 0.9,
        }
    }

    #[test]
    fn hot_reloads_verdicts_from_a_live_journal() {
        let dir = TempDir::new("storechecker-live");
        let mut journal = RunJournal::create(dir.path(), &meta()).unwrap();
        let checker = StoreChecker::open(dir.path()).unwrap();
        assert_eq!(checker.reload().unwrap(), 0);
        let g0 = checker.generation();

        journal.append_verdict(verdict(1)).unwrap();
        journal
            .checkpoint(CheckpointEvent {
                tick_secs: 600,
                scanned: 1,
                observed: 1,
                detections_total: 1,
            })
            .unwrap();
        assert_eq!(checker.reload().unwrap(), 1);
        assert!(checker.generation() > g0);
        assert!(checker.check("https://v1.weebly.com/").is_phishing());
        assert!(!checker.check("https://v2.weebly.com/").is_phishing());

        // More ticks, picked up incrementally.
        journal.append_verdict(verdict(2)).unwrap();
        journal
            .checkpoint(CheckpointEvent {
                tick_secs: 1200,
                scanned: 2,
                observed: 2,
                detections_total: 2,
            })
            .unwrap();
        assert_eq!(checker.reload().unwrap(), 1);
        assert!(checker.check("https://v2.weebly.com/").is_phishing());
    }

    #[test]
    fn survives_journal_compaction_via_snapshot_redelivery() {
        let dir = TempDir::new("storechecker-compact");
        let mut journal = RunJournal::create(dir.path(), &meta()).unwrap();
        journal.snapshot_every_ticks = 2;
        let checker = StoreChecker::open(dir.path()).unwrap();
        for t in 1..=6u64 {
            journal.append_verdict(verdict(t)).unwrap();
            journal
                .checkpoint(CheckpointEvent {
                    tick_secs: t * 600,
                    scanned: t,
                    observed: t,
                    detections_total: t,
                })
                .unwrap();
            // Poll on every tick so the follower crosses compactions.
            checker.reload().unwrap();
        }
        for t in 1..=6u64 {
            assert!(
                checker
                    .check(&format!("https://v{t}.weebly.com/"))
                    .is_phishing(),
                "verdict {t} lost across compaction"
            );
        }
    }

    #[test]
    fn manual_adds_are_durable_across_reopen() {
        let dir = TempDir::new("storechecker-adds");
        // No run journal at all: the checker still works, sidecar-only.
        {
            let checker = StoreChecker::open(dir.path()).unwrap();
            checker
                .add_durable("https://manual.wixsite.com/a", 0.88)
                .unwrap();
            checker
                .add_durable("https://manual.wixsite.com/b", 0.77)
                .unwrap();
            assert_eq!(checker.len(), 2);
        }
        let checker = StoreChecker::open(dir.path()).unwrap();
        assert_eq!(checker.len(), 2);
        assert!(checker.check("https://manual.wixsite.com/a").is_phishing());
        assert!(checker.check("https://manual.wixsite.com/b").is_phishing());
        assert!(checker.generation() > 0);
    }

    #[test]
    fn sidecar_never_touches_the_main_journal() {
        let dir = TempDir::new("storechecker-singlewriter");
        let mut journal = RunJournal::create(dir.path(), &meta()).unwrap();
        let checker = StoreChecker::open(dir.path()).unwrap();
        checker
            .add_durable("https://manual.weebly.com/", 0.8)
            .unwrap();
        // The pipeline's journal still opens cleanly — nothing foreign was
        // appended to it.
        journal
            .checkpoint(CheckpointEvent {
                tick_secs: 600,
                scanned: 0,
                observed: 0,
                detections_total: 0,
            })
            .unwrap();
        drop(journal);
        let (_, rec) = RunJournal::open(dir.path()).unwrap();
        assert_eq!(rec.dropped_events, 0);
        assert!(rec.events.iter().all(|e| !matches!(e, RunEvent::Add(_))));
    }

    #[test]
    fn evented_checker_hot_reloads_via_publisher() {
        let dir = TempDir::new("eventedchecker-live");
        let mut journal = RunJournal::create(dir.path(), &meta()).unwrap();
        let checker = EventedStoreChecker::open(dir.path()).unwrap();
        let mut publisher = checker.publisher();
        // Only the Meta bookkeeping record exists: nothing to publish.
        assert_eq!(publisher.poll().unwrap(), 0);
        assert_eq!(checker.generation(), 0);

        journal.append_verdict(verdict(1)).unwrap();
        journal
            .checkpoint(CheckpointEvent {
                tick_secs: 600,
                scanned: 1,
                observed: 1,
                detections_total: 1,
            })
            .unwrap();
        assert_eq!(publisher.poll().unwrap(), 1);
        assert!(checker.check("https://v1.weebly.com/").is_phishing());
        assert!(!checker.check("https://v2.weebly.com/").is_phishing());
        assert_eq!(checker.generation(), 1);

        // Batches resolve against the published index too.
        let verdicts = checker.check_many(&[
            "https://v1.weebly.com/".to_string(),
            "https://v2.weebly.com/".to_string(),
        ]);
        assert!(verdicts[0].is_phishing());
        assert!(!verdicts[1].is_phishing());
    }

    #[test]
    fn evented_manual_adds_are_durable_and_engine_compatible() {
        let dir = TempDir::new("eventedchecker-adds");
        {
            let checker = EventedStoreChecker::open(dir.path()).unwrap();
            checker
                .add_durable("https://manual.wixsite.com/a", 0.88)
                .unwrap();
            assert_eq!(checker.len(), 1);
            checker.sync().unwrap();
        }
        // The evented checker recovers its own sidecar...
        let again = EventedStoreChecker::open(dir.path()).unwrap();
        assert!(again.check("https://manual.wixsite.com/a").is_phishing());
        // ...and the threaded engine's checker reads the same format, so
        // `--engine` can be switched without losing manual additions.
        let threaded = StoreChecker::open(dir.path()).unwrap();
        assert!(threaded.check("https://manual.wixsite.com/a").is_phishing());
    }
}
