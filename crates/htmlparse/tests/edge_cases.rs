//! Edge-case regression tests for the HTML pipeline — the malformed
//! constructs phishing kits actually emit (broken tags, missing quotes,
//! nested comments, script soup).

use freephish_htmlparse::{parse, tokenize, Node, Token};

#[test]
fn attribute_without_closing_quote_does_not_hang() {
    let doc = parse(r#"<a href="https://x.com/unclosed>text</a><p>after</p>"#);
    // The unterminated quote swallows to EOF or recovers; either way the
    // parser terminates and yields a tree.
    assert!(!doc.is_empty());
}

#[test]
fn style_is_raw_text_like_script() {
    let toks = tokenize("<style>div > p { color: red } </style><p>x</p>");
    // The '>' inside the CSS must not terminate anything.
    assert!(matches!(&toks[1], Token::Text(t) if t.contains("color: red")));
    assert!(toks
        .iter()
        .any(|t| matches!(t, Token::Open { tag, .. } if tag == "p")));
}

#[test]
fn script_close_tag_case_insensitive() {
    let toks = tokenize("<script>x</SCRIPT><p>y</p>");
    assert!(toks
        .iter()
        .any(|t| matches!(t, Token::Open { tag, .. } if tag == "p")));
}

#[test]
fn duplicate_attributes_keep_first_for_lookup() {
    let doc = parse(r#"<a href="first" href="second">x</a>"#);
    let a = &doc.elements_by_tag("a")[0];
    assert_eq!(a.attr("href"), Some("first"));
}

#[test]
fn deeply_nested_divs_do_not_overflow() {
    let mut html = String::new();
    for _ in 0..5000 {
        html.push_str("<div>");
    }
    html.push_str("core");
    // No closing tags at all: auto-close at EOF, iterative walk.
    let doc = parse(&html);
    let mut count = 0;
    doc.walk(|_, n| {
        if matches!(n, Node::Element { .. }) {
            count += 1;
        }
    });
    assert_eq!(count, 5000);
    assert!(doc.visible_text().contains("core"));
}

#[test]
fn comment_containing_tag_markup_not_parsed() {
    let doc = parse("<!-- <form><input type=\"password\"></form> --><p>x</p>");
    assert!(!doc.has_login_form());
    assert_eq!(doc.elements_by_tag("p").len(), 1);
}

#[test]
fn void_element_with_self_closing_slash() {
    let doc = parse("<meta name=\"robots\" content=\"noindex\" /><p>x</p>");
    assert!(doc.has_noindex_meta());
}

#[test]
fn mixed_case_tags_fold() {
    let doc = parse("<DIV><P>x</P></DIV>");
    assert_eq!(doc.elements_by_tag("div").len(), 1);
    assert_eq!(doc.elements_by_tag("p").len(), 1);
}

#[test]
fn attributes_with_urls_containing_gt() {
    // '>' inside a quoted attribute value must not end the tag.
    let doc = parse(r#"<a href="https://x.com/?q=a>b">link</a>"#);
    assert_eq!(doc.links(), vec!["https://x.com/?q=a>b"]);
}

#[test]
fn entity_heavy_text() {
    let doc = parse("<p>Tom &amp; Jerry &lt;3 &quot;cheese&quot;</p>");
    assert_eq!(doc.visible_text(), "Tom & Jerry <3 \"cheese\"");
}

#[test]
fn empty_attribute_values() {
    let doc = parse(r#"<input type="" name="">"#);
    let inputs = doc.inputs();
    assert_eq!(inputs.len(), 1);
    assert_eq!(inputs[0].attr("type"), Some(""));
}

#[test]
fn many_siblings_fast_path() {
    let html: String = (0..2000).map(|i| format!("<p>{i}</p>")).collect();
    let doc = parse(&html);
    assert_eq!(doc.elements_by_tag("p").len(), 2000);
}

#[test]
fn text_of_skips_style_content() {
    let doc = parse("<div><style>.x{display:none}</style>visible</div>");
    assert_eq!(doc.visible_text(), "visible");
}

#[test]
fn iframe_without_src() {
    let doc = parse("<iframe></iframe>");
    assert_eq!(doc.iframes().len(), 1);
    assert_eq!(doc.iframes()[0].attr("src"), None);
}

#[test]
fn tag_elements_ignore_text_and_comments() {
    let doc = parse("<div>text<!-- c --><p>more</p></div>");
    assert_eq!(
        doc.tag_elements(),
        vec!["<div>".to_string(), "<p>".to_string()]
    );
}
