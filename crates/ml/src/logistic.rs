//! L2-regularised logistic regression trained by mini-batch SGD.
//!
//! This powers the URLNet-style baseline: the original URLNet learns URL
//! representations with character- and word-level CNNs; the offline Rust
//! equivalent hashes character n-grams into a fixed-width sparse vector and
//! fits a linear model — the same "URL string only" information source with
//! the same speed profile (fast, weakest accuracy of the Table 2 line-up).

use freephish_simclock::Rng64;

/// Hyper-parameters for SGD training.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 penalty.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
        }
    }
}

/// A fitted linear classifier over dense feature vectors.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl LogisticRegression {
    /// Train on parallel rows/labels. Rows must share a width.
    pub fn train(
        config: &LogisticConfig,
        rows: &[Vec<f64>],
        labels: &[u8],
        rng: &mut Rng64,
    ) -> LogisticRegression {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty());
        let dim = rows[0].len();
        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = &rows[i];
                debug_assert_eq!(row.len(), dim);
                let z: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = sigmoid(z) - labels[i] as f64;
                for (wi, xi) in w.iter_mut().zip(row) {
                    *wi -= config.learning_rate * (err * xi + config.l2 * *wi);
                }
                b -= config.learning_rate * err;
            }
        }
        LogisticRegression {
            weights: w,
            bias: b,
        }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(wi, xi)| wi * xi)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }
}

/// Hash a string's character n-grams into a `dim`-wide dense count vector
/// (L2-normalised). This is the featurisation the URLNet-style model uses.
pub fn char_ngram_vector(s: &str, n: usize, dim: usize) -> Vec<f64> {
    assert!(n >= 1 && dim >= 1);
    let mut v = vec![0.0f64; dim];
    let bytes = s.as_bytes();
    if bytes.len() >= n {
        for w in bytes.windows(n) {
            // FNV-1a
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in w {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            v[(h % dim as u64) as usize] += 1.0;
        }
    }
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        let mut rng = Rng64::new(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..400 {
            let y = rng.chance(0.5);
            let c = if y { 1.5 } else { -1.5 };
            rows.push(vec![rng.normal_ms(c, 1.0), rng.normal_ms(c, 1.0)]);
            labels.push(u8::from(y));
        }
        let model = LogisticRegression::train(&LogisticConfig::default(), &rows, &labels, &mut rng);
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &y)| model.predict(r) == y)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.9);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let mut rng = Rng64::new(2);
        let rows = vec![vec![0.0], vec![100.0], vec![-100.0]];
        let labels = vec![0, 1, 0];
        let model = LogisticRegression::train(&LogisticConfig::default(), &rows, &labels, &mut rng);
        for r in &rows {
            let p = model.predict_proba(r);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn ngram_vector_is_normalised() {
        let v = char_ngram_vector("https://evil.weebly.com/login", 3, 128);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ngram_vector_short_string() {
        let v = char_ngram_vector("ab", 3, 64);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn similar_strings_similar_vectors() {
        let a = char_ngram_vector("https://paypal-login.weebly.com/", 3, 256);
        let b = char_ngram_vector("https://paypal-log1n.weebly.com/", 3, 256);
        let c = char_ngram_vector("completely different string!!", 3, 256);
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>();
        assert!(dot(&a, &b) > dot(&a, &c));
    }

    #[test]
    fn ngram_classifier_separates_vocabularies() {
        // "login"-flavoured strings vs "garden"-flavoured strings.
        let mut rng = Rng64::new(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let (s, y) = if i % 2 == 0 {
                (format!("secure-login-verify-{i}.example.com/account"), 1)
            } else {
                (format!("garden-flowers-{i}.example.com/plants"), 0)
            };
            rows.push(char_ngram_vector(&s, 3, 256));
            labels.push(y);
        }
        let model = LogisticRegression::train(&LogisticConfig::default(), &rows, &labels, &mut rng);
        let p_phish = model.predict_proba(&char_ngram_vector(
            "new-secure-login-verify.example.com/account",
            3,
            256,
        ));
        let p_benign = model.predict_proba(&char_ngram_vector(
            "my-garden-flowers.example.com/plants",
            3,
            256,
        ));
        assert!(p_phish > 0.5, "p_phish={p_phish}");
        assert!(p_benign < 0.5, "p_benign={p_benign}");
    }
}
