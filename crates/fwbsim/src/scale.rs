//! Scale-mode site sampler: million-site worlds with the paper's
//! heavy-tailed shape, generated *streaming* so resident memory stays
//! bounded no matter how many sites are asked for.
//!
//! Two distributions drive the shape:
//!
//! * **FWB choice** follows Table 4's per-service URL counts
//!   ([`FwbDescriptor::paper_url_count`]): Weebly and Wix dominate, the
//!   tail services host a trickle. Sampling is O(1) via a Walker alias
//!   table built once over the 17 services.
//! * **Brand targeting** follows Figure 5: a Zipf law over the 109-brand
//!   catalog ([`BRANDS`]) so a handful of consumer platforms absorb most
//!   of the phishing pages.
//!
//! The crucial property for scale worlds is *random access*: every site is
//! a pure function of `(seed, index)` ([`ScaleSampler::site_at`]), derived
//! through the same fork discipline as the rest of the simulator. Nothing
//! is materialised — a 10M-site world is 10M calls, each allocating only
//! its own URL string — so the soak harness can stream one chunk at a
//! time and assert that RSS stays flat.

use freephish_simclock::{Rng64, Zipf};
use freephish_webgen::{Brand, FwbKind, ALL_FWBS, BRANDS};

/// Default Zipf exponent for brand popularity; matches the campaign
/// generators elsewhere in the simulator (head brand ≈ 12% of pages).
pub const DEFAULT_BRAND_ZIPF_S: f64 = 1.05;

/// Default fraction of sites that are phishing pages; the remainder are
/// the benign hobby/business sites that make FWBs "free waters" in the
/// first place.
pub const DEFAULT_PHISH_FRACTION: f64 = 0.2;

/// Walker alias table: O(1) sampling from a fixed discrete distribution.
///
/// Built once per sampler over the 17 FWB weights; `sample` costs one
/// index draw plus one f64 draw regardless of table size.
#[derive(Debug, Clone)]
struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    fn new(weights: &[u64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "alias table needs a positive total weight");
        let n = weights.len();
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| w as f64 * n as f64 / total as f64)
            .collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let (s, l) = (small.pop().unwrap(), large.pop().unwrap());
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    fn sample(&self, rng: &mut Rng64) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// One generated site in a scale world. Owns only its name and URL;
/// everything else is `Copy` or a `'static` catalog reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSite {
    /// Position in the world; `site_at(index)` regenerates this site.
    pub index: u64,
    /// Which free website builder hosts it.
    pub fwb: FwbKind,
    /// Spoofed brand — `Some` only for phishing sites.
    pub brand: Option<&'static Brand>,
    /// Subdomain / path label on the FWB.
    pub site_name: String,
    /// Full URL as the FWB would serve it.
    pub url: String,
    /// Whether the site is a phishing page.
    pub phishing: bool,
    /// Classifier-style score: phishing in `[0.5, 1.0)`, benign in
    /// `[0.0, 0.5)`. Deterministic, so baked indexes and journal replays
    /// can be compared bit-for-bit.
    pub score: f64,
}

/// Lowercase base-36 rendering of `n` — the per-site uniqueness tag kept
/// short enough that a 10M-site world adds only ~5 characters per name.
fn base36(mut n: u64) -> String {
    const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = [0u8; 13];
    let mut i = out.len();
    loop {
        i -= 1;
        out[i] = DIGITS[(n % 36) as usize];
        n /= 36;
        if n == 0 {
            break;
        }
    }
    String::from_utf8_lossy(&out[i..]).into_owned()
}

const PHISH_ACTIONS: &[&str] = &[
    "login", "verify", "secure", "support", "account", "update", "billing", "auth", "help",
    "signin", "confirm", "service",
];

const BENIGN_WORDS_A: &[&str] = &[
    "sunny", "blue", "maple", "little", "happy", "north", "green", "river", "cedar", "golden",
    "quiet", "bright", "rustic", "coastal", "urban", "family",
];

const BENIGN_WORDS_B: &[&str] = &[
    "bakery",
    "photos",
    "garden",
    "studio",
    "crafts",
    "travel",
    "yoga",
    "books",
    "kitchen",
    "music",
    "fitness",
    "design",
    "wedding",
    "portfolio",
    "cafe",
    "blog",
];

/// Streaming, random-access generator of heavy-tailed FWB site worlds.
#[derive(Debug, Clone)]
pub struct ScaleSampler {
    stream_seed: u64,
    fwb_table: AliasTable,
    brand_zipf: Zipf,
    phish_fraction: f64,
}

impl ScaleSampler {
    /// Build a sampler with the default brand exponent and phishing mix.
    pub fn new(seed: u64) -> ScaleSampler {
        ScaleSampler::with_shape(seed, DEFAULT_BRAND_ZIPF_S, DEFAULT_PHISH_FRACTION)
    }

    /// Build a sampler with explicit distribution knobs.
    pub fn with_shape(seed: u64, brand_zipf_s: f64, phish_fraction: f64) -> ScaleSampler {
        assert!(
            (0.0..=1.0).contains(&phish_fraction),
            "phish_fraction must be in [0, 1]"
        );
        let weights: Vec<u64> = ALL_FWBS.iter().map(|d| d.paper_url_count).collect();
        ScaleSampler {
            // One draw from the seeded root, mirroring `Rng64::fork`: the
            // per-index streams stay independent of any other subsystem
            // seeded from the same root.
            stream_seed: Rng64::new(seed).next_u64(),
            fwb_table: AliasTable::new(&weights),
            brand_zipf: Zipf::new(BRANDS.len(), brand_zipf_s),
            phish_fraction,
        }
    }

    /// Per-index generator, identical to `root.fork(index)` but without
    /// mutating shared state — this is what makes `site_at` `&self` and
    /// safe to call from many threads at once.
    fn rng_at(&self, index: u64) -> Rng64 {
        Rng64::new(self.stream_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Generate site `index` of the world. Pure in `(seed, index)`: the
    /// same pair always yields the same site, so worlds never need to be
    /// materialised to be revisited. Site names embed the index (base36),
    /// so distinct indices are distinct sites — a world of N sites is N
    /// *unique* URLs, which bakes and dedup tests rely on.
    pub fn site_at(&self, index: u64) -> ScaleSite {
        let mut rng = self.rng_at(index);
        let fwb = ALL_FWBS[self.fwb_table.sample(&mut rng)].kind;
        let phishing = rng.chance(self.phish_fraction);
        let tag = base36(index);
        let (brand, site_name, score) = if phishing {
            let brand = &BRANDS[self.brand_zipf.sample(&mut rng)];
            let action = PHISH_ACTIONS[rng.index(PHISH_ACTIONS.len())];
            let name = format!("{}-{action}-{tag}", brand.token);
            (Some(brand), name, 0.5 + rng.f64() * 0.5)
        } else {
            let a = BENIGN_WORDS_A[rng.index(BENIGN_WORDS_A.len())];
            let b = BENIGN_WORDS_B[rng.index(BENIGN_WORDS_B.len())];
            (None, format!("{a}-{b}-{tag}"), rng.f64() * 0.5)
        };
        let url = fwb.site_url(&site_name);
        ScaleSite {
            index,
            fwb,
            brand,
            site_name,
            url,
            phishing,
            score,
        }
    }
}

/// Bounded-memory distribution survey of a (sampled) world pass: 17 FWB
/// counters + 109 brand counters + two totals, regardless of world size.
#[derive(Debug, Clone)]
pub struct ScaleStats {
    /// Sites seen per FWB, indexed as in [`ALL_FWBS`].
    pub per_fwb: Vec<u64>,
    /// Phishing pages seen per brand, indexed as in [`BRANDS`].
    pub per_brand: Vec<u64>,
    /// Phishing sites seen.
    pub phishing: u64,
    /// Benign sites seen.
    pub benign: u64,
}

impl ScaleStats {
    /// Empty survey.
    pub fn new() -> ScaleStats {
        ScaleStats {
            per_fwb: vec![0; ALL_FWBS.len()],
            per_brand: vec![0; BRANDS.len()],
            phishing: 0,
            benign: 0,
        }
    }

    /// Fold one site into the counters.
    pub fn record(&mut self, site: &ScaleSite) {
        let fwb_idx = ALL_FWBS
            .iter()
            .position(|d| d.kind == site.fwb)
            .expect("site FWB comes from ALL_FWBS");
        self.per_fwb[fwb_idx] += 1;
        if site.phishing {
            self.phishing += 1;
            if let Some(brand) = site.brand {
                if let Some(i) = BRANDS.iter().position(|b| b.token == brand.token) {
                    self.per_brand[i] += 1;
                }
            }
        } else {
            self.benign += 1;
        }
    }

    /// Total sites surveyed.
    pub fn total(&self) -> u64 {
        self.phishing + self.benign
    }

    /// Fraction of phishing pages landing on the `k` most-hit brands —
    /// the Figure 5 head-concentration number.
    pub fn brand_head_share(&self, k: usize) -> f64 {
        if self.phishing == 0 {
            return 0.0;
        }
        let mut counts = self.per_brand.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = counts.iter().take(k).sum();
        head as f64 / self.phishing as f64
    }
}

impl Default for ScaleStats {
    fn default() -> Self {
        ScaleStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_at_is_pure_in_seed_and_index() {
        let a = ScaleSampler::new(7);
        let b = ScaleSampler::new(7);
        for i in [0u64, 1, 17, 9_999_999] {
            assert_eq!(a.site_at(i), b.site_at(i));
        }
        let c = ScaleSampler::new(8);
        assert_ne!(a.site_at(3).url, c.site_at(3).url);
    }

    #[test]
    fn urls_round_trip_through_fwb_classification() {
        let s = ScaleSampler::new(42);
        for i in 0..500 {
            let site = s.site_at(i);
            assert_eq!(
                FwbKind::classify_url(&site.url),
                Some(site.fwb),
                "url {} should classify back to its FWB",
                site.url
            );
        }
    }

    #[test]
    fn fwb_distribution_tracks_paper_url_counts() {
        let s = ScaleSampler::new(3);
        let mut stats = ScaleStats::new();
        let n = 60_000u64;
        for i in 0..n {
            stats.record(&s.site_at(i));
        }
        let total_weight: u64 = ALL_FWBS.iter().map(|d| d.paper_url_count).sum();
        for (i, d) in ALL_FWBS.iter().enumerate() {
            let expected = d.paper_url_count as f64 / total_weight as f64;
            let observed = stats.per_fwb[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "{}: observed {observed:.4}, expected {expected:.4}",
                d.display_name
            );
        }
    }

    #[test]
    fn brand_targeting_is_head_heavy() {
        let s = ScaleSampler::with_shape(11, DEFAULT_BRAND_ZIPF_S, 1.0);
        let mut stats = ScaleStats::new();
        for i in 0..40_000 {
            stats.record(&s.site_at(i));
        }
        assert_eq!(stats.benign, 0);
        let head10 = stats.brand_head_share(10);
        let uniform10 = 10.0 / BRANDS.len() as f64;
        assert!(
            head10 > 2.0 * uniform10,
            "top-10 brands should dominate: head share {head10:.3} vs uniform {uniform10:.3}"
        );
    }

    #[test]
    fn phish_fraction_is_respected() {
        let s = ScaleSampler::with_shape(5, DEFAULT_BRAND_ZIPF_S, 0.2);
        let mut stats = ScaleStats::new();
        for i in 0..50_000 {
            stats.record(&s.site_at(i));
        }
        let frac = stats.phishing as f64 / stats.total() as f64;
        assert!(
            (frac - 0.2).abs() < 0.01,
            "phish fraction {frac:.4} should be near 0.2"
        );
        for b in BRANDS {
            assert!(b.token.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn scores_separate_phishing_from_benign() {
        let s = ScaleSampler::new(9);
        for i in 0..2_000 {
            let site = s.site_at(i);
            if site.phishing {
                assert!((0.5..1.0).contains(&site.score), "score {}", site.score);
                assert!(site.brand.is_some());
            } else {
                assert!((0.0..0.5).contains(&site.score), "score {}", site.score);
                assert!(site.brand.is_none());
            }
        }
    }

    #[test]
    fn urls_are_unique_per_index() {
        let s = ScaleSampler::new(21);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            assert!(seen.insert(s.site_at(i).url), "index {i} repeated a URL");
        }
        assert_eq!(base36(0), "0");
        assert_eq!(base36(35), "z");
        assert_eq!(base36(36), "10");
    }

    #[test]
    fn alias_table_handles_degenerate_weights() {
        let t = AliasTable::new(&[5]);
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        let t2 = AliasTable::new(&[0, 0, 7]);
        for _ in 0..100 {
            assert_eq!(t2.sample(&mut rng), 2);
        }
    }
}
