//! The matched self-hosted phishing population.
//!
//! Every Section 5 measurement compares FWB attacks against an equal-sized
//! sample of conventional, self-hosted phishing sites: attacker-registered
//! domains on cheap TLDs, fresh WHOIS records, fresh DV certificates in the
//! CT log, and hosting providers that take sites down faster and more often
//! (Table 3: 77.5% removal at a 3:47 median vs 29.38% / 9:43 for FWBs).

use crate::ctlog::CtLog;
use crate::ssl::SslCertificate;
use crate::whois::WhoisDb;
use freephish_simclock::{Rng64, SimDuration, SimTime};
use freephish_webgen::brands::BRANDS;

/// Cheap TLDs self-hosted phishing favours (Section 6 "Phishing Attack
/// Costs").
pub const CHEAP_TLDS: &[&str] = &[
    "xyz", "top", "live", "icu", "click", "buzz", "shop", "store", "rest", "cam",
];

/// One self-hosted phishing site.
#[derive(Debug, Clone)]
pub struct SelfHostedSite {
    /// The attacker-registered domain.
    pub domain: String,
    /// Full URL.
    pub url: String,
    /// The spoofed brand (index into [`BRANDS`]).
    pub brand: usize,
    /// Creation/registration time.
    pub created_at: SimTime,
    /// When the hosting provider removes it, if ever.
    pub removed_at: Option<SimTime>,
}

impl SelfHostedSite {
    /// True while serving at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.removed_at.map(|at| now < at).unwrap_or(true)
    }
}

/// Takedown behaviour of conventional hosting (Table 3's "Hosting domain"
/// row, self-hosted column).
#[derive(Debug, Clone)]
pub struct SelfHostedTakedown {
    /// Probability the hoster removes a reported site.
    pub removal_prob: f64,
    /// Median removal delay in minutes.
    pub median_response_mins: f64,
    /// Log-space spread.
    pub sigma: f64,
}

impl Default for SelfHostedTakedown {
    fn default() -> Self {
        SelfHostedTakedown {
            removal_prob: 0.775,
            median_response_mins: 227.0, // 3:47
            sigma: 0.9,
        }
    }
}

/// Generator + registry for the self-hosted population. Registers each new
/// domain in WHOIS and logs its DV certificate in CT — the discovery trail
/// FWB attacks do not leave.
#[derive(Debug)]
pub struct SelfHostedPopulation {
    sites: Vec<SelfHostedSite>,
    takedown: SelfHostedTakedown,
    rng: Rng64,
}

impl SelfHostedPopulation {
    /// An empty population with default (paper-calibrated) takedown.
    pub fn new(seed: u64) -> SelfHostedPopulation {
        SelfHostedPopulation {
            sites: Vec::new(),
            takedown: SelfHostedTakedown::default(),
            rng: Rng64::new(seed ^ 0x5e1f_0057),
        }
    }

    /// Spawn a new self-hosted phishing site at `now`, registering its
    /// infrastructure in `whois` and `ct`.
    pub fn spawn(
        &mut self,
        brand: usize,
        now: SimTime,
        whois: &mut WhoisDb,
        ct: &mut CtLog,
    ) -> usize {
        let b = &BRANDS[brand % BRANDS.len()];
        let tld = *self.rng.choose(CHEAP_TLDS);
        let styles: &[&str] = &["secure", "verify", "login", "account", "update"];
        let style = *self.rng.choose(styles);
        let nonce = self.rng.range_u64(10, 99);
        let domain = format!("{}-{style}{nonce}.{tld}", b.token);
        let url = format!("https://{domain}/{style}");

        whois.register_fresh(&domain, now.as_secs() / 86_400);
        let cert = SslCertificate::dv_for_domain(&domain, now.as_secs() / 86_400);
        ct.log_issuance(&cert, now);

        // Takedown fate decided at spawn; the hosting provider acts once
        // blocklists/reporters notice — modelled by the calibrated delay.
        let removed_at = self.rng.chance(self.takedown.removal_prob).then(|| {
            let mins = self
                .rng
                .lognormal_median(self.takedown.median_response_mins, self.takedown.sigma);
            now + SimDuration::from_secs((mins * 60.0) as u64)
        });

        self.sites.push(SelfHostedSite {
            domain,
            url,
            brand: brand % BRANDS.len(),
            created_at: now,
            removed_at,
        });
        self.sites.len() - 1
    }

    /// All sites.
    pub fn sites(&self) -> &[SelfHostedSite] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_simclock::stats::median_u64;

    #[test]
    fn spawn_registers_infrastructure() {
        let mut pop = SelfHostedPopulation::new(1);
        let mut whois = WhoisDb::default();
        let mut ct = CtLog::new();
        let i = pop.spawn(4, SimTime::from_days(3), &mut whois, &mut ct);
        let site = &pop.sites()[i];
        assert!(site.domain.contains("paypal"));
        // WHOIS: fresh domain, age 0 on its creation day.
        assert_eq!(whois.age_days(&site.domain, 3), Some(0));
        // CT: visible.
        assert!(ct.covers_host(&site.domain));
    }

    #[test]
    fn cheap_tlds_used() {
        let mut pop = SelfHostedPopulation::new(2);
        let mut whois = WhoisDb::default();
        let mut ct = CtLog::new();
        for b in 0..50 {
            pop.spawn(b, SimTime::ZERO, &mut whois, &mut ct);
        }
        for s in pop.sites() {
            let tld = s.domain.rsplit('.').next().unwrap();
            assert!(CHEAP_TLDS.contains(&tld), "tld={tld}");
        }
    }

    #[test]
    fn takedown_rate_and_median_near_calibration() {
        let mut pop = SelfHostedPopulation::new(3);
        let mut whois = WhoisDb::default();
        let mut ct = CtLog::new();
        for b in 0..4000 {
            pop.spawn(b, SimTime::ZERO, &mut whois, &mut ct);
        }
        let removed: Vec<&SelfHostedSite> = pop
            .sites()
            .iter()
            .filter(|s| s.removed_at.is_some())
            .collect();
        let rate = removed.len() as f64 / pop.len() as f64;
        assert!((0.74..0.81).contains(&rate), "rate={rate}");
        let delays: Vec<u64> = removed
            .iter()
            .map(|s| (s.removed_at.unwrap() - s.created_at).as_secs() / 60)
            .collect();
        let med = median_u64(&delays).unwrap() as f64;
        assert!((170.0..290.0).contains(&med), "median={med} mins");
    }

    #[test]
    fn active_until_removal() {
        let mut pop = SelfHostedPopulation::new(4);
        let mut whois = WhoisDb::default();
        let mut ct = CtLog::new();
        pop.spawn(0, SimTime::from_hours(1), &mut whois, &mut ct);
        let s = &pop.sites()[0];
        assert!(s.is_active(SimTime::from_hours(1)));
        if let Some(at) = s.removed_at {
            assert!(!s.is_active(at));
        }
    }

    #[test]
    fn whois_age_diverges_from_fwb() {
        // The Section 3 contrast: self-hosted median age ≈ 71 days at
        // detection vs 13.7 years for FWB URLs.
        let mut whois = WhoisDb::with_fwbs();
        let mut ct = CtLog::new();
        let mut pop = SelfHostedPopulation::new(5);
        pop.spawn(0, SimTime::ZERO, &mut whois, &mut ct);
        let fresh = whois.age_days(&pop.sites()[0].domain, 71).unwrap();
        let fwb = whois.age_days("x.weebly.com", 71).unwrap();
        assert_eq!(fresh, 71);
        assert!(fwb > 5000);
    }
}
