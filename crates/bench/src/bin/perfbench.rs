//! perfbench: the serial-vs-parallel and Wagner–Fischer-vs-Myers
//! performance record behind `BENCH_PIPELINE.json`.
//!
//! Three timed sections, each against an honest baseline:
//!
//! * **site-similarity sweep** — a Table-1-shaped batch of phishing/benign
//!   pairs swept three ways: the seed's Wagner–Fischer kernel (reconstructed
//!   locally from the retained `wagner_fischer` reference, per-call Vec
//!   allocations and all), the Myers bit-parallel kernel serially, and the
//!   Myers kernel fanned across the `freephish-par` pool.
//! * **classification hot path** — end-to-end snapshot scoring on the
//!   wire-speed path (span tokens → `PageFacts` → flat forests) vs the
//!   retained legacy path (owned tokens → DOM queries → boxed trees), plus
//!   each stage in isolation: `urls_classified_per_sec`,
//!   `html_tokenize_mb_per_sec`, `forest_predict_rows_per_sec`,
//!   `url_features_per_sec`, each next to its legacy figure.
//! * **pipeline tick** — one full `run_tick` over a 1,000-post feed at
//!   `FREEPHISH_THREADS=1` and at the host default, plus a bare
//!   poll+crawl+score loop (the seed's uninstrumented tick shape).
//! * **train phase** — `AugmentedStackModel::train` at one thread and at
//!   the host default.
//! * **store** — the persistence layer: buffered and fsynced append
//!   throughput over a journal-shaped record mix, plus cold recovery of
//!   the resulting WAL (clean and with a torn tail).
//!
//! Output schema is stable (see `schema_version`); the file lands at the
//! path in `FREEPHISH_BENCH_OUT` (default `BENCH_PIPELINE.json`).

use freephish_core::groundtruth::{self, build, GroundTruthConfig};
use freephish_core::models::augmented::AugmentedStackModel;
use freephish_core::models::{NoFetch, PhishDetector};
use freephish_core::pipeline::reporting::Reporter;
use freephish_core::pipeline::streaming::StreamingModule;
use freephish_core::pipeline::Pipeline;
use freephish_core::world::World;
use freephish_htmlparse::parse;
use freephish_ml::StackModelConfig;
use freephish_simclock::{Rng64, SimTime, Zipf};
use freephish_textsim::{
    site_similarity, site_similarity_pairs, wagner_fischer, wagner_fischer_bounded,
};
use freephish_webgen::{FwbKind, BRANDS};
use std::time::Instant;

/// The seed's per-tag inner loop, byte for byte, on the seed's
/// Wagner–Fischer kernel — the honest "before" for the speedup claim.
fn seed_best_tag_similarity(t: &str, others: &[String]) -> f64 {
    let mut best_d = usize::MAX;
    let mut best_len = t.len().max(1);
    for o in others {
        let bound = best_d.saturating_sub(1).min(t.len().max(o.len()));
        let d = if best_d == usize::MAX {
            Some(wagner_fischer(t, o))
        } else {
            wagner_fischer_bounded(t, o, bound)
        };
        if let Some(d) = d {
            if d < best_d {
                best_d = d;
                best_len = t.len().max(o.len()).max(1);
                if best_d == 0 {
                    break;
                }
            }
        }
    }
    if best_d == usize::MAX {
        return 0.0;
    }
    100.0 * (1.0 - best_d as f64 / best_len as f64)
}

fn seed_one_way(a_tags: &[String], b_tags: &[String]) -> f64 {
    if a_tags.is_empty() {
        return 0.0;
    }
    let mut sims: Vec<f64> = a_tags
        .iter()
        .map(|t| seed_best_tag_similarity(t, b_tags))
        .collect();
    sims.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sims[(sims.len() - 1) / 2]
}

fn seed_site_similarity(a_tags: &[String], b_tags: &[String]) -> f64 {
    (seed_one_way(a_tags, b_tags) + seed_one_way(b_tags, a_tags)) / 2.0
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A Table-1-shaped batch of (phishing tags, benign tags) pairs across the
/// six Table 1 services, drawn in fixed seed order.
fn similarity_pairs(per_kind: usize) -> Vec<(Vec<String>, Vec<String>)> {
    let kinds = [
        FwbKind::Weebly,
        FwbKind::Webhost000,
        FwbKind::Blogspot,
        FwbKind::GoogleSites,
        FwbKind::Wix,
        FwbKind::GithubIo,
    ];
    let mut rng = Rng64::new(0xbe9c4);
    let zipf = Zipf::new(BRANDS.len(), 1.05);
    let mut pairs = Vec::with_capacity(kinds.len() * per_kind);
    for kind in kinds {
        for i in 0..per_kind {
            let mut phish = groundtruth::phishing_spec(&mut rng, &zipf, i as u64);
            phish.fwb = kind;
            let mut benign = groundtruth::benign_spec(&mut rng, 0x8000 + i as u64);
            benign.fwb = kind;
            pairs.push((
                parse(&phish.generate().html).tag_elements(),
                parse(&benign.generate().html).tag_elements(),
            ));
        }
    }
    pairs
}

fn bench_similarity(reps: usize) -> serde_json::Value {
    let pairs = similarity_pairs(8);
    let wf_secs = time_best(reps, || {
        pairs
            .iter()
            .map(|(a, b)| seed_site_similarity(a, b))
            .sum::<f64>()
    });
    let myers_serial_secs = freephish_par::with_thread_override(1, || {
        time_best(reps, || {
            pairs
                .iter()
                .map(|(a, b)| site_similarity(a, b))
                .sum::<f64>()
        })
    });
    let myers_par_secs = time_best(reps, || site_similarity_pairs(&pairs));
    let speedup = wf_secs / myers_par_secs;
    println!("site-similarity sweep ({} pairs):", pairs.len());
    println!("  seed WF serial   {wf_secs:.4}s");
    println!("  Myers serial     {myers_serial_secs:.4}s");
    println!("  Myers + par      {myers_par_secs:.4}s   ({speedup:.1}x vs seed)");
    serde_json::json!({
        "pairs": pairs.len(),
        "seed_wf_serial_secs": wf_secs,
        "myers_serial_secs": myers_serial_secs,
        "myers_par_secs": myers_par_secs,
        "speedup_vs_seed": speedup,
    })
}

fn bench_pipeline_tick(reps: usize) -> serde_json::Value {
    use freephish_socialsim::ModerationProfile;
    let mut world = World::new(9);
    let quiet = ModerationProfile {
        delete_prob: 0.0,
        median_mins: 1.0,
        sigma: 0.1,
    };
    for i in 0..1000u64 {
        world.twitter.publish(
            &format!("https://site{i}.weebly.com/"),
            None,
            SimTime::from_secs(i),
            &quiet,
        );
    }
    let corpus = build(&GroundTruthConfig::tiny());
    let mut rng = Rng64::new(77);
    let model = AugmentedStackModel::train(&corpus, &StackModelConfig::tiny(), &mut rng);

    // The seed's tick shape: poll + crawl + classify inline, no metrics,
    // no parallel layer. Timed before the model moves into the pipeline.
    let reference_secs = time_best(reps, || {
        let mut s = StreamingModule::new();
        let observed = s.poll(&world, SimTime::from_mins(60));
        let mut flagged = 0usize;
        for obs in &observed {
            if let Some(html) = world.crawl(&obs.url, SimTime::from_mins(60)) {
                if model.score(&obs.url, html, &NoFetch) >= 0.5 {
                    flagged += 1;
                }
            }
        }
        flagged
    });

    let pipeline = Pipeline::new(model);
    let mut tick = || {
        let mut s = StreamingModule::new();
        let mut reporter = Reporter::new();
        let mut detections = Vec::new();
        pipeline.run_tick(
            &mut world,
            &mut s,
            &mut reporter,
            &mut detections,
            SimTime::from_mins(60),
        );
        detections.len()
    };
    let serial_secs = freephish_par::with_thread_override(1, || time_best(reps, &mut tick));
    let default_secs = time_best(reps, &mut tick);
    println!("pipeline tick (1k posts):");
    println!("  threads=1        {serial_secs:.4}s");
    println!("  threads=default  {default_secs:.4}s");
    println!("  seed-shape ref   {reference_secs:.4}s");
    serde_json::json!({
        "posts": 1000,
        "threads1_secs": serial_secs,
        "default_secs": default_secs,
        "seed_shape_reference_secs": reference_secs,
        "ratio_default_vs_threads1": default_secs / serial_secs,
    })
}

/// The wire-speed classification hot path against its pre-rewrite self:
/// end-to-end snapshot scoring (parse → features → inference), plus each
/// stage in isolation — span vs owned tokenisation, flat-batch vs boxed
/// forest walks, SWAR/Myers vs scalar URL lexical features.
fn bench_hot_path(reps: usize) -> serde_json::Value {
    use freephish_core::features::{url_features, url_features_legacy, FeatureSet, FeatureVector};
    use freephish_urlparse::Url;

    let corpus = build(&GroundTruthConfig {
        n_phish: 150,
        n_benign: 150,
        seed: 31,
    });
    let mut rng = Rng64::new(32);
    let model = AugmentedStackModel::train(&corpus, &StackModelConfig::tiny(), &mut rng);
    let snapshots: Vec<(Url, &str)> = corpus
        .iter()
        .map(|ls| (Url::parse(&ls.site.url).unwrap(), ls.site.html.as_str()))
        .collect();
    let html_bytes: usize = snapshots.iter().map(|(_, h)| h.len()).sum();
    const MIB: f64 = 1024.0 * 1024.0;

    // End-to-end: classify every snapshot, fast path vs the retained
    // legacy path, in the same process on the same corpus.
    let fast_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(u, h)| model.score_snapshot(u, h))
            .sum::<f64>()
    });
    let legacy_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(u, h)| model.score_snapshot_legacy(u, h))
            .sum::<f64>()
    });
    let urls_per_sec = snapshots.len() as f64 / fast_secs;
    let legacy_urls_per_sec = snapshots.len() as f64 / legacy_secs;

    // Stage: HTML tokenisation, borrowed spans vs owned tokens.
    let span_tok_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(_, h)| freephish_htmlparse::tokenize_spans(h).count())
            .sum::<usize>()
    });
    let owned_tok_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(_, h)| freephish_htmlparse::legacy::tokenize(h).len())
            .sum::<usize>()
    });
    let tokenize_mb_per_sec = html_bytes as f64 / span_tok_secs / MIB;

    // Stage: forest inference, flat blocked batch vs boxed per-row walks,
    // over the corpus rows replicated to a steady-state batch.
    let rows: Vec<Vec<f64>> = snapshots
        .iter()
        .map(|(u, h)| FeatureVector::extract_fast(FeatureSet::Augmented, u, h).values)
        .collect();
    let batch_refs: Vec<&[f64]> = (0..20_000)
        .map(|i| rows[i % rows.len()].as_slice())
        .collect();
    let flat_batch_secs = time_best(reps, || model.score_features_batch(&batch_refs));
    let boxed_secs = time_best(reps, || {
        batch_refs
            .iter()
            .map(|r| model.score_features_boxed(r))
            .sum::<f64>()
    });
    let rows_per_sec = batch_refs.len() as f64 / flat_batch_secs;
    let boxed_rows_per_sec = batch_refs.len() as f64 / boxed_secs;

    // Stage: the eight URL-lexical features, SWAR + shared-tokenisation
    // Myers vs the scalar legacy scans.
    let url_fast_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(u, _)| url_features(u).iter().sum::<f64>())
            .sum::<f64>()
    });
    let url_legacy_secs = time_best(reps, || {
        snapshots
            .iter()
            .map(|(u, _)| url_features_legacy(u).iter().sum::<f64>())
            .sum::<f64>()
    });
    let url_feat_per_sec = snapshots.len() as f64 / url_fast_secs;

    let speedup = urls_per_sec / legacy_urls_per_sec;
    println!(
        "classification hot path ({} snapshots, {:.1} MiB html):",
        snapshots.len(),
        html_bytes as f64 / MIB
    );
    println!("  classify fast    {fast_secs:.4}s   ({urls_per_sec:.0} urls/s)");
    println!("  classify legacy  {legacy_secs:.4}s   ({legacy_urls_per_sec:.0} urls/s, fast is {speedup:.1}x)");
    println!("  tokenize spans   {span_tok_secs:.4}s   ({tokenize_mb_per_sec:.1} MiB/s)");
    println!(
        "  tokenize owned   {owned_tok_secs:.4}s   ({:.1} MiB/s)",
        html_bytes as f64 / owned_tok_secs / MIB
    );
    println!(
        "  forest flat      {flat_batch_secs:.4}s   ({rows_per_sec:.0} rows/s over {} rows)",
        batch_refs.len()
    );
    println!("  forest boxed     {boxed_secs:.4}s   ({boxed_rows_per_sec:.0} rows/s)");
    println!("  url feats fast   {url_fast_secs:.4}s   ({url_feat_per_sec:.0} urls/s)");
    println!(
        "  url feats legacy {url_legacy_secs:.4}s   ({:.0} urls/s)",
        snapshots.len() as f64 / url_legacy_secs
    );
    serde_json::json!({
        "snapshots": snapshots.len(),
        "html_bytes": html_bytes,
        "urls_classified_per_sec": urls_per_sec,
        "legacy_urls_classified_per_sec": legacy_urls_per_sec,
        "classify_speedup_vs_legacy": speedup,
        "html_tokenize_mb_per_sec": tokenize_mb_per_sec,
        "legacy_html_tokenize_mb_per_sec": html_bytes as f64 / owned_tok_secs / MIB,
        "forest_predict_rows_per_sec": rows_per_sec,
        "boxed_predict_rows_per_sec": boxed_rows_per_sec,
        "url_features_per_sec": url_feat_per_sec,
        "legacy_url_features_per_sec": snapshots.len() as f64 / url_legacy_secs,
    })
}

fn bench_train(reps: usize) -> serde_json::Value {
    let corpus = build(&GroundTruthConfig::tiny());
    let train = || {
        let mut rng = Rng64::new(5);
        AugmentedStackModel::train(&corpus, &StackModelConfig::tiny(), &mut rng)
    };
    let serial_secs = freephish_par::with_thread_override(1, || time_best(reps, train));
    let default_secs = time_best(reps, train);
    println!("train phase (tiny corpus + tiny stack):");
    println!("  threads=1        {serial_secs:.4}s");
    println!("  threads=default  {default_secs:.4}s");
    serde_json::json!({
        "rows": corpus.len(),
        "threads1_secs": serial_secs,
        "default_secs": default_secs,
    })
}

/// A run-journal-shaped record payload: URL + a few numeric fields.
fn store_record(i: u64) -> Vec<u8> {
    let mut w = freephish_store::PayloadWriter::new();
    w.put_u8(1);
    w.put_str(&format!("https://victim-{i:06}.weebly.com/login"));
    w.put_u64(i * 600);
    w.put_f64(0.5 + (i % 50) as f64 / 100.0);
    w.into_bytes()
}

fn bench_store(reps: usize) -> serde_json::Value {
    use freephish_store::{Store, StoreOptions};
    let records: Vec<Vec<u8>> = (0..50_000u64).map(store_record).collect();
    let payload_bytes: usize = records.iter().map(Vec::len).sum();
    let base = std::env::temp_dir().join(format!("freephish-perfbench-{}", std::process::id()));

    let buffered_secs = time_best(reps, || {
        let dir = base.join("append-buffered");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _) = Store::open_with(&dir, StoreOptions::default(), None).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        store.sync().unwrap();
    });
    // Per-append fsync is the worst-case durability point; keep the volume
    // small enough to finish quickly.
    let synced_records = 500usize;
    let synced_secs = time_best(reps, || {
        let dir = base.join("append-synced");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            sync_every_append: true,
            ..StoreOptions::default()
        };
        let (mut store, _) = Store::open_with(&dir, opts, None).unwrap();
        for r in records.iter().take(synced_records) {
            store.append(r).unwrap();
        }
    });

    // Recovery: reopen the buffered-append WAL cold, then again with a
    // torn tail (a half-written frame appended to the newest segment).
    let clean_dir = base.join("append-buffered");
    let recovery_clean_secs = time_best(reps, || {
        let (_store, recovered) =
            Store::open_with(&clean_dir, StoreOptions::default(), None).unwrap();
        assert_eq!(recovered.records.len(), records.len());
    });
    let torn_dir = base.join("recovery-torn");
    let _ = std::fs::remove_dir_all(&torn_dir);
    copy_dir(&clean_dir, &torn_dir);
    let newest = std::fs::read_dir(&torn_dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            freephish_store::segment::parse_segment_name(&name).map(|i| (i, name))
        })
        .max()
        .map(|(_, name)| torn_dir.join(name))
        .unwrap();
    let mut torn_template = std::fs::read(&newest).unwrap();
    torn_template.extend_from_slice(&[0x55, 0x55, 0x55]);
    let recovery_torn_secs = time_best(reps, || {
        std::fs::write(&newest, &torn_template).unwrap();
        let (_store, recovered) =
            Store::open_with(&torn_dir, StoreOptions::default(), None).unwrap();
        assert!(recovered.records.len() <= records.len());
    });
    let _ = std::fs::remove_dir_all(&base);

    let append_per_sec = records.len() as f64 / buffered_secs;
    let mb_per_sec = payload_bytes as f64 / buffered_secs / (1024.0 * 1024.0);
    println!(
        "store ({} records, {:.1} MiB):",
        records.len(),
        payload_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("  append buffered  {buffered_secs:.4}s   ({append_per_sec:.0} rec/s, {mb_per_sec:.1} MiB/s)");
    println!(
        "  append fsync/rec {synced_secs:.4}s   ({:.0} rec/s over {synced_records} records)",
        synced_records as f64 / synced_secs
    );
    println!("  recovery clean   {recovery_clean_secs:.4}s");
    println!("  recovery torn    {recovery_torn_secs:.4}s");
    serde_json::json!({
        "store_append_throughput": {
            "records": records.len(),
            "payload_bytes": payload_bytes,
            "buffered_secs": buffered_secs,
            "buffered_records_per_sec": append_per_sec,
            "buffered_mib_per_sec": mb_per_sec,
            "synced_records": synced_records,
            "synced_secs": synced_secs,
            "synced_records_per_sec": synced_records as f64 / synced_secs,
        },
        "store_recovery": {
            "records": records.len(),
            "clean_secs": recovery_clean_secs,
            "torn_tail_secs": recovery_torn_secs,
        },
    })
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn main() {
    let reps: usize = std::env::var("FREEPHISH_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out = std::env::var("FREEPHISH_BENCH_OUT").unwrap_or_else(|_| "BENCH_PIPELINE.json".into());

    println!(
        "perfbench: {} hardware threads, {} configured, best of {reps} reps\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        freephish_par::configured_threads(),
    );
    let similarity = bench_similarity(reps);
    let hot_path = bench_hot_path(reps);
    let tick = bench_pipeline_tick(reps);
    let train = bench_train(reps);
    let store = bench_store(reps);

    let record = serde_json::json!({
        "schema_version": 1,
        "experiment": "perfbench",
        "threads": {
            "available": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "configured": freephish_par::configured_threads(),
        },
        "site_similarity_sweep": similarity,
        "classify_hot_path": hot_path,
        "pipeline_tick": tick,
        "train_phase": train,
        "store_append_throughput": store["store_append_throughput"],
        "store_recovery": store["store_recovery"],
        "par_metrics": freephish_obs::to_json(&freephish_par::metrics_snapshot()),
    });
    std::fs::write(&out, serde_json::to_string_pretty(&record).unwrap())
        .unwrap_or_else(|e| panic!("could not write {out}: {e}"));
    println!("\nwrote {out}");
}
