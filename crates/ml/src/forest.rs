//! Random forest for binary classification.
//!
//! The paper's Section 4 overview describes the classification module as "a
//! Random Forest classifier" before Section 4.2 settles on the augmented
//! StackModel; this implementation covers that design point (and serves as
//! an extra ablation baseline). Standard recipe: bootstrap-sampled
//! histogram trees grown on class probabilities (gradients of a constant
//! 0.5 prediction reduce to `p − y`, so the boosting tree engine doubles as
//! a CART fitter), per-tree feature subsampling via per-node column masks
//! is approximated with per-tree column bagging, and prediction averages
//! tree votes.

use crate::dataset::Dataset;
use crate::flat::{FlatForest, FlatForestBuilder};
use crate::tree::{BinnedMatrix, RegTree, TreeConfig};
use freephish_simclock::Rng64;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Histogram resolution.
    pub max_bins: usize,
    /// Fraction of rows bootstrap-sampled per tree.
    pub sample_frac: f64,
    /// Fraction of feature columns each tree may use.
    pub colsample: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 60,
            tree: TreeConfig {
                max_depth: 8,
                max_leaves: 0,
                min_leaf: 2,
                lambda: 1e-6,
                gamma: 0.0,
                leaf_wise: false,
            },
            max_bins: 128,
            sample_frac: 0.8,
            colsample: 0.7,
        }
    }
}

impl ForestConfig {
    /// A small/fast configuration for tests.
    pub fn tiny() -> Self {
        ForestConfig {
            n_trees: 15,
            ..ForestConfig::default()
        }
    }
}

/// One fitted tree plus its column mask.
struct ForestTree {
    tree: RegTree,
    /// Map from the tree's (masked) feature index to the dataset's.
    columns: Vec<usize>,
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<ForestTree>,
    /// Inference layout compiled from `trees`: the clamped vote transform
    /// is folded into every leaf and column bags are remapped to dataset
    /// columns, so prediction reads full rows with no per-tree projection.
    flat: FlatForest,
}

impl RandomForest {
    /// Train on a dataset. Deterministic given the RNG state: all random
    /// draws (column bags, bootstrap samples) happen serially up front in
    /// the seed order, then the draw-free tree fits fan out across the
    /// `freephish-par` pool — so the forest is bit-identical at any
    /// thread count.
    pub fn train(config: &ForestConfig, data: &Dataset, rng: &mut Rng64) -> RandomForest {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let n_features = data.n_features();
        let n_cols = ((n_features as f64 * config.colsample).round() as usize).clamp(1, n_features);
        let k = ((n as f64 * config.sample_frac).round() as usize).clamp(1, n);

        // Leaf value −G/(H+λ) with g = 0.5 − y·1, h = 0.25 (logistic at the
        // 0.5 prior) makes each leaf ≈ 2·(mean(y) − 0.5): a vote in
        // [−1, +1] we can map back to a probability.
        let grad: Vec<f64> = (0..n).map(|i| 0.5 - data.label(i) as f64).collect();
        let hess = vec![0.25f64; n];

        // Serial RNG phase: per-tree column bag + bootstrap sample (with
        // replacement), drawn in exactly the seed order.
        let draws: Vec<(Vec<usize>, Vec<usize>)> = (0..config.n_trees)
            .map(|_| {
                let columns = rng.sample_indices(n_features, n_cols);
                let sample: Vec<usize> = (0..k).map(|_| rng.index(n)).collect();
                (columns, sample)
            })
            .collect();

        // Parallel phase: project, bin, and fit each tree (pure).
        let trees = freephish_par::par_map(&draws, |(columns, sample)| {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| columns.iter().map(|&c| data.row(i)[c]).collect())
                .collect();
            let binned = BinnedMatrix::build(&rows, config.max_bins);
            let tree = RegTree::fit(&binned, &grad, &hess, sample, &config.tree);
            ForestTree {
                tree,
                columns: columns.clone(),
            }
        });
        let mut b = FlatForestBuilder::new(0.0);
        for ft in &trees {
            // Fold the clamped vote transform into each leaf; remap the
            // column bag so full rows are read directly.
            b.push_tree(&ft.tree, Some(&ft.columns), |v| {
                (0.5 + 0.5 * v).clamp(0.0, 1.0)
            });
        }
        let flat = b.build();
        RandomForest { trees, flat }
    }

    /// Probability of the positive class: average of per-tree votes mapped
    /// back to [0, 1].
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.flat.predict_row(row) / self.trees.len() as f64
    }

    /// Probability through the boxed per-tree walk (projection + enum
    /// stepping) — the pre-flattening reference path, kept for equivalence
    /// tests and benchmarks.
    pub fn predict_proba_boxed(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let mut total = 0.0;
        let mut projected = Vec::new();
        for ft in &self.trees {
            projected.clear();
            projected.extend(ft.columns.iter().map(|&c| row[c]));
            // Leaf values live in roughly [−2, 2]; clamp the vote.
            total += (0.5 + 0.5 * ft.tree.predict_row(&projected)).clamp(0.0, 1.0);
        }
        total / self.trees.len() as f64
    }

    /// Probabilities for many rows via the batched flat traversal.
    pub fn predict_proba_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.5; rows.len()];
        }
        let n = self.trees.len() as f64;
        let mut out = self.flat.predict_batch(rows);
        for s in &mut out {
            *s /= n;
        }
        out
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Probabilities over a dataset, rows fanned out across the pool
    /// (scores are pure, so output order and values match the serial map).
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        freephish_par::par_map_range(data.len(), |i| self.predict_proba(data.row(i)))
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// How often each dataset feature is used by a split, across the
    /// forest — a split-count importance.
    pub fn feature_usage(&self, n_features: usize) -> Vec<usize> {
        let mut usage = vec![0usize; n_features];
        for ft in &self.trees {
            for local in ft.tree.used_features() {
                usage[ft.columns[local]] += 1;
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryMetrics;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into(), "noise".into()]);
        for _ in 0..n {
            let label = rng.chance(0.5);
            let c = if label { 1.5 } else { -1.5 };
            d.push(
                vec![
                    rng.normal_ms(c, 1.0),
                    rng.normal_ms(c, 1.0),
                    rng.normal_ms(0.0, 1.0), // uninformative
                ],
                u8::from(label),
            );
        }
        d
    }

    #[test]
    fn separable_data_high_accuracy() {
        let data = blobs(600, 1);
        let mut rng = Rng64::new(2);
        let (train, test) = data.split(0.7, &mut rng);
        let forest = RandomForest::train(&ForestConfig::tiny(), &train, &mut rng);
        let m = BinaryMetrics::from_scores(test.labels(), &forest.predict_all(&test));
        assert!(m.accuracy > 0.9, "accuracy={}", m.accuracy);
        assert_eq!(forest.n_trees(), 15);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let data = blobs(200, 3);
        let mut rng = Rng64::new(4);
        let forest = RandomForest::train(&ForestConfig::tiny(), &data, &mut rng);
        for i in 0..data.len() {
            let p = forest.predict_proba(data.row(i));
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn deterministic() {
        let data = blobs(200, 5);
        let mut r1 = Rng64::new(6);
        let mut r2 = Rng64::new(6);
        let f1 = RandomForest::train(&ForestConfig::tiny(), &data, &mut r1);
        let f2 = RandomForest::train(&ForestConfig::tiny(), &data, &mut r2);
        for i in 0..20 {
            assert_eq!(f1.predict_proba(data.row(i)), f2.predict_proba(data.row(i)));
        }
    }

    #[test]
    fn informative_features_used_more_than_noise() {
        // Shallow trees only get a couple of splits each, so split-count
        // usage concentrates on the informative columns.
        let data = blobs(600, 7);
        let mut rng = Rng64::new(8);
        let config = ForestConfig {
            n_trees: 40,
            tree: TreeConfig {
                max_depth: 2,
                min_leaf: 20,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let forest = RandomForest::train(&config, &data, &mut rng);
        let usage = forest.feature_usage(3);
        // x and y carry the signal; the noise column should be split on
        // far less often.
        assert!(usage[0] + usage[1] > usage[2] * 2, "usage={usage:?}");
    }

    #[test]
    fn more_trees_not_worse() {
        let data = blobs(500, 9);
        let mut rng = Rng64::new(10);
        let (train, test) = data.split(0.7, &mut rng);
        let mut r1 = Rng64::new(11);
        let small = RandomForest::train(
            &ForestConfig {
                n_trees: 3,
                ..ForestConfig::tiny()
            },
            &train,
            &mut r1,
        );
        let mut r2 = Rng64::new(11);
        let big = RandomForest::train(
            &ForestConfig {
                n_trees: 40,
                ..ForestConfig::tiny()
            },
            &train,
            &mut r2,
        );
        let ms = BinaryMetrics::from_scores(test.labels(), &small.predict_all(&test));
        let mb = BinaryMetrics::from_scores(test.labels(), &big.predict_all(&test));
        assert!(mb.accuracy >= ms.accuracy - 0.05);
    }
}
