//! Discovery-channel experiment: quantifies Section 3's "Increased
//! Difficulty of Discovery" — per-channel recall of CT-log watching,
//! search-index mining and social-stream watching over both populations.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::discovery::discovery_report;
use freephish_simclock::SimTime;

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1ec);
    let report = discovery_report(&m.world, &m.records, SimTime::from_days(180));

    println!("\nSection 3 — discovery-channel recall over the campaign\n");
    let mut t = TableWriter::new(&["Channel", "FWB recall", "Self-hosted recall"]);
    let mut json_rows = Vec::new();
    for r in &report {
        t.row(vec![
            r.channel.to_string(),
            format!("{:.1}%", r.fwb_recall * 100.0),
            format!("{:.1}%", r.self_hosted_recall * 100.0),
        ]);
        json_rows.push(serde_json::json!({
            "channel": r.channel,
            "fwb_recall": r.fwb_recall,
            "self_hosted_recall": r.self_hosted_recall,
        }));
    }
    t.print();
    println!("\nPaper shape: CT logs see 0% of FWB attacks (inherited certificates),");
    println!("the search index ~4% (noindex + no inbound links); only the social");
    println!("stream — the channel FreePhish builds on — sees the population.");

    write_json(
        "discovery",
        &serde_json::json!({ "experiment": "discovery", "scale": scale, "rows": json_rows }),
    );
}
