//! The classification module and the Table 2 baseline line-up.
//!
//! Five detectors, mirroring the paper's comparison:
//!
//! | paper model      | this module                  | information used            |
//! |------------------|------------------------------|-----------------------------|
//! | URLNet           | [`urlnet::UrlNetStyle`]      | URL string only             |
//! | VisualPhishNet   | [`visual::VisualStyle`]      | rendered-layout signature   |
//! | PhishIntention   | [`intention::IntentionStyle`]| layout + intention + dynamic|
//! | base StackModel  | [`stack::BaseStackModel`]    | 20 URL+HTML features        |
//! | **our model**    | [`augmented::AugmentedStackModel`] | 20 features incl. FWB |
//!
//! The original URLNet/VisualPhishNet/PhishIntention are GPU deep models;
//! the reproductions implement each *family's decision procedure* with
//! offline-friendly machinery (n-gram linear model, signature k-NN,
//! rule-plus-crawl hybrid). The Table 2 shape — PhishIntention most
//! accurate but slowest, URLNet fastest but weakest, stacking the best
//! trade-off, the augmented model on top — emerges from the real
//! algorithmic differences.

pub mod augmented;
pub mod intention;
pub mod rf;
pub mod stack;
pub mod urlnet;
pub mod visual;

/// Access to page content for models that perform dynamic analysis
/// (following links and iframes the way PhishIntention does).
pub trait PageFetcher {
    /// Fetch the HTML served at `url`, or `None` when unreachable.
    fn fetch(&self, url: &str) -> Option<String>;
}

/// A fetcher that resolves nothing — for static-only evaluation.
pub struct NoFetch;

impl PageFetcher for NoFetch {
    fn fetch(&self, _url: &str) -> Option<String> {
        None
    }
}

/// Common interface of all five detectors.
pub trait PhishDetector {
    /// Human-readable model name as printed in Table 2.
    fn name(&self) -> &'static str;

    /// Probability-like score in [0, 1] that the snapshot is phishing.
    fn score(&self, url: &str, html: &str, fetcher: &dyn PageFetcher) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, url: &str, html: &str, fetcher: &dyn PageFetcher) -> u8 {
        u8::from(self.score(url, html, fetcher) >= 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofetch_returns_none() {
        assert!(NoFetch.fetch("https://anything.example/").is_none());
    }
}
