//! Plain-text table rendering for the experiment binaries — the output is
//! meant to be read next to the paper's tables.

use freephish_simclock::SimDuration;

/// Format a fraction as a percentage with two decimals ("18.44%").
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

/// Format an optional duration as the paper's `hh:mm` (or "N/A").
pub fn fmt_duration_opt(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => d.as_hhmm(),
        None => "N/A".to_string(),
    }
}

/// A minimal fixed-width table writer.
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> TableWriter {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_duration_formatting() {
        assert_eq!(fmt_pct(0.1844), "18.44%");
        assert_eq!(fmt_pct(0.0), "0.00%");
        assert_eq!(fmt_duration_opt(Some(SimDuration::from_mins(361))), "6:01");
        assert_eq!(fmt_duration_opt(None), "N/A");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TableWriter::new(&["FWB", "Coverage"]);
        t.row(vec!["Weebly".into(), "60.13%".into()]);
        t.row(vec!["hpage".into(), "13.11%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("FWB"));
        assert!(lines[2].starts_with("Weebly"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
