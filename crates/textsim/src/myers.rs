//! Myers' bit-parallel Levenshtein kernel (64-bit blocks).
//!
//! Computes exact unit-cost edit distance by encoding a whole column of
//! the Wagner–Fischer matrix as vertical-delta bitvectors (`Pv` = +1 run,
//! `Mv` = −1 run) and advancing one *text character per word operation*
//! instead of one cell — ~64 matrix cells per ~17 bitwise ops (Myers 1999,
//! with Hyyrö's block recurrence for patterns longer than one word). The
//! Appendix-A sweep compares short HTML tags millions of times, which is
//! exactly the regime where this kernel replaces the byte-at-a-time inner
//! loop with a handful of register operations.
//!
//! All buffers live in a reusable [`MyersScratch`]: the `Eq` match-mask
//! table (256 entries per block), the `Pv`/`Mv` block vectors, and a
//! dirty-byte list so clearing costs O(previous pattern) rather than a
//! 2 KiB memset per call. One scratch per thread (see
//! `levenshtein::with_scratch`) makes the hot loop allocation-free.

const WORD: usize = 64;
const HIGH_BIT: u64 = 1 << (WORD - 1);

/// Reusable working memory for the kernel. Create once (per thread) and
/// pass to every `distance*` call; buffers grow to the largest pattern
/// seen and are never shrunk.
#[derive(Debug, Default)]
pub struct MyersScratch {
    /// Match masks, block-major: `peq[block * 256 + byte]` has bit `i` set
    /// when `pattern[block * 64 + i] == byte`.
    peq: Vec<u64>,
    /// Vertical positive-delta bitvector per block.
    pv: Vec<u64>,
    /// Vertical negative-delta bitvector per block.
    mv: Vec<u64>,
    /// Bytes whose `peq` rows are dirty from the previous pattern.
    touched: Vec<u8>,
    /// Block count of the previous pattern (how far `touched` rows reach).
    touched_blocks: usize,
}

impl MyersScratch {
    /// Fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> MyersScratch {
        MyersScratch::default()
    }

    /// Load `pattern` into the match-mask table, clearing only the rows
    /// the previous pattern dirtied. Returns the block count.
    fn prepare(&mut self, pattern: &[u8]) -> usize {
        let blocks = pattern.len().div_ceil(WORD);
        if self.peq.len() < blocks * 256 {
            self.peq.resize(blocks * 256, 0);
        }
        let mut touched = std::mem::take(&mut self.touched);
        for &c in &touched {
            for b in 0..self.touched_blocks {
                self.peq[b * 256 + c as usize] = 0;
            }
        }
        touched.clear();
        for (i, &c) in pattern.iter().enumerate() {
            self.peq[(i / WORD) * 256 + c as usize] |= 1u64 << (i % WORD);
            touched.push(c);
        }
        self.touched = touched;
        self.touched_blocks = blocks;

        self.pv.clear();
        self.pv.resize(blocks, !0u64);
        self.mv.clear();
        self.mv.resize(blocks, 0);
        blocks
    }
}

/// Advance one block of the column automaton by one text character.
/// `hin`/`hout` are the horizontal deltas entering bit 0 and leaving bit
/// 63; `score_mask` selects the row whose horizontal delta is also
/// reported (the pattern's last row, for score tracking in a partial
/// final block). Returns `(hout, delta_at_score_mask)`.
#[inline(always)]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32, score_mask: u64) -> (i32, i32) {
    let hin_neg = u64::from(hin < 0);
    let hin_pos = u64::from(hin > 0);
    let xv = eq | *mv;
    let eq = eq | hin_neg;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let mut ph = *mv | !(xh | *pv);
    let mut mh = *pv & xh;
    let hout = i32::from(ph & HIGH_BIT != 0) - i32::from(mh & HIGH_BIT != 0);
    let delta = i32::from(ph & score_mask != 0) - i32::from(mh & score_mask != 0);
    ph = (ph << 1) | hin_pos;
    mh = (mh << 1) | hin_neg;
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    (hout, delta)
}

/// Exact Levenshtein distance between byte strings, using `scratch` for
/// all working memory. The shorter string becomes the bit-encoded pattern.
pub fn distance(scratch: &mut MyersScratch, a: &[u8], b: &[u8]) -> usize {
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.is_empty() {
        return text.len();
    }
    let blocks = scratch.prepare(pattern);
    let last = blocks - 1;
    let score_mask = 1u64 << ((pattern.len() - 1) % WORD);
    let mut score = pattern.len() as i64;

    let peq = &scratch.peq;
    let pv = &mut scratch.pv;
    let mv = &mut scratch.mv;
    for &tc in text {
        let mut hin = 1;
        for b in 0..last {
            (hin, _) = advance_block(
                &mut pv[b],
                &mut mv[b],
                peq[b * 256 + tc as usize],
                hin,
                HIGH_BIT,
            );
        }
        let (_, delta) = advance_block(
            &mut pv[last],
            &mut mv[last],
            peq[last * 256 + tc as usize],
            hin,
            score_mask,
        );
        score += i64::from(delta);
    }
    score as usize
}

/// Bounded distance: `Some(d)` when `d <= bound`, `None` as soon as the
/// distance provably exceeds it. The bottom-row score can fall by at most
/// one per remaining text column, so `score - remaining > bound` is a
/// certificate of failure.
pub fn distance_bounded(
    scratch: &mut MyersScratch,
    a: &[u8],
    b: &[u8],
    bound: usize,
) -> Option<usize> {
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Length difference is a lower bound on the distance.
    if text.len() - pattern.len() > bound {
        return None;
    }
    if pattern.is_empty() {
        return (text.len() <= bound).then_some(text.len());
    }
    let blocks = scratch.prepare(pattern);
    let last = blocks - 1;
    let score_mask = 1u64 << ((pattern.len() - 1) % WORD);
    let mut score = pattern.len() as i64;
    let bound = bound as i64;

    let peq = &scratch.peq;
    let pv = &mut scratch.pv;
    let mv = &mut scratch.mv;
    for (j, &tc) in text.iter().enumerate() {
        let mut hin = 1;
        for b in 0..last {
            (hin, _) = advance_block(
                &mut pv[b],
                &mut mv[b],
                peq[b * 256 + tc as usize],
                hin,
                HIGH_BIT,
            );
        }
        let (_, delta) = advance_block(
            &mut pv[last],
            &mut mv[last],
            peq[last * 256 + tc as usize],
            hin,
            score_mask,
        );
        score += i64::from(delta);
        let remaining = (text.len() - 1 - j) as i64;
        if score - remaining > bound {
            return None;
        }
    }
    (score <= bound).then_some(score as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: &str, b: &str) -> usize {
        distance(&mut MyersScratch::new(), a.as_bytes(), b.as_bytes())
    }

    #[test]
    fn known_distances() {
        assert_eq!(d("kitten", "sitting"), 3);
        assert_eq!(d("flaw", "lawn"), 2);
        assert_eq!(d("", ""), 0);
        assert_eq!(d("abc", ""), 3);
        assert_eq!(d("", "abc"), 3);
        assert_eq!(d("same", "same"), 0);
    }

    #[test]
    fn multi_block_patterns() {
        // Pattern > 64 bytes exercises the block recurrence and carries.
        let a = "x".repeat(70);
        let mut b = a.clone();
        b.replace_range(10..11, "y");
        b.push('z');
        assert_eq!(d(&a, &b), 2);
        let long_a = "abcdefghij".repeat(13); // 130 bytes, 3 blocks
        let long_b = "abcdefghij".repeat(13).replace("ef", "xx");
        assert_eq!(
            d(&long_a, &long_b),
            crate::levenshtein::wagner_fischer(&long_a, &long_b)
        );
    }

    #[test]
    fn block_boundary_lengths() {
        for m in [63usize, 64, 65, 127, 128, 129] {
            let a = "a".repeat(m);
            let b = "a".repeat(m - 1) + "b";
            assert_eq!(d(&a, &b), 1, "m={m}");
            assert_eq!(d(&a, &a), 0, "m={m}");
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        // A long pattern followed by a short one must not leak stale bits.
        let mut s = MyersScratch::new();
        let long = "qwertyuiopasdfghjklzxcvbnm".repeat(4);
        assert_eq!(distance(&mut s, long.as_bytes(), long.as_bytes()), 0);
        assert_eq!(distance(&mut s, b"kitten", b"sitting"), 3);
        assert_eq!(distance(&mut s, b"qqq", b"www"), 3);
        assert_eq!(
            distance(&mut s, long.as_bytes(), b"kitten"),
            crate::levenshtein::wagner_fischer(&long, "kitten")
        );
    }

    #[test]
    fn bounded_semantics() {
        let mut s = MyersScratch::new();
        assert_eq!(distance_bounded(&mut s, b"kitten", b"sitting", 3), Some(3));
        assert_eq!(distance_bounded(&mut s, b"kitten", b"sitting", 2), None);
        assert_eq!(distance_bounded(&mut s, b"a", b"aaaaaaaaaa", 3), None);
        assert_eq!(distance_bounded(&mut s, b"", b"xyz", 3), Some(3));
        assert_eq!(distance_bounded(&mut s, b"", b"xyz", 2), None);
    }
}
