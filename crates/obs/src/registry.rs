//! The labeled metrics registry.
//!
//! `Registry` hands out `Arc` handles keyed by `(name, labels)`; callers
//! cache the handle, so the registry lock is taken once per metric at
//! wiring time and never again on the hot path. `snapshot()` freezes the
//! whole registry into a [`MetricsSnapshot`] — an inert, mergeable value
//! that the exporters in [`crate::export`] can render without touching
//! live atomics.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A metric identity: name plus ordered label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (`snake_case`, Prometheus-compatible).
    pub name: String,
    /// Label pairs, kept in the order given at registration.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Render as `name{k="v",...}` (bare name when unlabeled). Label
    /// values are escaped per the Prometheus exposition format: `\` →
    /// `\\`, `"` → `\"`, newline → `\n`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// Escape a label value per the Prometheus text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// The registry. Cheap to share (`Arc<Registry>`); all methods take `&self`.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        if let Some(c) = self.inner.read().counters.get(&key) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(key)
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        if let Some(g) = self.inner.read().gauges.get(&key) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(key)
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        if let Some(h) = self.inner.read().histograms.get(&key) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(key)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Freeze the registry into an inert snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a registry. Mergeable, so
/// per-shard / per-run snapshots can be folded into one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<MetricKey, i64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Fold `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Value of counter `name{labels}`, zero when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Value of gauge `name{labels}`, zero when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        self.gauges
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram `name{labels}`, if recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&MetricKey::new(name, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("reqs", &[("kind", "check")]);
        let b = r.counter("reqs", &[("kind", "check")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("reqs", &[("kind", "stats")]);
        other.inc();
        let s = r.snapshot();
        assert_eq!(s.counter("reqs", &[("kind", "check")]), 2);
        assert_eq!(s.counter("reqs", &[("kind", "stats")]), 1);
        assert_eq!(s.counter("reqs", &[]), 0);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c", &[]).add(3);
        r.gauge("g", &[]).set(-2);
        r.histogram("h", &[]).record(0.5);
        let s = r.snapshot();
        assert_eq!(s.counter("c", &[]), 3);
        assert_eq!(s.gauge("g", &[]), -2);
        assert_eq!(s.histogram("h", &[]).unwrap().count, 1);
    }

    #[test]
    fn merge_folds_everything() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("c", &[]).add(2);
        r2.counter("c", &[]).add(5);
        r2.counter("only2", &[]).inc();
        r1.histogram("h", &[]).record(1.0);
        r2.histogram("h", &[]).record(3.0);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counter("c", &[]), 7);
        assert_eq!(s.counter("only2", &[]), 1);
        let h = s.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn key_rendering() {
        assert_eq!(MetricKey::new("up", &[]).render(), "up");
        assert_eq!(
            MetricKey::new("stage_seconds", &[("stage", "crawl")]).render(),
            "stage_seconds{stage=\"crawl\"}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let key = MetricKey::new("hits", &[("url", "https://a.b/\"x\"\\p\nq")]);
        assert_eq!(key.render(), "hits{url=\"https://a.b/\\\"x\\\"\\\\p\\nq\"}");
        // The rendered form contains no raw quote/newline inside the value.
        let rendered = key.render();
        assert!(!rendered.contains('\n'));
    }
}
