//! # freephish-mapidx
//!
//! The immutable, mmap-loadable verdict index: the persistence layer that
//! lets a serve node carrying a 10M-entry blocklist restart in
//! milliseconds instead of replaying its WAL.
//!
//! The run journal (`freephish-store`) is the source of truth, but replay
//! cost grows linearly with history — at million-site cardinality a cold
//! start spends seconds rebuilding a map the previous process already
//! had. This crate bakes the journal's *net state* into a write-once file
//! ([`format`]) that a restarting node maps ([`read`]) instead of
//! replaying:
//!
//! * [`write`] — [`IndexWriter`], an external-merge builder: bounded
//!   in-memory runs spilled sorted to disk, k-way merged with
//!   last-write-wins dedup, and published by atomic rename. Memory never
//!   scales with entry count. [`bake_journal`] streams a store directory
//!   through the same payload-decoder contract the serve layer uses and
//!   stamps the drained journal cursor into the header.
//! * [`read`] — [`SnapshotIndex`]: `mmap(2)` the file, validate the
//!   CRC-checked header and geometry, then serve bounds-checked lookups
//!   straight off the mapping. The serve-path open is O(1) in file size
//!   (pages fault lazily); `open_verified` adds the memory-bandwidth
//!   body checksum for distrustful readers. Corrupt or truncated files
//!   are refused with a typed [`IndexError`]; nothing panics on
//!   untrusted bytes.
//! * [`format`] — the shared layout: hash-sorted fixed-width records, a
//!   key heap, and a prefix-sum bucket table for O(1) lookups.
//!
//! The serve layer overlays its live RCU delta (`ShardedIndex`, fed from
//! the journal tail *after* the baked cursor) on top of a
//! [`SnapshotIndex`] baseline — the two-level read path described in
//! DESIGN.md §15.

pub mod format;
pub mod mmap;
pub mod read;
pub mod write;

pub use format::{key_hash, BodySum, Header, IndexError};
pub use read::SnapshotIndex;
pub use write::{bake_journal, BakeSummary, IndexWriter, DEFAULT_RUN_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_store::testutil::TempDir;

    fn bake(dir: &TempDir, entries: &[(&str, f64)], run_bytes: usize) -> SnapshotIndex {
        let out = dir.path().join("verdicts.mapidx");
        let mut w = IndexWriter::with_run_bytes(dir.path().join("spill"), run_bytes).unwrap();
        for (url, score) in entries {
            w.add(url, *score).unwrap();
        }
        let summary = w.finish(&out).unwrap();
        let idx = SnapshotIndex::open(&out).unwrap();
        assert_eq!(idx.len(), summary.entries);
        assert_eq!(idx.file_bytes(), summary.file_bytes);
        idx
    }

    #[test]
    fn roundtrips_entries_bit_identically() {
        let dir = TempDir::new("mapidx-roundtrip");
        let entries: Vec<(String, f64)> = (0..500)
            .map(|i| {
                (
                    format!("https://site{i}.weebly.com/login"),
                    0.5 + (i as f64) * 1e-6,
                )
            })
            .collect();
        let refs: Vec<(&str, f64)> = entries.iter().map(|(u, s)| (u.as_str(), *s)).collect();
        let idx = bake(&dir, &refs, DEFAULT_RUN_BYTES);
        assert_eq!(idx.len(), 500);
        for (url, score) in &entries {
            let got = idx.get(url).unwrap();
            assert_eq!(got.to_bits(), score.to_bits(), "{url}");
        }
        assert_eq!(idx.get("https://unknown.weebly.com/"), None);
    }

    #[test]
    fn later_adds_shadow_earlier_ones() {
        let dir = TempDir::new("mapidx-lww");
        let idx = bake(
            &dir,
            &[
                ("https://a.weebly.com/", 0.11),
                ("https://b.wixsite.com/x", 0.5),
                ("https://a.weebly.com/", 0.99),
            ],
            DEFAULT_RUN_BYTES,
        );
        assert_eq!(idx.len(), 2);
        assert_eq!(
            idx.get("https://a.weebly.com/").unwrap().to_bits(),
            0.99f64.to_bits()
        );
    }

    #[test]
    fn tiny_run_budget_forces_spills_and_merges_identically() {
        let dir_a = TempDir::new("mapidx-spill-a");
        let dir_b = TempDir::new("mapidx-spill-b");
        let entries: Vec<(String, f64)> = (0..2000)
            .map(|i| {
                (
                    format!("https://s{}.000webhostapp.com/p", i % 700),
                    i as f64,
                )
            })
            .collect();
        let refs: Vec<(&str, f64)> = entries.iter().map(|(u, s)| (u.as_str(), *s)).collect();
        // 1 KiB budget spills dozens of runs; the big budget never spills.
        let spilled = bake(&dir_a, &refs, 1024);
        let in_mem = bake(&dir_b, &refs, DEFAULT_RUN_BYTES);
        assert_eq!(spilled.len(), 700);
        assert_eq!(spilled.len(), in_mem.len());
        for i in 0..700 {
            let url = format!("https://s{i}.000webhostapp.com/p");
            assert_eq!(
                spilled.get(&url).map(f64::to_bits),
                in_mem.get(&url).map(f64::to_bits),
                "{url}"
            );
            // Last write wins: the highest index that hit this slot.
            let want = (1300..2000).find(|j| j % 700 == i).unwrap() as f64;
            assert_eq!(spilled.get(&url), Some(want));
        }
    }

    #[test]
    fn empty_bake_loads_and_misses_cleanly() {
        let dir = TempDir::new("mapidx-empty");
        let idx = bake(&dir, &[], DEFAULT_RUN_BYTES);
        assert!(idx.is_empty());
        assert_eq!(idx.get("https://anything.weebly.com/"), None);
        assert_eq!(idx.cursor(), None);
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let dir = TempDir::new("mapidx-iter");
        let idx = bake(
            &dir,
            &[
                ("https://a.weebly.com/", 0.9),
                ("https://b.weebly.com/", 0.8),
                ("https://c.weebly.com/", 0.7),
            ],
            DEFAULT_RUN_BYTES,
        );
        let mut got: Vec<(String, f64)> = idx.iter().map(|(k, v)| (k.to_string(), v)).collect();
        got.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            got,
            vec![
                ("https://a.weebly.com/".to_string(), 0.9),
                ("https://b.weebly.com/".to_string(), 0.8),
                ("https://c.weebly.com/".to_string(), 0.7),
            ]
        );
    }

    #[test]
    fn bake_journal_records_cursor_and_resumes() {
        use freephish_store::{Store, StoreOptions, TailFollower};
        let dir = TempDir::new("mapidx-bake-journal");
        let store_dir = dir.path().join("journal");
        let opts = StoreOptions {
            segment_max_bytes: 256,
            sync_every_append: false,
        };
        let (mut store, _) = Store::open_with(&store_dir, opts, None).unwrap();
        // Payloads are "url score" text; decoder splits them.
        for i in 0..50 {
            store
                .append(format!("https://j{i}.weebly.com/ 0.{i:02}").as_bytes())
                .unwrap();
        }
        store.flush().unwrap();
        let decode = |payload: &[u8]| -> std::io::Result<Option<(String, f64)>> {
            let text = std::str::from_utf8(payload).unwrap();
            let (url, score) = text.split_once(' ').unwrap();
            Ok(Some((url.to_string(), score.parse().unwrap())))
        };
        let out = dir.path().join("baked.mapidx");
        let summary = bake_journal(&store_dir, &out, decode).unwrap();
        assert_eq!(summary.entries, 50);
        let cursor = summary.cursor.expect("bake of a live journal has a cursor");

        let idx = SnapshotIndex::open(&out).unwrap();
        assert_eq!(idx.cursor(), Some(cursor));
        assert!(idx.get("https://j7.weebly.com/").is_some());

        // A follower resumed at the baked cursor sees only post-bake appends.
        store.append(b"https://after.weebly.com/ 0.99").unwrap();
        store.flush().unwrap();
        let mut follower = TailFollower::resume(&store_dir, cursor);
        let batch = follower.poll().unwrap();
        assert!(batch.snapshot.is_none(), "no snapshot redelivery on resume");
        assert_eq!(
            batch.records,
            vec![b"https://after.weebly.com/ 0.99".to_vec()]
        );
    }
}
