//! Bump-index DOM over borrowed span tokens.
//!
//! The owned [`crate::dom::Document`] stores a `Vec<NodeId>` child list per
//! element — one heap allocation per parent and a pointer chase per hop.
//! [`SpanDocument`] keeps the same tree shape in three flat arrays: nodes in
//! document order plus `first_child`/`next_sibling` u32 links (bump indices
//! assigned in token order, `u32::MAX` = none). Node payloads borrow from
//! the source string exactly like [`crate::span::SpanToken`]s, so building
//! the tree allocates only the arena itself and whatever tokens had to fold.
//!
//! Tree-construction rules are identical to `Document::from_tokens`: void
//! and self-closed elements take no children, unclosed elements auto-close
//! at EOF, stray close tags unwind to a matching ancestor or are ignored.

use crate::dom::VOID;
use crate::span::{tokenize_spans, SpanAttr, SpanToken};
use std::borrow::Cow;

/// Sentinel for "no node" in the link arrays.
const NIL: u32 = u32::MAX;

/// A node payload borrowed from the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanNode<'a> {
    /// An element: lower-cased tag plus attributes in source order.
    Element {
        /// Tag name, lower-cased (borrowed when already lower-case).
        tag: Cow<'a, str>,
        /// Attributes in source order.
        attrs: Vec<SpanAttr<'a>>,
    },
    /// A text run (entity-decoded; raw inside script/style).
    Text(Cow<'a, str>),
    /// A comment body.
    Comment(&'a str),
}

/// A parsed document as a flat arena with bump-index child links.
#[derive(Debug, Clone)]
pub struct SpanDocument<'a> {
    nodes: Vec<SpanNode<'a>>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    roots: Vec<u32>,
}

impl<'a> SpanDocument<'a> {
    /// Parse `html` into a borrowed arena tree. Infallible.
    pub fn parse(html: &'a str) -> SpanDocument<'a> {
        let mut nodes: Vec<SpanNode<'a>> = Vec::new();
        let mut first_child: Vec<u32> = Vec::new();
        let mut next_sibling: Vec<u32> = Vec::new();
        // Last child of each node, so sibling links append in O(1).
        let mut last_child: Vec<u32> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();

        let attach = |nodes: &mut Vec<SpanNode<'a>>,
                      first_child: &mut Vec<u32>,
                      next_sibling: &mut Vec<u32>,
                      last_child: &mut Vec<u32>,
                      roots: &mut Vec<u32>,
                      stack: &[u32],
                      node: SpanNode<'a>|
         -> u32 {
            let id = nodes.len() as u32;
            nodes.push(node);
            first_child.push(NIL);
            next_sibling.push(NIL);
            last_child.push(NIL);
            match stack.last() {
                Some(&parent) => {
                    let p = parent as usize;
                    if last_child[p] == NIL {
                        first_child[p] = id;
                    } else {
                        next_sibling[last_child[p] as usize] = id;
                    }
                    last_child[p] = id;
                }
                None => roots.push(id),
            }
            id
        };

        for tok in tokenize_spans(html) {
            match tok {
                SpanToken::Open {
                    tag,
                    attrs,
                    self_closing,
                } => {
                    let pushes = !self_closing && !VOID.contains(&tag.as_ref());
                    let id = attach(
                        &mut nodes,
                        &mut first_child,
                        &mut next_sibling,
                        &mut last_child,
                        &mut roots,
                        &stack,
                        SpanNode::Element { tag, attrs },
                    );
                    if pushes {
                        stack.push(id);
                    }
                }
                SpanToken::Close { tag } => {
                    if let Some(pos) = stack.iter().rposition(|&id| {
                        matches!(&nodes[id as usize], SpanNode::Element { tag: t, .. } if *t == tag)
                    }) {
                        stack.truncate(pos);
                    }
                }
                SpanToken::Text(t) => {
                    attach(
                        &mut nodes,
                        &mut first_child,
                        &mut next_sibling,
                        &mut last_child,
                        &mut roots,
                        &stack,
                        SpanNode::Text(t),
                    );
                }
                SpanToken::Comment(c) => {
                    attach(
                        &mut nodes,
                        &mut first_child,
                        &mut next_sibling,
                        &mut last_child,
                        &mut roots,
                        &stack,
                        SpanNode::Comment(c),
                    );
                }
            }
        }
        SpanDocument {
            nodes,
            first_child,
            next_sibling,
            roots,
        }
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node indices in document order.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Payload of node `id`.
    pub fn node(&self, id: u32) -> &SpanNode<'a> {
        &self.nodes[id as usize]
    }

    /// Iterate the children of `id` in document order, without allocating.
    pub fn children(&self, id: u32) -> Children<'_, 'a> {
        Children {
            doc: self,
            next: self.first_child[id as usize],
        }
    }

    /// Depth-first walk in document order.
    pub fn walk(&self, mut f: impl FnMut(u32, &SpanNode<'a>)) {
        let mut stack: Vec<u32> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            f(id, &self.nodes[id as usize]);
            // Push children in reverse so the first child pops first.
            let mut kids: Vec<u32> = self.children(id).map(|(c, _)| c).collect();
            kids.reverse();
            stack.extend(kids);
        }
    }
}

/// Iterator over a node's children (id + payload).
pub struct Children<'d, 'a> {
    doc: &'d SpanDocument<'a>,
    next: u32,
}

impl<'d, 'a> Iterator for Children<'d, 'a> {
    type Item = (u32, &'d SpanNode<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == NIL {
            return None;
        }
        let id = self.next;
        self.next = self.doc.next_sibling[id as usize];
        Some((id, &self.doc.nodes[id as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{Document, Node};

    /// Flatten a Document to (depth, label) pairs in walk order.
    fn shape_owned(doc: &Document) -> Vec<String> {
        let mut out = Vec::new();
        doc.walk(|_, n| {
            out.push(match n {
                Node::Element { tag, attrs, .. } => format!(
                    "E:{tag}:{}",
                    attrs
                        .iter()
                        .map(|a| format!("{}={}", a.name, a.value))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                Node::Text(t) => format!("T:{t}"),
                Node::Comment(c) => format!("C:{c}"),
            });
        });
        out
    }

    fn shape_span(doc: &SpanDocument<'_>) -> Vec<String> {
        let mut out = Vec::new();
        doc.walk(|_, n| {
            out.push(match n {
                SpanNode::Element { tag, attrs } => format!(
                    "E:{tag}:{}",
                    attrs
                        .iter()
                        .map(|a| format!("{}={}", a.name, a.value))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
                SpanNode::Text(t) => format!("T:{t}"),
                SpanNode::Comment(c) => format!("C:{c}"),
            });
        });
        out
    }

    fn check(html: &str) {
        let span = SpanDocument::parse(html);
        let owned = Document::parse(html);
        assert_eq!(span.len(), owned.len(), "node count, html={html:?}");
        assert_eq!(
            span.roots().len(),
            owned.roots().len(),
            "root count, html={html:?}"
        );
        assert_eq!(shape_span(&span), shape_owned(&owned), "html={html:?}");
    }

    #[test]
    fn mirrors_owned_dom_shape() {
        for html in [
            "<div><p>a</p><p>b</p></div>",
            "<p><br>text</p>",
            "<div><p>a",
            "</div><p>x</p>",
            "<div><p>a</div>b",
            "<div><!-- hidden banner --></div>",
            "<a>1</a><b>2</b>",
            "",
            "<script>var x = '<p>';</script>after",
            r#"<form><input type="password" name="pw"></form>"#,
        ] {
            check(html);
        }
    }

    #[test]
    fn children_iterator_matches_links() {
        let doc = SpanDocument::parse("<div><p>a</p><p>b</p><br></div>");
        let root = doc.roots()[0];
        let kids: Vec<_> = doc.children(root).map(|(id, _)| id).collect();
        assert_eq!(kids.len(), 3);
        assert!(matches!(doc.node(kids[2]), SpanNode::Element { tag, .. } if tag == "br"));
    }

    #[test]
    fn borrows_survive_into_tree() {
        let html = "<p class=\"x\">hello</p>";
        let doc = SpanDocument::parse(html);
        let root = doc.roots()[0];
        match doc.node(root) {
            SpanNode::Element { tag, attrs } => {
                assert!(matches!(tag, Cow::Borrowed(_)));
                assert!(matches!(attrs[0].value, Cow::Borrowed(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
