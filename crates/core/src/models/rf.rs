//! Random-forest detector over the augmented feature set — the classifier
//! the paper's Section 4 overview names ("Employs a Random Forest
//! classifier"), before Section 4.2's model bake-off settles on stacking.
//! Kept as a comparison point (reported as an extension row in the Table 2
//! harness).

use super::{PageFetcher, PhishDetector};
use crate::features::{FeatureSet, FeatureVector};
use crate::groundtruth::{to_dataset, LabeledSite};
use freephish_htmlparse::parse;
use freephish_ml::{ForestConfig, RandomForest};
use freephish_simclock::Rng64;
use freephish_urlparse::Url;

/// A trained random-forest detector.
pub struct ForestDetector {
    model: RandomForest,
}

impl ForestDetector {
    /// Train on a labelled corpus over the augmented features.
    pub fn train(corpus: &[LabeledSite], config: &ForestConfig, rng: &mut Rng64) -> Self {
        let data = to_dataset(corpus, FeatureSet::Augmented);
        ForestDetector {
            model: RandomForest::train(config, &data, rng),
        }
    }

    /// The underlying forest (for importance reporting).
    pub fn forest(&self) -> &RandomForest {
        &self.model
    }
}

impl PhishDetector for ForestDetector {
    fn name(&self) -> &'static str {
        "Random Forest (§4 overview)"
    }

    fn score(&self, url: &str, html: &str, _fetcher: &dyn PageFetcher) -> f64 {
        let Ok(parsed) = Url::parse(url) else {
            return 0.5;
        };
        let doc = parse(html);
        let v = FeatureVector::extract(FeatureSet::Augmented, &parsed, &doc);
        self.model.predict_proba(&v.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::{build, GroundTruthConfig};
    use crate::models::NoFetch;

    #[test]
    fn forest_detector_competitive() {
        let corpus = build(&GroundTruthConfig {
            n_phish: 300,
            n_benign: 300,
            seed: 12,
        });
        let (train, test) = corpus.split_at(450);
        let mut rng = Rng64::new(13);
        let model = ForestDetector::train(train, &ForestConfig::tiny(), &mut rng);
        let correct = test
            .iter()
            .filter(|ls| model.predict(&ls.site.url, &ls.site.html, &NoFetch) == ls.label)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn unparseable_url_neutral() {
        let corpus = build(&GroundTruthConfig::tiny());
        let mut rng = Rng64::new(14);
        let model = ForestDetector::train(&corpus, &ForestConfig::tiny(), &mut rng);
        assert_eq!(model.score(":::", "<p></p>", &NoFetch), 0.5);
    }
}
