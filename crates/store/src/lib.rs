//! # freephish-store
//!
//! A crash-recoverable write-ahead log + snapshot engine, the durability
//! layer under resumable pipeline runs and the live-updatable verdict
//! service.
//!
//! The measurement the paper describes is longitudinal — FreePhish-style
//! monitoring runs for months, and losing weeks of observations to one
//! crash is not acceptable. This crate provides the minimal persistence
//! contract the rest of the workspace builds on:
//!
//! * **Segmented WAL** ([`segment`]): append-only `wal-<index>.log` files
//!   of length-prefixed, CRC32-checksummed records.
//! * **Snapshots + compaction** ([`snapshot`], [`Store::snapshot`]): a
//!   durable point-in-time image lets the store delete every segment the
//!   image covers, bounding replay time and disk use.
//! * **Recovery** ([`Store::open`]): replay the newest valid snapshot,
//!   then the WAL suffix, truncating at the first defect. Corruption is
//!   *truncated*, never propagated: the recovered state is always a valid
//!   prefix of what was appended (the crash model is tail damage — a torn
//!   final write — plus arbitrary bit rot, which the checksums catch).
//! * **Tailing** ([`TailFollower`]): read-only incremental consumption of
//!   a directory another process is writing, used by the verdict service
//!   to hot-reload as the pipeline appends verdicts.
//!
//! The crate is deliberately std-only — no dependencies, not even on the
//! rest of the workspace — so the durability layer stays small enough to
//! audit and test exhaustively (the CRC32 lives in [`crc32`]).
//!
//! Typed record encoding for pipeline events lives with the consumers
//! (`freephish-core`); this crate moves opaque byte payloads and offers
//! the [`codec`] helpers they build on.

pub mod codec;
pub mod crc32;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod tail;
#[doc(hidden)]
pub mod testutil;

pub use codec::{DecodeError, PayloadReader, PayloadWriter};
pub use crc32::{crc32, crc32_update};
pub use segment::Torn;
pub use store::{RecordPos, Recovered, Store, StoreObserver, StoreOptions};
pub use tail::{TailBatch, TailCursor, TailFollower};

#[cfg(test)]
mod randomized {
    //! Deterministic randomized corruption tests (an xorshift generator,
    //! not an external property-testing crate, so these run in-crate;
    //! `tests/proptests.rs` carries the proptest versions).

    use crate::store::{Store, StoreOptions};
    use crate::testutil::TempDir;
    use std::path::Path;

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            segment_max_bytes: 256,
            sync_every_append: false,
        }
    }

    fn write_records(dir: &Path, rng: &mut Rng) -> Vec<Vec<u8>> {
        let n = 1 + rng.below(50) as usize;
        let mut records = Vec::with_capacity(n);
        let (mut store, _) = Store::open_with(dir, opts(), None).unwrap();
        for i in 0..n {
            let len = rng.below(120) as usize;
            let mut payload = vec![0u8; len];
            for b in payload.iter_mut() {
                *b = rng.next() as u8;
            }
            payload.extend_from_slice(format!("#{i}").as_bytes());
            store.append(&payload).unwrap();
            records.push(payload);
        }
        store.sync().unwrap();
        records
    }

    fn recovered_payloads(dir: &Path) -> (Vec<Vec<u8>>, bool) {
        let (_, rec) = Store::open(dir).unwrap();
        (
            rec.records.into_iter().map(|(_, p)| p).collect(),
            rec.torn_tail,
        )
    }

    fn assert_prefix(got: &[Vec<u8>], want: &[Vec<u8>], what: &str) {
        assert!(
            got.len() <= want.len(),
            "{what}: recovered {} records, only {} written",
            got.len(),
            want.len()
        );
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g, w, "{what}: record {i} differs");
        }
    }

    fn last_segment(dir: &Path) -> std::path::PathBuf {
        let mut names: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("wal-"))
            .collect();
        names.sort();
        dir.join(names.last().expect("at least one segment"))
    }

    #[test]
    fn random_tail_truncation_recovers_a_prefix() {
        let mut rng = Rng(0x5EED_0001);
        for trial in 0..60 {
            let dir = TempDir::new("rand-trunc");
            let want = write_records(dir.path(), &mut rng);
            let seg = last_segment(dir.path());
            let len = std::fs::metadata(&seg).unwrap().len();
            let cut = rng.below(len + 1);
            let bytes = std::fs::read(&seg).unwrap();
            std::fs::write(&seg, &bytes[..cut as usize]).unwrap();

            let (got, _) = recovered_payloads(dir.path());
            assert_prefix(&got, &want, &format!("trial {trial} cut@{cut}"));

            // The recovered store must accept new appends and survive a
            // clean reopen.
            let (mut store, rec) = Store::open(dir.path()).unwrap();
            assert!(!rec.torn_tail, "second open after truncation is clean");
            store.append(b"post-recovery").unwrap();
            store.sync().unwrap();
            drop(store);
            let (got2, torn2) = recovered_payloads(dir.path());
            assert!(!torn2);
            assert_eq!(got2.last().unwrap(), b"post-recovery");
        }
    }

    #[test]
    fn random_bit_flips_recover_a_prefix() {
        let mut rng = Rng(0x5EED_0002);
        for trial in 0..60 {
            let dir = TempDir::new("rand-flip");
            let want = write_records(dir.path(), &mut rng);
            // Flip 1–3 bits anywhere in the segment files.
            let mut segs: Vec<_> = std::fs::read_dir(dir.path())
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-"))
                })
                .collect();
            segs.sort();
            for _ in 0..=rng.below(3) {
                let seg = &segs[rng.below(segs.len() as u64) as usize];
                let mut bytes = std::fs::read(seg).unwrap();
                if bytes.is_empty() {
                    continue;
                }
                let pos = rng.below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << rng.below(8);
                std::fs::write(seg, &bytes).unwrap();
            }

            let (got, _) = recovered_payloads(dir.path());
            assert_prefix(&got, &want, &format!("trial {trial}"));
        }
    }

    #[test]
    fn snapshot_cycles_preserve_state_across_reopens() {
        let mut rng = Rng(0x5EED_0003);
        for _trial in 0..20 {
            let dir = TempDir::new("rand-cycle");
            let mut all: Vec<Vec<u8>> = Vec::new();
            let mut since_snapshot = 0usize;
            let mut have_snapshot = false;
            for _cycle in 0..4 {
                let (mut store, rec) = Store::open_with(dir.path(), opts(), None).unwrap();
                assert!(!rec.torn_tail);
                // Recovered view must equal the model.
                if have_snapshot {
                    let snap = rec.snapshot.expect("snapshot survives");
                    let count = u64::from_le_bytes(snap[..8].try_into().unwrap()) as usize;
                    assert_eq!(count, all.len() - since_snapshot);
                }
                assert_eq!(rec.records.len(), since_snapshot);
                for (i, (_, p)) in rec.records.iter().enumerate() {
                    assert_eq!(p, &all[all.len() - since_snapshot + i]);
                }

                for _ in 0..rng.below(30) {
                    let mut payload = vec![0u8; rng.below(60) as usize];
                    for b in payload.iter_mut() {
                        *b = rng.next() as u8;
                    }
                    store.append(&payload).unwrap();
                    all.push(payload);
                    since_snapshot += 1;
                    if rng.below(10) == 0 {
                        store.snapshot(&(all.len() as u64).to_le_bytes()).unwrap();
                        since_snapshot = 0;
                        have_snapshot = true;
                    }
                }
                store.sync().unwrap();
            }
        }
    }
}
