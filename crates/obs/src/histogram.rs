//! A log-bucketed histogram for latencies and other non-negative-ish
//! values, lock-free on the record path.
//!
//! Layout: bucket 0 is the underflow bucket (`v <= 2^MIN_LOG2`, including
//! zero and negatives); the last bucket is the overflow bucket; between
//! them the bucket boundaries grow geometrically with
//! [`SUB_BUCKETS_PER_OCTAVE`] buckets per power of two, giving a constant
//! ≤ ~19% relative error per bucket across ~60 decimal orders of
//! magnitude — nanosecond spans and six-month `SimTime` spans share one
//! layout. Recording is one `fetch_add` plus CAS loops for sum/min/max;
//! quantiles are estimated from a [`HistogramSnapshot`] by linear
//! interpolation inside the owning bucket and clamped to the observed
//! `[min, max]`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per power of two.
pub const SUB_BUCKETS_PER_OCTAVE: usize = 4;
/// log2 of the underflow boundary: values ≤ 2^-24 (≈ 6e-8) collapse into
/// bucket 0. Fine enough for seconds-denominated latencies.
const MIN_LOG2: f64 = -24.0;
/// Total bucket count, underflow and overflow included: covers
/// 2^-24 .. 2^(−24 + 254/4) ≈ 6e-8 .. 6e11.
pub const NUM_BUCKETS: usize = 256;

/// Index of the bucket owning `v`. Total over all non-NaN floats.
#[inline]
fn bucket_index(v: f64) -> usize {
    if v <= 2f64.powf(MIN_LOG2) {
        return 0;
    }
    let pos = (v.log2() - MIN_LOG2) * SUB_BUCKETS_PER_OCTAVE as f64;
    // ceil puts exact boundaries in the lower bucket (upper bounds are
    // inclusive, Prometheus `le` style); the epsilon absorbs the 1-ulp
    // noise of the powf/log2 round trip at exact boundaries.
    let idx = (pos - 1e-9).ceil() as usize;
    idx.clamp(1, NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx` (`f64::INFINITY` for overflow).
fn bucket_upper_bound(idx: usize) -> f64 {
    if idx >= NUM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        2f64.powf(MIN_LOG2 + idx as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
    }
}

/// Lower bound of bucket `idx` (`-inf` conceptually for underflow).
fn bucket_lower_bound(idx: usize) -> f64 {
    if idx == 0 {
        f64::NEG_INFINITY
    } else {
        bucket_upper_bound(idx - 1)
    }
}

/// The live, concurrently-writable histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of recorded values, stored as f64 bits.
    sum_bits: AtomicU64,
    /// Min/max of recorded values, stored as f64 bits; empty = NaN bits.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::NAN.to_bits()),
            max_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Record one sample. NaN samples are ignored (counted nowhere);
    /// everything else — zero, negatives, infinities — lands in a bucket.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fold_bits(&self.sum_bits, v, |acc, v| acc + v);
        fold_bits(&self.min_bits, v, f64::min);
        fold_bits(&self.max_bits, v, f64::max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset to empty. Not atomic with respect to concurrent `record`
    /// calls: a racing sample may be partially dropped. Window rotation
    /// in [`crate::window`] tolerates that bounded loss.
    pub(crate) fn clear(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    /// Convenience: estimate quantile `q` from a fresh snapshot.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// CAS-fold `v` into an f64 stored as bits (NaN means "empty": replaced
/// by `v` unconditionally).
fn fold_bits(cell: &AtomicU64, v: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let cur_f = f64::from_bits(cur);
        let next = if cur_f.is_nan() { v } else { f(cur_f, v) };
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A frozen histogram: mergeable, serializable, quantile-queryable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, [`NUM_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (NaN when empty).
    pub min: f64,
    /// Largest sample (NaN when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Fold another snapshot into this one (per-shard merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = nan_fold(self.min, other.min, f64::min);
        self.max = nan_fold(self.max, other.max, f64::max);
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`); `None` when
    /// empty. The estimate interpolates linearly within the owning bucket
    /// and is clamped to the observed `[min, max]`, so it is exact at the
    /// extremes and within one bucket's relative width elsewhere.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Exact at the extremes.
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // 1-based rank of the sample we are after.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower_bound(idx).max(self.min);
                let hi = bucket_upper_bound(idx).min(self.max);
                let frac = (rank - seen) as f64 / n as f64;
                let est = if lo.is_finite() && hi.is_finite() {
                    lo + (hi - lo) * frac
                } else if hi.is_finite() {
                    hi
                } else {
                    lo
                };
                return Some(est.clamp(self.min, self.max));
            }
            seen += n;
        }
        // Unreachable when bucket counts are consistent with `count`;
        // degrade gracefully if a torn snapshot undercounted buckets.
        Some(self.max)
    }

    /// Cumulative `(upper_bound, cumulative_count)` pairs for non-empty
    /// buckets — the Prometheus `le` series.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            acc += n;
            out.push((bucket_upper_bound(idx), acc));
        }
        out
    }
}

/// min/max fold where NaN means "no data on that side".
fn nan_fold(a: f64, b: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    match (a.is_nan(), b.is_nan()) {
        (true, _) => b,
        (_, true) => a,
        _ => f(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        // An exact boundary value must land in the bucket whose upper
        // bound it is, not the one above.
        for idx in 1..NUM_BUCKETS - 1 {
            let ub = bucket_upper_bound(idx);
            assert_eq!(bucket_index(ub), idx, "upper bound of bucket {idx}");
            // Just above the boundary goes to the next bucket.
            let above = ub * 1.0001;
            assert_eq!(bucket_index(above), idx + 1, "just above bucket {idx}");
        }
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.5), 0);
        assert_eq!(bucket_index(f64::NEG_INFINITY), 0);
        assert_eq!(bucket_index(1e-30), 0);
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_and_summary_stats() {
        let h = Histogram::new();
        for v in [0.001, 0.002, 0.004, 0.008, 0.016] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert!((s.sum - 0.031).abs() < 1e-12);
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 0.016);
        assert!((s.mean().unwrap() - 0.0062).abs() < 1e-12);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(1.0);
        h.record(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        // Log-bucketed estimate: within one bucket (~19%) of the truth.
        assert!((p50 - 5.0).abs() / 5.0 < 0.2, "p50={p50}");
        assert!((p99 - 9.9).abs() / 9.9 < 0.2, "p99={p99}");
        assert_eq!(s.quantile(0.0).unwrap(), 0.01);
        assert_eq!(s.quantile(1.0).unwrap(), 10.0);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::new();
        let mut x = 3.7e-6;
        for _ in 0..500 {
            h.record(x);
            x *= 1.09; // spans many octaves
        }
        let s = h.snapshot();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = s.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..200 {
            let v = (i as f64 + 1.0) * 0.013;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = all.snapshot();
        assert_eq!(merged.buckets, reference.buckets);
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.min, reference.min);
        assert_eq!(merged.max, reference.max);
        assert!((merged.sum - reference.sum).abs() < 1e-9);
        assert_eq!(merged.quantile(0.5), reference.quantile(0.5));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(2.0);
        let mut s = h.snapshot();
        s.merge(&HistogramSnapshot::empty());
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 2.0);
        let mut e = HistogramSnapshot::empty();
        e.merge(&h.snapshot());
        assert_eq!(e.count, 1);
        assert_eq!(e.max, 2.0);
    }

    #[test]
    fn cumulative_is_nondecreasing_and_totals() {
        let h = Histogram::new();
        for v in [0.1, 0.1, 0.5, 2.0, 2.0, 2.0, 40.0] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative();
        assert!(!cum.is_empty());
        let mut last = 0;
        let mut last_ub = f64::NEG_INFINITY;
        for &(ub, c) in &cum {
            assert!(c >= last);
            assert!(ub > last_ub);
            last = c;
            last_ub = ub;
        }
        assert_eq!(cum.last().unwrap().1, 7);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record((t * 5_000 + i) as f64 * 1e-4 + 1e-4);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 20_000);
        assert!((s.min - 1e-4).abs() < 1e-12);
    }
}
