//! Simulated anti-phishing ecosystem: blocklists, browser-protection
//! engines (the VirusTotal aggregate) and the search-engine index.
//!
//! The behaviour models here are *calibrated to Table 4 of the paper* (per
//! FWB) and to Table 3's self-hosted column. The FreePhish analysis module
//! never reads these constants: it polls the simulated services exactly the
//! way the paper polled the real ones and computes coverage and response
//! times from what it observes. The reproduced tables are therefore
//! measurements, not echoes.
//!
//! Note on calibration (see EXPERIMENTS.md): the paper's Table 3 aggregate
//! blocklist coverage and its Table 4 per-FWB rates are not mutually
//! consistent (the URL-count-weighted mean of Table 4's GSB column is
//! ≈45%, Table 3 reports 18.44%). We calibrate to the more detailed
//! Table 4; every qualitative contrast of Table 3 (self-hosted ≫ FWB for
//! every entity, GSB ≫ PhishTank, FWB response times in hours) still
//! emerges.

pub mod blocklist;
pub mod searchindex;
pub mod virustotal;

pub use blocklist::{Blocklist, BlocklistKind, BlocklistProfile, HostClass};
pub use searchindex::SearchIndex;
pub use virustotal::{VirusTotal, VT_ENGINE_COUNT};
