//! The verdict vocabulary shared by every serving engine.
//!
//! [`Verdict`] and [`UrlChecker`] moved here from `freephish-core` so the
//! serving layer can sit *below* the framework crate: `freephish-core`
//! re-exports both from `extension`, keeping every existing import path
//! working.

/// A verdict for one URL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Block: phishing with the given score.
    Phishing(f64),
    /// Allow: benign with the given score.
    Safe(f64),
}

impl Verdict {
    /// True when navigation should be blocked.
    pub fn is_phishing(&self) -> bool {
        matches!(self, Verdict::Phishing(_))
    }

    /// The score carried by either arm.
    pub fn score(&self) -> f64 {
        match self {
            Verdict::Phishing(s) | Verdict::Safe(s) => *s,
        }
    }
}

/// Anything that can judge a URL (a model, a detection database, a stub).
pub trait UrlChecker: Send + Sync {
    /// Judge one URL.
    fn check(&self, url: &str) -> Verdict;

    /// Judge a batch of URLs, in order. The default loops over
    /// [`UrlChecker::check`]; index-backed checkers override this to
    /// resolve the whole batch against one consistent snapshot.
    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        urls.iter().map(|u| self.check(u)).collect()
    }

    /// Record `url` as known phishing (the wire protocol's `ADD`).
    /// Returns the checker's new generation count. Checkers without a
    /// mutable backing set refuse.
    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        let _ = (url, score);
        Err("this checker does not accept additions".to_string())
    }

    /// Monotonic change counter: bumps whenever the backing set changes.
    /// Static checkers stay at 0.
    fn generation(&self) -> u64 {
        0
    }
}

impl<F> UrlChecker for F
where
    F: Fn(&str) -> Verdict + Send + Sync,
{
    fn check(&self, url: &str) -> Verdict {
        self(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_many_default_preserves_order() {
        let checker = |url: &str| {
            if url.contains("evil") {
                Verdict::Phishing(0.9)
            } else {
                Verdict::Safe(0.1)
            }
        };
        let urls = vec![
            "https://evil.weebly.com/".to_string(),
            "https://fine.weebly.com/".to_string(),
            "https://evil.wixsite.com/".to_string(),
        ];
        let verdicts = checker.check_many(&urls);
        assert!(verdicts[0].is_phishing());
        assert!(!verdicts[1].is_phishing());
        assert!(verdicts[2].is_phishing());
    }

    #[test]
    fn score_accessor() {
        assert_eq!(Verdict::Phishing(0.9).score(), 0.9);
        assert_eq!(Verdict::Safe(0.2).score(), 0.2);
    }
}
