//! Table 3: blocklisting performance and response time of anti-phishing
//! entities against FWB vs self-hosted phishing attacks.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::{fmt_duration_opt, fmt_pct, TableWriter};
use freephish_core::analysis::{table3, CoverageStat};

fn cell(min: &CoverageStat) -> (String, String, String) {
    (
        fmt_pct(min.coverage),
        format!(
            "{}/{}",
            fmt_duration_opt(min.min),
            fmt_duration_opt(min.max)
        ),
        fmt_duration_opt(min.median),
    )
}

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e3);
    let rows = table3(&m.observations);

    println!("\nTable 3 — coverage and response time against FWB vs self-hosted phishing");
    println!(
        "(measured from {} FWB + equal self-hosted URLs over {} simulated days)\n",
        m.observations.len() / 2,
        180
    );
    let mut t = TableWriter::new(&[
        "Method",
        "FWB Coverage",
        "FWB Min/Max",
        "FWB Median",
        "SelfH Coverage",
        "SelfH Min/Max",
        "SelfH Median",
    ]);
    let mut json_rows = Vec::new();
    for r in &rows {
        let (fc, fmm, fmed) = cell(&r.fwb);
        let (sc, smm, smed) = cell(&r.self_hosted);
        t.row(vec![r.entity.label(), fc, fmm, fmed, sc, smm, smed]);
        json_rows.push(serde_json::json!({
            "entity": r.entity.label(),
            "fwb_coverage": r.fwb.coverage,
            "fwb_median_secs": r.fwb.median.map(|d| d.as_secs()),
            "self_hosted_coverage": r.self_hosted.coverage,
            "self_hosted_median_secs": r.self_hosted.median.map(|d| d.as_secs()),
        }));
    }
    t.print();
    println!("\nPaper shape: every entity covers self-hosted phishing far better and");
    println!("faster than FWB phishing; GSB leads the blocklists on both populations.");

    write_json(
        "table3",
        &serde_json::json!({ "experiment": "table3", "scale": scale, "rows": json_rows }),
    );
}
