//! `freephish-extd` — the FreePhish verdict daemon and its client.
//!
//! The deployable form of the paper's browser extension backend: a TCP
//! service answering `CHECK <url>` queries against a blocklist file, plus a
//! client subcommand for scripting and for wiring into a browser proxy.
//!
//! ```text
//! freephish-extd serve [--port N] [--blocklist FILE]
//!     Serve verdicts. FILE holds one `<url> [score]` per line
//!     ('#' comments allowed). With no file, starts empty.
//!
//! freephish-extd check <addr> <url> [url...]
//!     Query a running daemon; exit code 2 if any URL is phishing.
//! ```

use freephish_core::extension::{KnownSetChecker, VerdictClient, VerdictServer};
use std::sync::Arc;

fn load_blocklist(path: &str) -> std::io::Result<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let url = parts.next().unwrap_or_default().to_string();
            let score = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.99);
            (url, score)
        })
        .collect())
}

fn usage() -> ! {
    eprintln!("usage: freephish-extd serve [--port N] [--blocklist FILE]");
    eprintln!("       freephish-extd check <addr> <url> [url...]");
    std::process::exit(64);
}

fn serve(args: &[String]) -> std::io::Result<()> {
    let mut entries = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--blocklist" => {
                i += 1;
                let path = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                entries = load_blocklist(path)?;
            }
            "--port" => {
                // Accepted for interface stability; the server binds an
                // ephemeral loopback port and prints it (binding arbitrary
                // ports is a deployment concern, not a library one).
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    let checker = Arc::new(KnownSetChecker::new(entries));
    let server = VerdictServer::start(checker.clone())?;
    println!("freephish-extd listening on {}", server.addr());
    println!("known phishing URLs: {}", checker.len());
    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn check(args: &[String]) -> std::io::Result<()> {
    let (addr, urls) = match args.split_first() {
        Some((a, rest)) if !rest.is_empty() => (a, rest),
        _ => usage(),
    };
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let client = VerdictClient::new(addr);
    let mut any_phish = false;
    for url in urls {
        match client.check(url) {
            Ok(v) if v.is_phishing() => {
                println!("PHISHING  {url}");
                any_phish = true;
            }
            Ok(_) => println!("safe      {url}"),
            Err(e) => println!("error     {url}: {e}"),
        }
    }
    if any_phish {
        std::process::exit(2);
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "serve" => serve(rest),
        Some((cmd, rest)) if cmd == "check" => check(rest),
        _ => usage(),
    }
}
