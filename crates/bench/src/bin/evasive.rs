//! Section 5.5: the evasive-attack census. Runs the paper's heuristics over
//! every credential-free FWB phishing snapshot and reports the two-step /
//! iframe / drive-by counts per service, plus the Sharepoint→Microsoft
//! spoofing concentration.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::campaign::RecordClass;
use freephish_core::evasion::{classify_evasion, lacks_credential_fields, EvasionVector};
use freephish_htmlparse::parse;
use freephish_urlparse::Url;
use freephish_webgen::FwbKind;
use std::collections::HashMap;

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1ea);

    // Walk every FWB phishing snapshot the way the paper walked its dataset.
    let mut no_cred = 0usize;
    let mut total = 0usize;
    let mut per_fwb: HashMap<(FwbKind, EvasionVector), usize> = HashMap::new();
    let mut fwb_totals: HashMap<FwbKind, usize> = HashMap::new();
    let mut iframe_total = 0usize;
    let mut sp_driveby_ms = 0usize;
    let mut sp_driveby = 0usize;

    for r in &m.records {
        let RecordClass::FwbPhish(fwb) = r.class else {
            continue;
        };
        total += 1;
        *fwb_totals.entry(fwb).or_default() += 1;
        let Some(id) = m.world.host(fwb).site_by_url(&r.url) else {
            continue;
        };
        let site = m.world.host(fwb).site(id);
        let doc = parse(&site.site.html);
        let url = Url::parse(&r.url).expect("campaign urls parse");
        if lacks_credential_fields(&doc) {
            no_cred += 1;
        }
        if let Some((vector, _target)) = classify_evasion(&url, &doc) {
            *per_fwb.entry((fwb, vector)).or_default() += 1;
            if vector == EvasionVector::IframeEmbed {
                iframe_total += 1;
            }
            if vector == EvasionVector::DriveByDownload && fwb == FwbKind::Sharepoint {
                sp_driveby += 1;
                if matches!(r.brand, Some(1) | Some(21) | Some(22)) {
                    sp_driveby_ms += 1;
                }
            }
        }
    }

    println!(
        "\nSection 5.5 — evasive attack census ({} FWB phishing URLs)\n",
        total
    );
    println!(
        "URLs without credential fields: {no_cred} ({:.1}%)  [paper: 14.2%]\n",
        100.0 * no_cred as f64 / total as f64
    );

    let mut t = TableWriter::new(&["FWB", "URLs", "Two-step", "Iframe", "Drive-by"]);
    let mut json_rows = Vec::new();
    for fwb in [
        FwbKind::GoogleSites,
        FwbKind::Blogspot,
        FwbKind::Sharepoint,
        FwbKind::GoogleForms,
    ] {
        let n = fwb_totals.get(&fwb).copied().unwrap_or(0);
        let g = |v: EvasionVector| per_fwb.get(&(fwb, v)).copied().unwrap_or(0);
        let (ts, ifr, db) = (
            g(EvasionVector::TwoStepLink),
            g(EvasionVector::IframeEmbed),
            g(EvasionVector::DriveByDownload),
        );
        t.row(vec![
            fwb.to_string(),
            n.to_string(),
            format!("{ts} ({:.0}%)", 100.0 * ts as f64 / n.max(1) as f64),
            format!("{ifr} ({:.0}%)", 100.0 * ifr as f64 / n.max(1) as f64),
            format!("{db} ({:.0}%)", 100.0 * db as f64 / n.max(1) as f64),
        ]);
        json_rows.push(serde_json::json!({
            "fwb": fwb.to_string(), "urls": n,
            "two_step": ts, "iframe": ifr, "drive_by": db,
        }));
    }
    t.print();

    let gs_blog_iframes = per_fwb
        .get(&(FwbKind::GoogleSites, EvasionVector::IframeEmbed))
        .copied()
        .unwrap_or(0)
        + per_fwb
            .get(&(FwbKind::Blogspot, EvasionVector::IframeEmbed))
            .copied()
            .unwrap_or(0);
    println!(
        "\nGoogle Sites + Blogspot share of all iframe attacks: {:.0}%  [paper: 62%]",
        100.0 * gs_blog_iframes as f64 / iframe_total.max(1) as f64
    );
    println!(
        "Sharepoint drive-bys spoofing Microsoft/OneDrive/Office365: {:.0}%  [paper: ~63%]",
        100.0 * sp_driveby_ms as f64 / sp_driveby.max(1) as f64
    );

    write_json(
        "evasive",
        &serde_json::json!({
            "experiment": "evasive",
            "scale": scale,
            "total": total,
            "no_credential_fields": no_cred,
            "rows": json_rows,
            "gs_blog_iframe_share": gs_blog_iframes as f64 / iframe_total.max(1) as f64,
        }),
    );
}
