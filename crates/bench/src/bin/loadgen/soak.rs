//! The scale/soak phase: million-site worlds, a ten-million-entry baked
//! index, and a sustained mixed-traffic run with RSS and tail-latency
//! gates. Produces the `scale_world_build`, `mapidx_build`,
//! `mapidx_load_ms`, `soak_rss_peak_mb` and `soak_p999_us` keys of
//! `BENCH_PIPELINE.json`.
//!
//! Four sub-phases, each with its own in-binary gate (a violated gate
//! panics, which fails `bench.sh` under `set -e`):
//!
//! 1. **world build** — stream a [`ScaleWorld`] of
//!    `FREEPHISH_SOAK_SITES` sites (default 1M) in bounded chunks,
//!    sampling RSS between chunks. Gate: resident growth stays under
//!    `FREEPHISH_SOAK_RSS_LIMIT_MB` (default 512) no matter the world
//!    size, proving generation is truly streaming.
//! 2. **bake** — stream `FREEPHISH_SOAK_INDEX` verdicts (default 10M)
//!    through the external-merge [`IndexWriter`] into a snapshot file.
//! 3. **load** — time `SnapshotIndex::open` (best of 3). Gate: a
//!    10M-entry restart must cost at most 100 ms — the whole point of
//!    the mmap format. ~1000 spot lookups then prove bit-identical
//!    scores against the generator.
//! 4. **soak** — serve the baked index through the two-level overlay
//!    (`EventedStoreChecker::open_with_base`) and drive it with mixed
//!    `CHECKN`/`CHECK`/`ADD` traffic for `FREEPHISH_SOAK_SECS` while a
//!    sampler thread tracks RSS and the ops plane measures windowed
//!    tails. Gates: RSS growth bounded by the limit *plus the mapped
//!    baseline's file size* (traffic faults the index in — file-backed,
//!    reclaimable pages the kernel still counts) and a sane p99.9.

use bytes::BytesMut;
use freephish_core::verdictstore::EventedStoreChecker;
use freephish_core::{ScaleWorld, ScaleWorldConfig};
use freephish_mapidx::SnapshotIndex;
use freephish_obs::process_rss_bytes;
use freephish_serve::{
    decode_bin_reply, encode_bin_request, BinReply, BinRequest, EventedServer, OpsServer,
    UrlChecker, Verdict, HANDSHAKE_OK,
};
use freephish_store::testutil::TempDir;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{env_usize, percentile, read_line_buffered, window_gauge, OpsScraper};

fn rss_mb() -> f64 {
    process_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0)
}

/// Background RSS sampler: polls `/proc/self/statm` every 25 ms and
/// remembers the peak, so spikes between chunk boundaries are not missed.
struct RssSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<f64>,
}

impl RssSampler {
    fn start() -> RssSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut peak = rss_mb();
            while !flag.load(Ordering::Relaxed) {
                peak = peak.max(rss_mb());
                std::thread::sleep(Duration::from_millis(25));
            }
            peak.max(rss_mb())
        });
        RssSampler { stop, handle }
    }

    fn finish(self) -> f64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("rss sampler panicked")
    }
}

/// Phase 1: stream the world, watch memory. Returns the JSON record.
fn world_build_phase(sites: u64, rss_limit_mb: f64) -> serde_json::Value {
    let world = ScaleWorld::new(ScaleWorldConfig {
        sites,
        ..ScaleWorldConfig::default()
    });
    let rss0 = rss_mb();
    let t0 = Instant::now();
    let mut peak = rss0;
    let mut url_bytes = 0u64;
    let mut phishing = 0u64;
    for chunk in world.chunks(8192) {
        for site in &chunk {
            url_bytes += site.url.len() as u64;
            phishing += site.phishing as u64;
        }
        peak = peak.max(rss_mb());
    }
    let secs = t0.elapsed().as_secs_f64();
    let growth = peak - rss0;
    // Sampled distribution survey: ~20k sites regardless of world size.
    let stats = world.survey((sites / 20_000).max(1));
    println!(
        "  world build: {sites} sites in {secs:.2}s ({:.0} sites/s), \
         RSS growth {growth:.1} MB, head-10 brand share {:.1}%",
        sites as f64 / secs,
        stats.brand_head_share(10) * 100.0
    );
    assert!(
        growth <= rss_limit_mb,
        "streaming world build must stay under {rss_limit_mb} MB of RSS growth, \
         grew {growth:.1} MB over {sites} sites"
    );
    serde_json::json!({
        "sites": sites,
        "secs": secs,
        "sites_per_sec": sites as f64 / secs,
        "rss_growth_mb": growth,
        "url_bytes": url_bytes,
        "phish_fraction": phishing as f64 / sites.max(1) as f64,
        "brand_head10_share": stats.brand_head_share(10),
    })
}

/// Phases 2+3: bake the index, then time the mmap load and spot-check it.
/// Returns (bake record, load record, best load ms, index path, world).
fn bake_and_load_phase(
    entries: u64,
    out: &std::path::Path,
) -> (serde_json::Value, serde_json::Value, ScaleWorld) {
    let world = ScaleWorld::new(ScaleWorldConfig {
        sites: entries,
        ..ScaleWorldConfig::default()
    });
    let sampler = RssSampler::start();
    let rss0 = rss_mb();
    let t0 = Instant::now();
    let summary = world.bake_index(entries, out).expect("bake scale index");
    let bake_secs = t0.elapsed().as_secs_f64();
    let bake_peak = sampler.finish();
    println!(
        "  bake: {} entries ({:.1} MB) in {bake_secs:.2}s ({:.0} entries/s), \
         {} spill runs, RSS peak {bake_peak:.1} MB",
        summary.entries,
        summary.file_bytes as f64 / (1024.0 * 1024.0),
        entries as f64 / bake_secs,
        summary.spill_runs
    );
    assert_eq!(
        summary.entries, entries,
        "scale world URLs are index-unique; the bake must not dedup any away"
    );
    let bake = serde_json::json!({
        "entries": summary.entries,
        "file_bytes": summary.file_bytes,
        "secs": bake_secs,
        "entries_per_sec": entries as f64 / bake_secs,
        "spill_runs": summary.spill_runs,
        "rss_peak_mb": bake_peak,
        "rss_growth_mb": bake_peak - rss0,
    });

    // Load: best-of-3 opens. The serve-path open is O(1) in file size,
    // so this holds at 10M entries just as it does at 10k.
    let mut best_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let idx = SnapshotIndex::open(out).expect("open baked index");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        assert_eq!(idx.len(), entries);
    }
    assert!(
        best_ms <= 100.0,
        "mmap load of a {entries}-entry index must take <=100ms, took {best_ms:.2}ms"
    );
    // Spot lookups: bit-identical scores straight off the mapping.
    let idx = SnapshotIndex::open(out).expect("reopen baked index");
    let step = (entries / 1000).max(1);
    let mut checked = 0u64;
    let t_probe = Instant::now();
    let mut i = 0;
    while i < entries {
        let (url, score) = world.verdict_at(i);
        let got = idx
            .get(&url)
            .unwrap_or_else(|| panic!("baked entry missing: {url}"));
        assert_eq!(
            got.to_bits(),
            score.to_bits(),
            "bit-identical score for {url}"
        );
        checked += 1;
        i += step;
    }
    let probe_us = t_probe.elapsed().as_micros() as f64 / checked.max(1) as f64;
    println!(
        "  load: best-of-3 open {best_ms:.2} ms, {checked} spot lookups \
         bit-identical ({probe_us:.1} µs/cold probe)"
    );
    let load = serde_json::json!({
        "best_of_3_ms": best_ms,
        "spot_checks": checked,
        "cold_probe_us": probe_us,
    });
    (bake, load, world)
}

struct SoakCounts {
    urls: u64,
    adds: u64,
    frame_lat_us: Vec<u64>,
}

/// One mixed-traffic connection: mostly `CHECKN` frames over the baked
/// world, with periodic single `CHECK`s (verified bit-identical against
/// the generator) and rare durable `ADD`s of never-seen URLs.
fn soak_worker(
    addr: SocketAddr,
    world: Arc<ScaleWorld>,
    stop: Instant,
    tid: usize,
    batch: usize,
) -> SoakCounts {
    let mut stream = TcpStream::connect(addr).expect("soak connect");
    stream.set_nodelay(true).ok();
    stream.write_all(b"BINARY\n").expect("handshake write");
    let mut inbuf = BytesMut::new();
    let handshake = read_line_buffered(&mut stream, &mut inbuf);
    assert_eq!(handshake, HANDSHAKE_OK, "engine refused binary protocol");
    let mut outbuf = BytesMut::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut counts = SoakCounts {
        urls: 0,
        adds: 0,
        frame_lat_us: Vec::new(),
    };
    let mut cursor = (tid as u64).wrapping_mul(0x9E37_79B9) % world.len().max(1);
    let mut frame_no = 0u64;
    while Instant::now() < stop {
        frame_no += 1;
        let request = if frame_no.is_multiple_of(241) {
            // Durable ADD of a never-baked URL: exercises the sidecar
            // fsync + delta-overlay write path under read load.
            counts.adds += 1;
            BinRequest::Add(
                format!("https://soak-add-{tid}-{frame_no}.weebly.com/login"),
                0.91,
            )
        } else if frame_no.is_multiple_of(17) {
            // Single CHECK of a baked URL; the reply is verified below.
            let (url, _) = world.verdict_at(cursor);
            BinRequest::Check(url)
        } else {
            // The bread and butter: a CHECKN frame, 3/4 baked hits and
            // 1/4 never-seen misses so both outcomes stay hot.
            let frame: Vec<String> = (0..batch)
                .map(|k| {
                    let i = cursor + k as u64;
                    if k % 4 == 3 {
                        format!("https://soak-miss-{tid}-{i}.wixsite.com/home")
                    } else {
                        world.verdict_at(i).0
                    }
                })
                .collect();
            BinRequest::CheckN(frame)
        };
        let expect_batch = matches!(request, BinRequest::CheckN(_));
        let t0 = Instant::now();
        outbuf.clear();
        encode_bin_request(&mut outbuf, &request).expect("encode soak frame");
        stream.write_all(&outbuf).expect("soak write");
        loop {
            match decode_bin_reply(&mut inbuf).expect("decode soak reply") {
                Some(BinReply::VerdictN(vs)) => {
                    assert_eq!(vs.len(), batch);
                    counts.urls += batch as u64;
                    break;
                }
                Some(BinReply::Verdict(v)) => {
                    let (url, score) = world.verdict_at(cursor);
                    match v {
                        Verdict::Phishing(s) => assert_eq!(
                            s.to_bits(),
                            score.to_bits(),
                            "baked verdict for {url} must be bit-identical under load"
                        ),
                        other => panic!("baked URL {url} served {other:?}"),
                    }
                    counts.urls += 1;
                    break;
                }
                Some(BinReply::Ok(_)) => break,
                Some(BinReply::Busy) => panic!("soak shed: raise --max-inflight"),
                Some(other) => panic!("unexpected soak reply {other:?}"),
                None => {
                    let n = stream.read(&mut tmp).expect("soak read");
                    assert!(n > 0, "server closed mid-soak");
                    inbuf.extend_from_slice(&tmp[..n]);
                }
            }
        }
        counts.frame_lat_us.push(t0.elapsed().as_micros() as u64);
        if expect_batch {
            cursor = (cursor + batch as u64) % world.len().max(1);
        } else {
            cursor = (cursor + 1) % world.len().max(1);
        }
    }
    counts
}

/// Phase 4: serve the baked index through the overlay and soak it.
fn serve_soak_phase(
    index_path: &std::path::Path,
    world: Arc<ScaleWorld>,
    conns: usize,
    secs: f64,
    batch: usize,
    rss_limit_mb: f64,
) -> (serde_json::Value, f64, i64) {
    let store_dir = TempDir::new("loadgen-soak");
    let index_mb = std::fs::metadata(index_path)
        .expect("stat baked index")
        .len() as f64
        / (1024.0 * 1024.0);
    let checker = Arc::new(
        EventedStoreChecker::open_with_base(store_dir.path(), Some(index_path))
            .expect("open soak checker over baked base"),
    );
    assert_eq!(checker.overlay().base_len(), world.len());
    let mut evented =
        EventedServer::start(checker.clone() as Arc<dyn UrlChecker>).expect("start soak engine");
    let addr = evented.addr();
    let mut ops = OpsServer::start(0, evented.ops_config()).expect("start soak ops plane");
    let scraper = OpsScraper::start(ops.addr(), Duration::from_millis(100));

    let rss0 = rss_mb();
    let sampler = RssSampler::start();
    let start = Instant::now();
    let stop = start + Duration::from_secs_f64(secs);
    let handles: Vec<_> = (0..conns)
        .map(|tid| {
            let world = world.clone();
            std::thread::spawn(move || soak_worker(addr, world, stop, tid, batch))
        })
        .collect();
    let mut urls = 0u64;
    let mut adds = 0u64;
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        let mut c = h.join().expect("soak worker panicked");
        urls += c.urls;
        adds += c.adds;
        lat.append(&mut c.frame_lat_us);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rss_peak = sampler.finish();
    let (_, varz_body) = scraper.finish();
    ops.shutdown();
    evented.shutdown();
    evented.drain(Duration::from_secs(5));

    // Every durable ADD landed in the delta and shadows the base.
    assert_eq!(checker.overlay().delta().len() as u64, adds);

    lat.sort_unstable();
    let client_p999 = percentile(&lat, 0.999);
    let varz: serde_json::Value =
        serde_json::from_str(&varz_body).expect("soak /varz parses as JSON");
    // Server-side rolling p99.9 over the CHECKN window; fall back to the
    // client-side percentile when the window had too few samples.
    let p999_us = window_gauge(&varz, "checkn", "p999").unwrap_or(client_p999 as i64);
    let rss_growth = rss_peak - rss0;
    println!(
        "  soak: {urls} urls over {elapsed:.2}s ({:.0} urls/s), {adds} durable adds, \
         p99.9 {p999_us} µs, RSS peak {rss_peak:.1} MB (+{rss_growth:.1}, \
         {index_mb:.1} MB mapped baseline)",
        urls as f64 / elapsed
    );
    // Traffic spread over the whole key range faults most of the baked
    // file into the mapping — file-backed, reclaimable pages the kernel
    // counts in RSS. The gate budgets *anonymous* growth: the limit rides
    // on top of the mapped baseline's size.
    let allowed = rss_limit_mb + index_mb;
    assert!(
        rss_growth <= allowed,
        "soak serve RSS must stay bounded: grew {rss_growth:.1} MB \
         (limit {rss_limit_mb} MB + {index_mb:.1} MB mapped index)"
    );
    assert!(
        p999_us > 0 && p999_us < 1_000_000,
        "soak p99.9 must be positive and under a second, got {p999_us} µs"
    );
    let record = serde_json::json!({
        "secs": elapsed,
        "connections": conns,
        "checkn_batch": batch,
        "urls": urls,
        "throughput_urls_per_sec": urls as f64 / elapsed,
        "durable_adds": adds,
        "frame_latency": {
            "samples": lat.len(),
            "p50_us": percentile(&lat, 0.50),
            "p99_us": percentile(&lat, 0.99),
            "p999_us": client_p999,
        },
        "server_checkn_p999_us": window_gauge(&varz, "checkn", "p999"),
        "rss_start_mb": rss0,
        "rss_peak_mb": rss_peak,
        "rss_growth_mb": rss_growth,
        "mapped_index_mb": index_mb,
    });
    (record, rss_peak, p999_us)
}

/// Run the whole scale/soak phase; returns the keys to merge into the
/// bench record.
pub fn soak_phase(batch: usize) -> serde_json::Value {
    let sites = env_usize("FREEPHISH_SOAK_SITES", 1_000_000) as u64;
    let index_entries = env_usize("FREEPHISH_SOAK_INDEX", 10_000_000) as u64;
    let secs = env_usize("FREEPHISH_SOAK_SECS", 4) as f64;
    let conns = env_usize("FREEPHISH_SOAK_CONNS", 16);
    let rss_limit_mb = env_usize("FREEPHISH_SOAK_RSS_LIMIT_MB", 512) as f64;
    assert!(
        sites > 0 && index_entries > 0,
        "soak needs a non-empty world"
    );
    println!(
        "loadgen: soak phase ({sites} world sites, {index_entries} baked entries, \
         {conns} connections x {secs}s, CHECKN batch {batch})"
    );

    let world_record = world_build_phase(sites, rss_limit_mb);

    let scratch = TempDir::new("loadgen-soak-bake");
    let index_path = scratch.path().join("scale.mapidx");
    let (bake_record, load_record, index_world) = bake_and_load_phase(index_entries, &index_path);
    let load_ms = load_record["best_of_3_ms"].as_f64().expect("load ms");

    let (soak_record, rss_peak, p999_us) = serve_soak_phase(
        &index_path,
        Arc::new(index_world),
        conns,
        secs,
        batch,
        rss_limit_mb,
    );

    serde_json::json!({
        "scale_world_build": world_record,
        "mapidx_build": bake_record,
        "mapidx_load": load_record,
        "mapidx_load_ms": load_ms,
        "soak": soak_record,
        "soak_rss_peak_mb": rss_peak,
        "soak_p999_us": p999_us,
    })
}
