//! Figure 9: platform (Twitter/Facebook) post-removal coverage over time,
//! FWB vs self-hosted populations.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::analysis::{entity_delay, is_fwb, Entity, CURVE_CHECKPOINT_HOURS};
use freephish_core::campaign::RecordClass;
use freephish_fwbsim::history::Platform;
use freephish_simclock::stats::coverage_curve;

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e9);

    println!("\nFigure 9 — platform post-removal coverage vs time\n");
    let mut headers = vec!["Platform".to_string(), "Population".to_string()];
    headers.extend(CURVE_CHECKPOINT_HOURS.iter().map(|h| format!("{h}h")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new(&header_refs);
    let mut json_rows = Vec::new();
    for platform in Platform::ALL {
        for (label, fwb_pop) in [("FWB", true), ("self-hosted", false)] {
            let delays: Vec<Option<u64>> = m
                .observations
                .iter()
                .filter(|o| o.platform == platform)
                .filter(|o| {
                    if fwb_pop {
                        is_fwb(o)
                    } else {
                        o.class == RecordClass::SelfHostedPhish
                    }
                })
                .map(|o| entity_delay(o, Entity::SocialPlatform))
                .collect();
            let checkpoints: Vec<u64> = CURVE_CHECKPOINT_HOURS.iter().map(|h| h * 3600).collect();
            let curve = coverage_curve(&delays, &checkpoints);
            let mut row = vec![platform.to_string(), label.to_string()];
            row.extend(curve.iter().map(|&(_, f)| format!("{:.0}%", f * 100.0)));
            t.row(row);
            json_rows.push(serde_json::json!({
                "platform": platform.to_string(),
                "population": label,
                "curve": curve.iter().map(|&(s, f)| serde_json::json!([s / 3600, f])).collect::<Vec<_>>(),
            }));
        }
    }
    t.print();
    println!("\nPaper shape: within 3h Twitter/Facebook remove ~10%/6% of FWB posts");
    println!("vs ~32%/47% of self-hosted; at 16h Twitter reaches ~70% self-hosted");
    println!("but only ~21% FWB.");

    write_json(
        "fig9",
        &serde_json::json!({ "experiment": "fig9", "scale": scale, "series": json_rows }),
    );
}
