//! A from-scratch URL parser and lexical-analysis toolkit.
//!
//! The FreePhish pipeline classifies URLs shared on social media; its
//! StackModel-derived feature set needs structural access (scheme, host,
//! registrable domain, subdomain labels, path, query) and lexical signals
//! (suspicious characters, sensitive vocabulary, embedded brand names,
//! IP-literal hosts). Nothing here touches the network: a [`Url`] is a pure
//! value parsed from a string.
//!
//! The parser accepts the pragmatic subset of RFC 3986 that appears in
//! social-media posts: `scheme://host[:port][/path][?query][#fragment]`,
//! plus scheme-less strings (`example.com/login`) which are common in tweet
//! bodies and are normalised to `http`.
//!
//! ```
//! use freephish_urlparse::Url;
//!
//! let url = Url::parse("https://victim-login.weebly.com/verify?id=7").unwrap();
//! assert!(url.is_https());
//! assert_eq!(url.host().registrable_domain().as_deref(), Some("weebly.com"));
//! assert_eq!(url.host().subdomain().as_deref(), Some("victim-login"));
//! assert_eq!(url.path(), "/verify");
//! ```

pub mod host;
pub mod legacy;
pub mod lexical;
pub mod parse;
pub mod swar;

pub use host::{Host, SuffixClass};
pub use lexical::{best_brand_match_in, prepare_brands, token_iter, BrandCatalog, UrlTokens};
pub use parse::{ParseError, Url};

/// Extract every URL-looking token from free text (a post body). This is the
/// regular-expression step of the paper's streaming module, implemented as a
/// hand-rolled scanner so the substrate stays dependency-free.
///
/// ```
/// let found = freephish_urlparse::extract_urls(
///     "urgent!! verify at https://evil.weebly.com/login today",
/// );
/// assert_eq!(found, vec!["https://evil.weebly.com/login"]);
/// ```
pub fn extract_urls(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Candidate start: "http://" or "https://" at a token boundary.
        let rest = &text[i..];
        let is_scheme = rest.starts_with("http://") || rest.starts_with("https://");
        let at_boundary = i == 0 || !bytes[i - 1].is_ascii_alphanumeric();
        if is_scheme && at_boundary {
            let end = rest
                .char_indices()
                .find(|&(_, c)| !c.is_ascii() || !is_url_char(c as u8))
                .map(|(j, _)| j)
                .unwrap_or(rest.len());
            let mut candidate = &rest[..end];
            // Trim trailing punctuation that belongs to the sentence.
            candidate =
                candidate.trim_end_matches(['.', ',', ')', ']', '!', '?', ';', ':', '\'', '"']);
            // A bare scheme ("https://") is not a URL: require a host part.
            let authority = candidate
                .strip_prefix("https://")
                .or_else(|| candidate.strip_prefix("http://"))
                .unwrap_or("");
            if !authority.is_empty() {
                out.push(candidate.to_string());
            }
            i += end.max(1);
        } else {
            // Advance one full character (text may be non-ASCII).
            i += rest.chars().next().map(|c| c.len_utf8()).unwrap_or(1);
        }
    }
    out
}

fn is_url_char(b: u8) -> bool {
    matches!(b,
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
        | b'-' | b'.' | b'_' | b'~' | b':' | b'/' | b'?' | b'#'
        | b'@' | b'!' | b'$' | b'&' | b'*' | b'+' | b',' | b';' | b'=' | b'%')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_plain_http_url() {
        let urls = extract_urls("check this out http://evil.weebly.com/login now");
        assert_eq!(urls, vec!["http://evil.weebly.com/login"]);
    }

    #[test]
    fn extracts_multiple_and_trims_punctuation() {
        let urls =
            extract_urls("see https://a.wixsite.com/x, and (https://b.000webhostapp.com/y)!");
        assert_eq!(
            urls,
            vec!["https://a.wixsite.com/x", "https://b.000webhostapp.com/y"]
        );
    }

    #[test]
    fn ignores_text_without_urls() {
        assert!(extract_urls("no links here, just vibes").is_empty());
    }

    #[test]
    fn mid_word_scheme_not_extracted() {
        // "xhttp://..." is not at a token boundary.
        let urls = extract_urls("weirdxhttp://nope.com");
        assert!(urls.is_empty());
    }

    #[test]
    fn unicode_text_around_urls() {
        let urls = extract_urls("ver esto 👉 https://sitio.weebly.com/banco 👈 ya");
        assert_eq!(urls, vec!["https://sitio.weebly.com/banco"]);
    }

    #[test]
    fn url_at_start_and_end_of_text() {
        let urls = extract_urls("https://x.weebly.com/a middle https://y.weebly.com/b");
        assert_eq!(urls.len(), 2);
    }
}
