//! Figure 5: the most-targeted organisations among the FWB phishing
//! population (109 unique brands across the six-month measurement).

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::analysis::{brand_distribution, unique_brands};

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e5);
    let dist = brand_distribution(&m.observations, 20);
    let uniq = unique_brands(&m.observations);

    println!("\nFigure 5 — most-targeted organisations ({uniq} unique brands observed)\n");
    let mut t = TableWriter::new(&["Rank", "Brand", "URLs", "Share"]);
    let total: usize = dist.iter().map(|&(_, c)| c).sum();
    for (i, (name, count)) in dist.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            name.to_string(),
            count.to_string(),
            format!("{:.1}%", 100.0 * *count as f64 / total as f64),
        ]);
    }
    t.print();
    println!("\nPaper shape: a Zipf head — Facebook, Microsoft, Netflix and other");
    println!("consumer platforms dominate; ~109 brands appear overall.");

    write_json(
        "fig5",
        &serde_json::json!({
            "experiment": "fig5",
            "unique_brands": uniq,
            "top": dist.iter().map(|(n, c)| serde_json::json!({"brand": n, "count": c})).collect::<Vec<_>>(),
        }),
    );
}
