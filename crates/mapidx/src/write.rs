//! The external-merge writer: bake millions of `(url, score)` entries
//! into the immutable index format without ever materializing the full
//! map in memory.
//!
//! Entries accumulate in a bounded in-memory run; when the run exceeds
//! its byte budget it is sorted by `(hash, key, seq)` and spilled to a
//! temporary run file. [`IndexWriter::finish`] k-way-merges the spilled
//! runs plus the in-memory remainder with a binary heap, deduplicates by
//! keeping the **highest sequence number** per key (journal semantics:
//! the latest append wins), and streams records + key heap to temporary
//! section files while counting bucket occupancy. The final file is then
//! composed (header, records, heap, prefix-summed bucket table) with the
//! body checksum folded in during the copy, fsynced, and published with
//! an atomic rename — a reader either sees the old index or the complete
//! new one, never a torn bake.
//!
//! Peak memory is `max_run_bytes` for the run plus 4 bytes per bucket for
//! the occupancy counts — versus the hundreds of bytes per entry a
//! `HashMap<String, f64>` costs.

use crate::format::{bucket_of, key_hash, BodySum, Header, HEADER_LEN};
use freephish_store::segment::scan_buffer;
use freephish_store::tail::TailCursor;
use freephish_store::TailFollower;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default in-memory run budget before a spill (approximate bytes).
pub const DEFAULT_RUN_BYTES: usize = 64 * 1024 * 1024;

/// What one bake produced.
#[derive(Debug, Clone)]
pub struct BakeSummary {
    /// Deduplicated entries in the final index.
    pub entries: u64,
    /// Final file size in bytes.
    pub file_bytes: u64,
    /// Runs spilled to disk during the build (0 = fit in memory).
    pub spill_runs: usize,
    /// The journal position the bake drained to, if baked from a journal.
    pub cursor: Option<TailCursor>,
}

struct Entry {
    hash: u64,
    seq: u64,
    score: f64,
    key: String,
}

impl Entry {
    fn approx_bytes(&self) -> usize {
        self.key.len() + 40
    }
}

/// One source feeding the k-way merge, yielding entries in
/// `(hash, key, seq)` order.
enum RunSource {
    Mem(std::vec::IntoIter<Entry>),
    File { rdr: BufReader<File>, left: u64 },
}

impl RunSource {
    fn next(&mut self) -> io::Result<Option<Entry>> {
        match self {
            RunSource::Mem(it) => Ok(it.next()),
            RunSource::File { rdr, left } => {
                if *left == 0 {
                    return Ok(None);
                }
                *left -= 1;
                let mut fixed = [0u8; 28];
                rdr.read_exact(&mut fixed)?;
                let hash = u64::from_le_bytes(fixed[0..8].try_into().unwrap());
                let seq = u64::from_le_bytes(fixed[8..16].try_into().unwrap());
                let score = f64::from_bits(u64::from_le_bytes(fixed[16..24].try_into().unwrap()));
                let key_len = u32::from_le_bytes(fixed[24..28].try_into().unwrap()) as usize;
                let mut key = vec![0u8; key_len];
                rdr.read_exact(&mut key)?;
                let key = String::from_utf8(key).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 spill key")
                })?;
                Ok(Some(Entry {
                    hash,
                    seq,
                    score,
                    key,
                }))
            }
        }
    }
}

/// Min-heap item: ordered so the smallest `(hash, key, seq)` pops first.
struct HeapItem {
    entry: Entry,
    src: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        let a = (&self.entry.hash, &self.entry.key, self.entry.seq, self.src);
        let b = (
            &other.entry.hash,
            &other.entry.key,
            other.entry.seq,
            other.src,
        );
        b.cmp(&a)
    }
}

/// Streaming builder for one index file.
pub struct IndexWriter {
    spill_dir: PathBuf,
    run: Vec<Entry>,
    run_bytes: usize,
    max_run_bytes: usize,
    runs: Vec<PathBuf>,
    run_counts: Vec<u64>,
    seq: u64,
    total_added: u64,
    cursor: Option<TailCursor>,
}

impl IndexWriter {
    /// Create a writer spilling oversized runs into `spill_dir` (created
    /// if missing; temporary files are removed by [`IndexWriter::finish`]).
    pub fn create(spill_dir: impl AsRef<Path>) -> io::Result<IndexWriter> {
        IndexWriter::with_run_bytes(spill_dir, DEFAULT_RUN_BYTES)
    }

    /// Create with an explicit in-memory run budget (tests use tiny
    /// budgets to force multi-run merges).
    pub fn with_run_bytes(
        spill_dir: impl AsRef<Path>,
        max_run_bytes: usize,
    ) -> io::Result<IndexWriter> {
        let spill_dir = spill_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&spill_dir)?;
        Ok(IndexWriter {
            spill_dir,
            run: Vec::new(),
            run_bytes: 0,
            max_run_bytes: max_run_bytes.max(1),
            runs: Vec::new(),
            run_counts: Vec::new(),
            seq: 0,
            total_added: 0,
            cursor: None,
        })
    }

    /// Record the journal position this bake covers; stored in the header
    /// so a restarting consumer can resume its tail follower there.
    pub fn set_cursor(&mut self, cursor: Option<TailCursor>) {
        self.cursor = cursor;
    }

    /// Add one entry. Later adds of the same URL shadow earlier ones,
    /// exactly like journal replay.
    pub fn add(&mut self, url: &str, score: f64) -> io::Result<()> {
        let entry = Entry {
            hash: key_hash(url.as_bytes()),
            seq: self.seq,
            score,
            key: url.to_string(),
        };
        self.seq += 1;
        self.total_added += 1;
        self.run_bytes += entry.approx_bytes();
        self.run.push(entry);
        if self.run_bytes >= self.max_run_bytes {
            self.spill()?;
        }
        Ok(())
    }

    fn sort_run(run: &mut [Entry]) {
        run.sort_unstable_by(|a, b| (a.hash, &a.key, a.seq).cmp(&(b.hash, &b.key, b.seq)));
    }

    fn spill(&mut self) -> io::Result<()> {
        Self::sort_run(&mut self.run);
        let path = self
            .spill_dir
            .join(format!("run-{:05}.tmp", self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for e in &self.run {
            w.write_all(&e.hash.to_le_bytes())?;
            w.write_all(&e.seq.to_le_bytes())?;
            w.write_all(&e.score.to_bits().to_le_bytes())?;
            w.write_all(&(e.key.len() as u32).to_le_bytes())?;
            w.write_all(e.key.as_bytes())?;
        }
        w.flush()?;
        self.runs.push(path);
        self.run_counts.push(self.run.len() as u64);
        self.run.clear();
        self.run_bytes = 0;
        Ok(())
    }

    /// Merge, deduplicate, and atomically publish the index at `out_path`.
    pub fn finish(mut self, out_path: impl AsRef<Path>) -> io::Result<BakeSummary> {
        let out_path = out_path.as_ref();
        Self::sort_run(&mut self.run);
        // Bucket count from the pre-dedup total: an upper bound, so the
        // table can only be sparser than load factor 1. Never zero.
        let bucket_count = self.total_added.next_power_of_two().clamp(1, 1 << 31);

        let mut sources: Vec<RunSource> = Vec::with_capacity(self.runs.len() + 1);
        for (path, &count) in self.runs.iter().zip(&self.run_counts) {
            sources.push(RunSource::File {
                rdr: BufReader::with_capacity(1 << 20, File::open(path)?),
                left: count,
            });
        }
        sources.push(RunSource::Mem(std::mem::take(&mut self.run).into_iter()));

        let mut heap = BinaryHeap::new();
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(entry) = src.next()? {
                heap.push(HeapItem { entry, src: i });
            }
        }

        let rec_path = self.spill_dir.join("records.tmp");
        let heap_path = self.spill_dir.join("keyheap.tmp");
        let mut rec_w = BufWriter::with_capacity(1 << 20, File::create(&rec_path)?);
        let mut heap_w = BufWriter::with_capacity(1 << 20, File::create(&heap_path)?);
        let mut counts: Vec<u32> = vec![0; bucket_count as usize];
        let mut entries: u64 = 0;
        let mut heap_len: u64 = 0;

        while let Some(top) = heap.pop() {
            let HeapItem { entry, src } = top;
            if let Some(next) = sources[src].next()? {
                heap.push(HeapItem { entry: next, src });
            }
            let mut winner = entry;
            // Drain every other copy of this key; highest seq wins.
            while let Some(peek) = heap.peek() {
                if peek.entry.hash != winner.hash || peek.entry.key != winner.key {
                    break;
                }
                let dup = heap.pop().unwrap();
                if let Some(next) = sources[dup.src].next()? {
                    heap.push(HeapItem {
                        entry: next,
                        src: dup.src,
                    });
                }
                if dup.entry.seq > winner.seq {
                    winner = dup.entry;
                }
            }
            if heap_len + winner.key.len() as u64 > u32::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key heap exceeds 4 GiB (u32 offsets)",
                ));
            }
            rec_w.write_all(&winner.hash.to_le_bytes())?;
            rec_w.write_all(&(heap_len as u32).to_le_bytes())?;
            rec_w.write_all(&(winner.key.len() as u32).to_le_bytes())?;
            rec_w.write_all(&winner.score.to_bits().to_le_bytes())?;
            heap_w.write_all(winner.key.as_bytes())?;
            heap_len += winner.key.len() as u64;
            counts[bucket_of(winner.hash, bucket_count) as usize] += 1;
            entries += 1;
        }
        rec_w.flush()?;
        heap_w.flush()?;
        drop(rec_w);
        drop(heap_w);
        if entries >= u32::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "entry count exceeds u32 offsets",
            ));
        }

        // Compose the final file: placeholder header, records, heap,
        // prefix-summed bucket table; checksum folded in during the copy.
        let tmp_path = out_path.with_extension("mapidx.tmp");
        let mut out = BufWriter::with_capacity(1 << 20, File::create(&tmp_path)?);
        out.write_all(&[0u8; HEADER_LEN])?;
        let mut sum = BodySum::new();
        for path in [&rec_path, &heap_path] {
            let mut rdr = BufReader::with_capacity(1 << 20, File::open(path)?);
            let mut chunk = vec![0u8; 1 << 20];
            loop {
                let n = rdr.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                sum.update(&chunk[..n]);
                out.write_all(&chunk[..n])?;
            }
        }
        let mut running: u32 = 0;
        let mut bucket_bytes = Vec::with_capacity((counts.len() + 1) * 4);
        bucket_bytes.extend_from_slice(&running.to_le_bytes());
        for c in &counts {
            running += c;
            bucket_bytes.extend_from_slice(&running.to_le_bytes());
        }
        sum.update(&bucket_bytes);
        out.write_all(&bucket_bytes)?;
        out.flush()?;
        let mut file = out.into_inner().map_err(|e| e.into_error())?;

        let header = Header {
            entry_count: entries,
            bucket_count,
            keyheap_len: heap_len,
            cursor: self.cursor,
            body_sum: sum.finish(),
            total_len: file.stream_position()?,
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp_path, out_path)?;
        if let Some(parent) = out_path.parent() {
            if let Ok(d) = File::open(parent) {
                let _ = d.sync_all();
            }
        }
        let _ = std::fs::remove_file(&rec_path);
        let _ = std::fs::remove_file(&heap_path);
        let spill_runs = self.runs.len();
        for path in &self.runs {
            let _ = std::fs::remove_file(path);
        }
        Ok(BakeSummary {
            entries,
            file_bytes: header.total_len,
            spill_runs,
            cursor: self.cursor,
        })
    }
}

/// Bake the full durable state of a store journal into `out_path`,
/// streaming through `decode` (the same payload-decoder contract the
/// serve layer's `IndexPublisher` uses) and recording the drained journal
/// cursor in the header. Spill files live under `<out_path>.spill` and
/// are removed on success.
pub fn bake_journal<F>(
    store_dir: impl AsRef<Path>,
    out_path: impl AsRef<Path>,
    mut decode: F,
) -> io::Result<BakeSummary>
where
    F: FnMut(&[u8]) -> io::Result<Option<(String, f64)>>,
{
    let out_path = out_path.as_ref();
    let spill_dir = out_path.with_extension("spill");
    let mut writer = IndexWriter::create(&spill_dir)?;
    let mut follower = TailFollower::new(store_dir.as_ref());
    loop {
        let batch = follower.poll()?;
        if batch.is_empty() {
            break;
        }
        if let Some(snapshot) = &batch.snapshot {
            let (frames, torn) = scan_buffer(snapshot);
            if torn.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal snapshot framing is corrupt",
                ));
            }
            for frame in frames {
                if let Some((url, score)) = decode(&frame)? {
                    writer.add(&url, score)?;
                }
            }
        }
        for payload in &batch.records {
            if let Some((url, score)) = decode(payload)? {
                writer.add(&url, score)?;
            }
        }
    }
    writer.set_cursor(follower.cursor());
    let summary = writer.finish(out_path)?;
    let _ = std::fs::remove_dir_all(&spill_dir);
    Ok(summary)
}
