//! # freephish-serve
//!
//! The event-driven verdict-serving subsystem: what the paper's FreePhish
//! browser extension talks to, rebuilt for browser-fleet scale.
//!
//! At millions of users, verdict serving is a high-fanout, read-mostly
//! lookup workload, and the seed's thread-per-connection server pays a
//! thread wakeup plus a syscall round-trip per `CHECK`. This crate
//! replaces that with the classic serving skeleton — the same one an
//! inference server needs:
//!
//! * [`server`] — [`EventedServer`]: N fixed worker threads running
//!   nonblocking `poll(2)` readiness loops over connection state
//!   machines, with microbatched request execution, bounded write
//!   buffers, a global in-flight budget, and explicit `BUSY` load
//!   shedding instead of unbounded queues.
//! * [`proto`] — both wire protocols on one port: the seed's line
//!   protocol and a length-prefixed binary protocol whose `CHECKN` frame
//!   carries up to 256 URLs ([`proto::MAX_BATCH`]) per round trip.
//! * [`index`] — [`ShardedIndex`]: the RCU-style generation-swapped read
//!   path. Readers snapshot `Arc`s once per batch; [`IndexPublisher`]
//!   tails a `freephish-store` journal and publishes new generations
//!   without ever blocking a reader.
//! * [`overlay`] — [`OverlayIndex`]: the two-level read path for
//!   million-entry nodes. An immutable mmap baseline (`freephish-mapidx`)
//!   under the live delta; journaled entries shadow baked ones
//!   bit-identically, and a background re-bake swaps the baseline without
//!   pausing reads.
//! * [`verdict`] — [`Verdict`] and the [`UrlChecker`] trait (moved down
//!   from `freephish-core`, which re-exports them), now with a batched
//!   [`UrlChecker::check_many`] entry point.
//! * [`ops`] — [`OpsServer`]: the scrape plane on its own port.
//!   `/metrics` (Prometheus text), `/varz` (JSON), `/healthz`, `/readyz`,
//!   `/events`, and `/traces/slow`, fed by engine-supplied [`OpsConfig`]
//!   hooks so both serving engines mount the identical surface.
//!
//! Every decision the admission-control path takes is observable through
//! `freephish-obs` as `serve_*` metrics: queue depth, batch sizes, shed
//! counts, and service-time quantiles.

pub mod index;
pub mod ops;
pub mod overlay;
pub mod proto;
pub mod server;
pub mod sys;
pub mod verdict;

pub use index::{IndexPublisher, IndexSnapshot, PayloadDecoder, ShardedIndex};
pub use ops::{http_get, OpsConfig, OpsServer, Readiness};
pub use overlay::OverlayIndex;
pub use proto::{
    decode_bin_reply, decode_bin_request, decode_request, decode_verdict, encode_bin_reply,
    encode_bin_request, encode_verdict, BinReply, BinRequest, Request, HANDSHAKE_LINE,
    HANDSHAKE_OK, MAX_BATCH,
};
pub use server::{EventedServer, ServeConfig};
pub use verdict::{UrlChecker, Verdict};
