//! The end-to-end measurement run shared by the Section 5 experiments.

use freephish_core::analysis::{self, UrlObservation};
use freephish_core::campaign::{self, CampaignConfig, CampaignRecord};
use freephish_core::groundtruth::{build, GroundTruthConfig};
use freephish_core::models::augmented::AugmentedStackModel;
use freephish_core::pipeline::reporting::Reporter;
use freephish_core::pipeline::{Detection, Pipeline};
use freephish_core::world::World;
use freephish_ml::StackModelConfig;
use freephish_simclock::{Rng64, SimTime};

/// Everything a Section 5 experiment needs.
pub struct Measurement {
    /// The simulated world after the campaign + pipeline ran.
    pub world: World,
    /// All injected URLs.
    pub records: Vec<CampaignRecord>,
    /// The pipeline's detections.
    pub detections: Vec<Detection>,
    /// Reporting-module tallies (Section 5.3).
    pub reporter: Reporter,
    /// Analysis-module per-URL observations.
    pub observations: Vec<UrlObservation>,
    /// The scale the run used.
    pub scale: f64,
}

/// Read the workload scale from `FREEPHISH_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("FREEPHISH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Ground-truth size scaled: the paper's 4,656+4,656 at scale 1.0, floored
/// so tiny scales still train something meaningful.
fn ground_truth_config(scale: f64) -> GroundTruthConfig {
    let n = ((4656.0 * scale) as usize).max(400);
    GroundTruthConfig {
        n_phish: n,
        n_benign: n,
        seed: 0xD1,
    }
}

/// Stacking configuration: the paper's three-learner stack; trimmed tree
/// counts keep the full-scale run tractable without changing the
/// architecture.
pub fn stack_config() -> StackModelConfig {
    StackModelConfig::default()
}

/// Run the whole measurement: train the classifier on the ground-truth
/// corpus, generate the campaign, run streaming/classification/reporting
/// over the full window, then observe with the analysis module.
pub fn full_measurement(scale: f64, seed: u64) -> Measurement {
    let mut rng = Rng64::new(seed);
    eprintln!("[harness] training classifier (scale {scale}) ...");
    let corpus = build(&ground_truth_config(scale.min(0.25)));
    let model = AugmentedStackModel::train(&corpus, &stack_config(), &mut rng);

    eprintln!("[harness] generating campaign ...");
    let mut world = World::new(seed);
    let config = CampaignConfig {
        scale,
        days: 180,
        benign_fraction: 0.2,
        seed,
    };
    let records = campaign::run(&config, &mut world);
    eprintln!("[harness] {} URLs injected; running pipeline ...", records.len());

    let pipeline = Pipeline::new(model);
    let (detections, reporter) = pipeline.run_batch(&mut world, SimTime::from_days(config.days));
    eprintln!("[harness] {} detections; observing ...", detections.len());

    let observations = analysis::observe(&world, &records);
    Measurement {
        world,
        records,
        detections,
        reporter,
        observations,
        scale,
    }
}

/// Write an experiment's JSON record under `target/experiments/`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()) {
        Ok(()) => eprintln!("[harness] wrote {}", path.display()),
        Err(e) => eprintln!("[harness] could not write {}: {e}", path.display()),
    }
}
