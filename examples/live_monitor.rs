//! Live monitor: the full five-module FreePhish pipeline running over a
//! simulated week of social-media traffic, printing detections and abuse
//! reports as its ten-minute polling loop discovers them.
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use freephish::core::campaign::{self, CampaignConfig, RecordClass};
use freephish::core::groundtruth::{build, GroundTruthConfig};
use freephish::core::models::augmented::AugmentedStackModel;
use freephish::core::pipeline::Pipeline;
use freephish::core::world::World;
use freephish::ml::StackModelConfig;
use freephish::simclock::{Rng64, SimTime};

fn main() {
    println!("== FreePhish live monitor (simulated week) ==\n");

    // Train the classifier.
    println!("[setup] training classifier ...");
    let corpus = build(&GroundTruthConfig {
        n_phish: 500,
        n_benign: 500,
        seed: 3,
    });
    let mut rng = Rng64::new(9);
    let model = AugmentedStackModel::train(&corpus, &StackModelConfig::tiny(), &mut rng);

    // Spin up the world and inject a week of traffic.
    println!("[setup] generating one week of simulated social-media traffic ...");
    let mut world = World::new(77);
    let config = CampaignConfig {
        scale: 0.004,
        days: 7,
        benign_fraction: 0.5,
        seed: 77,
    };
    let records = campaign::run(&config, &mut world);
    let phish_in = records
        .iter()
        .filter(|r| matches!(r.class, RecordClass::FwbPhish(_)))
        .count();
    let benign_in = records
        .iter()
        .filter(|r| matches!(r.class, RecordClass::BenignFwb(_)))
        .count();
    println!(
        "[setup] injected {} posts ({} FWB phishing, {} benign FWB, rest self-hosted)\n",
        records.len(),
        phish_in,
        benign_in
    );

    // Run streaming → preprocessing → classification → reporting.
    let pipeline = Pipeline::new(model);
    let (detections, reporter) = pipeline.run_batch(&mut world, SimTime::from_days(7));

    println!("[stream] pipeline observed and classified the week's FWB URLs:\n");
    for d in detections.iter().take(12) {
        println!(
            "  {} detected {:<46} on {:<9} (score {:.2}) -> reported to {}",
            d.observed_at,
            d.url,
            d.platform.to_string(),
            d.score,
            d.fwb
        );
    }
    if detections.len() > 12 {
        println!("  ... and {} more", detections.len() - 12);
    }

    println!("\n[report] per-FWB responses to our abuse reports (Section 5.3):");
    for (fwb, stats) in reporter.all_stats() {
        if stats.filed == 0 {
            continue;
        }
        println!(
            "  {:<14} filed {:>4}  acked {:>4}  removed {:>4}  accounts terminated {:>3}",
            fwb.to_string(),
            stats.filed,
            stats.acknowledged,
            stats.removed,
            stats.accounts_terminated
        );
    }

    let recall = detections.len() as f64 / phish_in as f64;
    println!(
        "\n[summary] detected {}/{} injected FWB phishing URLs ({:.0}%).",
        detections.len(),
        phish_in,
        (recall * 100.0).min(100.0)
    );

    // The pipeline's own instrument panel, in Prometheus exposition format.
    println!("\n[metrics] pipeline metrics for the week:\n");
    for line in freephish::obs::to_prometheus(&pipeline.metrics()).lines() {
        // The full histogram bucket series is long; show the totals.
        if !line.contains("_bucket") {
            println!("  {line}");
        }
    }
}
