//! The PhishIntention-style baseline: layout + credential intention +
//! dynamic analysis.
//!
//! PhishIntention (Liu et al. 2022) combines brand recognition, credential-
//! taking intention detection, and *dynamic* analysis of the page's
//! interaction flow. That last part is what lets it catch evasive attacks
//! the static models miss (the paper notes it is the only baseline that
//! recognises two-step link-outs), and also what makes it an order of
//! magnitude slower per URL (Table 2: 11.3 s median vs 1.9–2.8 s for the
//! rest).
//!
//! The reproduction follows the same architecture: a static pass (brand
//! evidence + credential intention + banner/noindex forensics), then a
//! dynamic pass that fetches and analyses every link and iframe target up
//! to a budget, looking for credential harvesting one hop away.

use super::{PageFetcher, PhishDetector};
use freephish_htmlparse::{parse, Document};
use freephish_urlparse::lexical::{best_brand_match, BrandMatch};
use freephish_urlparse::Url;
use freephish_webgen::brands::{brand_tokens, BRANDS};

/// How many outbound targets the dynamic pass will fetch per page.
const DYNAMIC_FETCH_BUDGET: usize = 8;

/// The PhishIntention-style detector. Rule-based with calibrated evidence
/// weights; no training phase (the original ships pretrained vision
/// models — here the "pretraining" is the brand catalog).
pub struct IntentionStyle;

/// Brand evidence, the way a logo/headline recogniser sees it: page title,
/// image alt text and headings — *not* body prose, where benign sites
/// routinely mention brands ("follow us on Facebook").
fn page_brand_evidence(doc: &Document) -> Option<&'static str> {
    let mut hay = doc.title().unwrap_or_default();
    for e in doc.elements_by_tag("img") {
        if let Some(alt) = e.attr("alt") {
            hay.push(' ');
            hay.push_str(alt);
        }
    }
    for tag in ["h1", "h2"] {
        for e in doc.elements_by_tag(tag) {
            hay.push(' ');
            hay.push_str(&doc.text_of(e.id));
        }
    }
    crate::features::text_mentions_brand(&hay).map(|b| b.token)
}

/// Does `url`'s registrable domain belong to the brand itself?
fn domain_is_brand(url: &Url, brand_token: &str) -> bool {
    url.host()
        .registrable_domain()
        .map(|d| d.contains(brand_token))
        .unwrap_or(false)
}

/// Absolute outbound targets (links + iframes) of a page.
fn outbound_targets(doc: &Document) -> Vec<String> {
    let mut out: Vec<String> = doc
        .links()
        .iter()
        .filter(|h| h.starts_with("http://") || h.starts_with("https://"))
        .map(|h| h.to_string())
        .collect();
    for f in doc.iframes() {
        if let Some(src) = f.attr("src") {
            if src.starts_with("http") {
                out.push(src.to_string());
            }
        }
    }
    out
}

impl IntentionStyle {
    /// Create the detector.
    pub fn new() -> IntentionStyle {
        IntentionStyle
    }

    /// Static evidence score in [0, 1].
    fn static_score(&self, url: &Url, doc: &Document) -> f64 {
        let mut score: f64 = 0.0;

        let brand = page_brand_evidence(doc);
        let url_brand = best_brand_match(url, &brand_tokens());

        // Credential intention on a brand page not hosted by the brand: the
        // canonical phishing signature.
        let has_credentials = !doc.credential_inputs().is_empty() || doc.has_login_form();
        if let Some(b) = brand {
            if !domain_is_brand(url, b) {
                score += if has_credentials { 0.75 } else { 0.25 };
            }
        } else if has_credentials {
            // Credential fields with no recognisable brand: mildly odd.
            score += 0.2;
        }

        // URL impersonation (exact/misspelled brand token in a non-brand
        // domain).
        if let Some((i, m)) = url_brand {
            if !domain_is_brand(url, BRANDS[i].token) {
                score += match m {
                    BrandMatch::Exact | BrandMatch::Misspelled => 0.2,
                    BrandMatch::Embedded => 0.1,
                    BrandMatch::None => 0.0,
                };
            }
        }

        // Forensic tells: hidden banner, noindex, meta refresh, download
        // bait.
        if crate::features::has_obfuscated_banner(doc) {
            score += 0.15;
        }
        if doc.has_noindex_meta() {
            score += 0.1;
        }
        let has_refresh = doc.elements_by_tag("meta").iter().any(|m| {
            m.attr("http-equiv")
                .map(|h| h.eq_ignore_ascii_case("refresh"))
                .unwrap_or(false)
        });
        let has_download = doc
            .elements()
            .iter()
            .any(|e| e.tag == "a" && e.attr("download").is_some());
        if has_refresh && has_download {
            score += 0.5; // drive-by pattern
        }
        score.min(1.0)
    }

    /// Dynamic pass: fetch outbound targets; credential harvesting one hop
    /// away (or an unreachable lone call-to-action) is evasive-phishing
    /// evidence.
    fn dynamic_score(&self, url: &Url, doc: &Document, fetcher: &dyn PageFetcher) -> f64 {
        let targets = outbound_targets(doc);
        let own = url.host().registrable_domain().unwrap_or_default();
        let mut score: f64 = 0.0;
        let mut external_unreachable = 0usize;
        let mut external_total = 0usize;

        for t in targets.iter().take(DYNAMIC_FETCH_BUDGET) {
            let Ok(target_url) = Url::parse(t) else {
                continue;
            };
            let external = target_url
                .host()
                .registrable_domain()
                .map(|d| d != own)
                .unwrap_or(true);
            if !external {
                continue;
            }
            external_total += 1;
            match fetcher.fetch(t) {
                Some(html) => {
                    let linked = parse(&html);
                    if linked.has_login_form() || !linked.credential_inputs().is_empty() {
                        // Two-step / iframe harvesting confirmed.
                        score += 0.8;
                    }
                }
                None => external_unreachable += 1,
            }
        }

        // A page whose dominant interactive content is an external
        // call-to-action to an untrusted domain that cannot be resolved is
        // the two-step shape even when the target is down.
        let cta = crate::evasion::external_cta_candidates(url, doc);
        let interactive = doc.links().len() + doc.inputs().len();
        if !cta.is_empty()
            && external_unreachable == external_total
            && external_total > 0
            && interactive <= 8
            && (page_brand_evidence(doc).is_some() || crate::evasion::has_lure_language(doc))
        {
            score += 0.45;
        }
        score.min(1.0)
    }
}

impl Default for IntentionStyle {
    fn default() -> Self {
        Self::new()
    }
}

impl PhishDetector for IntentionStyle {
    fn name(&self) -> &'static str {
        "PhishIntention"
    }

    fn score(&self, url: &str, html: &str, fetcher: &dyn PageFetcher) -> f64 {
        let Ok(parsed) = Url::parse(url) else {
            return 0.5;
        };
        let doc = parse(html);
        let s = self.static_score(&parsed, &doc);
        let d = self.dynamic_score(&parsed, &doc, fetcher);
        // Independent evidence combination.
        1.0 - (1.0 - s) * (1.0 - d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::NoFetch;
    use freephish_webgen::{FwbKind, PageKind, PageSpec};
    use std::collections::HashMap;

    struct MapFetcher(HashMap<String, String>);
    impl PageFetcher for MapFetcher {
        fn fetch(&self, url: &str) -> Option<String> {
            self.0.get(url).cloned()
        }
    }

    fn gen(kind: PageKind) -> freephish_webgen::GeneratedSite {
        PageSpec {
            fwb: FwbKind::GoogleSites,
            kind,
            site_name: "intent-test".into(),
            noindex: false,
            obfuscate_banner: false,
            seed: 11,
        }
        .generate()
    }

    #[test]
    fn credential_phish_scores_high() {
        let site = gen(PageKind::CredentialPhish { brand: 4 });
        let m = IntentionStyle::new();
        let s = m.score(&site.url, &site.html, &NoFetch);
        assert!(s > 0.7, "score={s}");
    }

    #[test]
    fn benign_page_scores_low() {
        let site = gen(PageKind::Benign { topic: 2 });
        let m = IntentionStyle::new();
        let s = m.score(&site.url, &site.html, &NoFetch);
        assert!(s < 0.5, "score={s}");
    }

    #[test]
    fn twostep_caught_via_dynamic_fetch() {
        let target = "https://evil-harvest.top/login".to_string();
        let site = gen(PageKind::TwoStep {
            brand: 1,
            target_url: target.clone(),
        });
        // The linked page harvests credentials.
        let mut map = HashMap::new();
        map.insert(
            target,
            r#"<html><body><form><input type="password"></form></body></html>"#.to_string(),
        );
        let m = IntentionStyle::new();
        let s = m.score(&site.url, &site.html, &MapFetcher(map));
        assert!(s > 0.7, "score={s}");
    }

    #[test]
    fn twostep_still_suspicious_when_target_down() {
        let site = gen(PageKind::TwoStep {
            brand: 1,
            target_url: "https://gone.top/login".into(),
        });
        let m = IntentionStyle::new();
        let s = m.score(&site.url, &site.html, &NoFetch);
        assert!(s > 0.5, "score={s}");
    }

    #[test]
    fn driveby_pattern_detected() {
        let site = gen(PageKind::DriveBy {
            brand: 1,
            payload_url: "https://cdn.click/x.iso".into(),
        });
        let m = IntentionStyle::new();
        let s = m.score(&site.url, &site.html, &NoFetch);
        assert!(s > 0.5, "score={s}");
    }

    #[test]
    fn brand_on_own_domain_is_fine() {
        // A PayPal-looking login on paypal.com itself must not fire.
        let html = r#"<html><head><title>PayPal — Sign In</title></head>
            <body><h1>Sign in to PayPal</h1>
            <form><input type="email"><input type="password"></form></body></html>"#;
        let m = IntentionStyle::new();
        let s = m.score("https://www.paypal.com/signin", html, &NoFetch);
        assert!(s < 0.5, "score={s}");
    }

    #[test]
    fn unparseable_url_neutral() {
        let m = IntentionStyle::new();
        assert_eq!(m.score(":::", "<p>x</p>", &NoFetch), 0.5);
    }
}
