//! Read-side tailing of a store directory owned by another writer.
//!
//! A [`TailFollower`] incrementally delivers records as the writer flushes
//! them, surviving segment rotation and snapshot compaction. It never
//! writes to the directory.
//!
//! ## Delivery semantics
//!
//! * The first successful poll delivers the latest valid snapshot payload
//!   (if any), then records.
//! * A partial frame at the end of the active segment means the writer is
//!   mid-append (or crashed mid-append): the follower waits; it never
//!   truncates another writer's file.
//! * If compaction deletes the segment the follower was reading, it
//!   reloads from the newest snapshot and **redelivers** it — consumers
//!   must apply snapshots and records idempotently (the verdict checker's
//!   map insert is).
//! * A full frame with a bad checksum is genuine corruption: the follower
//!   poisons itself and every subsequent poll errors.

use crate::segment::parse_segment_name;
use crate::segment::{scan_segment, segment_file_name, Torn, SEGMENT_HEADER_LEN};
use crate::snapshot::{load_snapshot, parse_snapshot_name, snapshot_file_name};
use crate::store::list_indexed;
use std::io;
use std::path::{Path, PathBuf};

/// What one poll produced.
#[derive(Debug, Default)]
pub struct TailBatch {
    /// A snapshot payload to apply before `records` (first poll, or
    /// redelivery after compaction overtook the follower).
    pub snapshot: Option<Vec<u8>>,
    /// New record payloads, in append order.
    pub records: Vec<Vec<u8>>,
}

impl TailBatch {
    /// True when the poll found nothing new.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.records.is_empty()
    }
}

/// A resumable position in a store directory: which snapshot the reader
/// has applied, and how far into which segment it has consumed.
///
/// Produced by [`TailFollower::cursor`] and persisted by consumers (the
/// baked-index header stamps one) so a restarting process can
/// [`TailFollower::resume`] instead of replaying from the snapshot. If
/// compaction has deleted the cursor's segment by resume time, the
/// follower degrades safely to the normal reinitialize-from-snapshot
/// path (a redelivery, which consumers already apply idempotently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailCursor {
    /// The newest snapshot sequence applied, if any.
    pub snapshot_seq: Option<u32>,
    /// The segment being consumed, if the follower had reached one.
    pub segment: Option<u32>,
    /// Byte offset of the next unread frame within `segment` (at least
    /// the segment header length).
    pub offset: u64,
}

/// Incremental reader over a store directory written by someone else.
#[derive(Debug)]
pub struct TailFollower {
    dir: PathBuf,
    initialized: bool,
    snapshot_seq: Option<u32>,
    segment: Option<u32>,
    offset: u64,
    poisoned: bool,
}

impl TailFollower {
    /// Follow `dir`. No I/O happens until [`TailFollower::poll`]; the
    /// directory does not need to exist yet.
    pub fn new(dir: impl AsRef<Path>) -> TailFollower {
        TailFollower {
            dir: dir.as_ref().to_path_buf(),
            initialized: false,
            snapshot_seq: None,
            segment: None,
            offset: SEGMENT_HEADER_LEN,
            poisoned: false,
        }
    }

    /// Resume following `dir` from a previously captured [`TailCursor`]:
    /// the first poll delivers only records past the cursor, with no
    /// snapshot redelivery — unless compaction has since deleted the
    /// cursor's segment, in which case the follower falls back to the
    /// usual snapshot-reload path.
    pub fn resume(dir: impl AsRef<Path>, cursor: TailCursor) -> TailFollower {
        TailFollower {
            dir: dir.as_ref().to_path_buf(),
            initialized: true,
            snapshot_seq: cursor.snapshot_seq,
            segment: cursor.segment,
            offset: cursor.offset.max(SEGMENT_HEADER_LEN),
            poisoned: false,
        }
    }

    /// The directory being followed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current consumption position, or `None` before the first
    /// successful poll (an uninitialized follower has no position worth
    /// persisting).
    pub fn cursor(&self) -> Option<TailCursor> {
        if !self.initialized || self.poisoned {
            return None;
        }
        Some(TailCursor {
            snapshot_seq: self.snapshot_seq,
            segment: self.segment,
            offset: self.offset,
        })
    }

    /// Deliver everything new since the last poll.
    pub fn poll(&mut self) -> io::Result<TailBatch> {
        if self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tail follower poisoned by earlier corruption",
            ));
        }
        let mut batch = TailBatch::default();
        if !self.dir.exists() {
            return Ok(batch);
        }
        let segments = list_indexed(&self.dir, parse_segment_name)?;
        let snapshots = list_indexed(&self.dir, parse_snapshot_name)?;

        // (Re)initialize from the newest valid snapshot on first poll, or
        // when compaction deleted the segment we were reading.
        let current_gone = match self.segment {
            Some(s) => !self.dir.join(segment_file_name(s)).exists(),
            None => false,
        };
        if !self.initialized || current_gone {
            let mut seq = None;
            let mut payload = None;
            for &s in snapshots.iter().rev() {
                if let Some(p) = load_snapshot(&self.dir.join(snapshot_file_name(s)), s)? {
                    seq = Some(s);
                    payload = Some(p);
                    break;
                }
            }
            batch.snapshot = payload;
            self.snapshot_seq = seq;
            self.segment = None;
            self.offset = SEGMENT_HEADER_LEN;
            self.initialized = true;
        }

        if self.segment.is_none() {
            self.segment = segments
                .iter()
                .copied()
                .find(|&i| self.snapshot_seq.is_none_or(|s| i > s));
            self.offset = SEGMENT_HEADER_LEN;
        }

        while let Some(seg) = self.segment {
            let path = self.dir.join(segment_file_name(seg));
            let scan = match scan_segment(&path) {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Compaction raced us; reinitialize next poll.
                    self.initialized = false;
                    break;
                }
                Err(e) => return Err(e),
            };
            if !scan.header_ok {
                // The writer has created the file but not yet written the
                // header; wait. If a later segment already exists the
                // header can never complete — that is corruption.
                if segments.iter().any(|&i| i > seg) {
                    self.poisoned = true;
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("segment {seg} has an invalid header"),
                    ));
                }
                break;
            }
            for rec in scan.records {
                if rec.end_offset > self.offset {
                    batch.records.push(rec.payload);
                }
            }
            if scan.good_len > self.offset {
                self.offset = scan.good_len;
            }
            match scan.torn {
                // Writer mid-append (or a crashed writer whose recovery
                // will truncate): wait, never consume past it.
                Some(Torn::PartialFrame) => break,
                Some(t) => {
                    self.poisoned = true;
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("segment {seg} corrupt: {t}"),
                    ));
                }
                None => match segments.iter().copied().find(|&i| i > seg) {
                    Some(next) => {
                        self.segment = Some(next);
                        self.offset = SEGMENT_HEADER_LEN;
                    }
                    None => break,
                },
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions};
    use crate::testutil::TempDir;

    fn opts(max: u64) -> StoreOptions {
        StoreOptions {
            segment_max_bytes: max,
            sync_every_append: false,
        }
    }

    #[test]
    fn missing_dir_yields_empty_batches() {
        let dir = TempDir::new("tail-missing");
        let mut f = TailFollower::new(dir.path().join("nothing-here"));
        assert!(f.poll().unwrap().is_empty());
        assert!(f.poll().unwrap().is_empty());
    }

    #[test]
    fn follows_appends_across_polls_and_rotations() {
        let dir = TempDir::new("tail-follow");
        let (mut store, _) = Store::open_with(dir.path(), opts(128), None).unwrap();
        let mut follower = TailFollower::new(dir.path());

        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        store.flush().unwrap();
        let b1 = follower.poll().unwrap();
        assert_eq!(b1.records, vec![b"one".to_vec(), b"two".to_vec()]);

        // Nothing new: empty batch.
        assert!(follower.poll().unwrap().is_empty());

        // Push past the rotation threshold.
        for i in 0..20 {
            store.append(format!("rec-{i:02}").as_bytes()).unwrap();
        }
        store.flush().unwrap();
        assert!(store.position().segment > 0, "should have rotated");
        let b2 = follower.poll().unwrap();
        assert_eq!(b2.records.len(), 20);
        assert_eq!(b2.records[0], b"rec-00");
        assert_eq!(b2.records[19], b"rec-19");
    }

    #[test]
    fn unflushed_records_are_invisible() {
        let dir = TempDir::new("tail-unflushed");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        let mut follower = TailFollower::new(dir.path());
        store.append(b"buffered").unwrap();
        assert!(follower.poll().unwrap().is_empty());
        store.flush().unwrap();
        assert_eq!(follower.poll().unwrap().records, vec![b"buffered".to_vec()]);
    }

    #[test]
    fn first_poll_delivers_snapshot_then_tail() {
        let dir = TempDir::new("tail-snapfirst");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        store.append(b"old").unwrap();
        store.snapshot(b"state").unwrap();
        store.append(b"new").unwrap();
        store.flush().unwrap();

        let mut follower = TailFollower::new(dir.path());
        let batch = follower.poll().unwrap();
        assert_eq!(batch.snapshot.as_deref(), Some(&b"state"[..]));
        assert_eq!(batch.records, vec![b"new".to_vec()]);
    }

    #[test]
    fn compaction_overtaking_follower_redelivers_snapshot() {
        let dir = TempDir::new("tail-overtake");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        let mut follower = TailFollower::new(dir.path());

        store.append(b"a").unwrap();
        store.flush().unwrap();
        assert_eq!(follower.poll().unwrap().records, vec![b"a".to_vec()]);

        // Snapshot + compaction deletes segment 0 out from under the
        // follower.
        store.snapshot(b"a-state").unwrap();
        store.append(b"b").unwrap();
        store.flush().unwrap();

        // One poll notices the segment vanished; the next (or same)
        // delivers the snapshot redelivery plus the tail.
        let mut snapshot = None;
        let mut records = Vec::new();
        for _ in 0..3 {
            let batch = follower.poll().unwrap();
            if batch.snapshot.is_some() {
                snapshot = batch.snapshot;
            }
            records.extend(batch.records);
            if !records.is_empty() {
                break;
            }
        }
        assert_eq!(snapshot.as_deref(), Some(&b"a-state"[..]));
        assert_eq!(records, vec![b"b".to_vec()]);
    }

    #[test]
    fn partial_frame_waits_instead_of_erroring() {
        let dir = TempDir::new("tail-partial");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        store.append(b"whole").unwrap();
        store.flush().unwrap();
        // Simulate a torn in-flight append by writing half a frame
        // directly after the good record.
        let seg = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]); // 3 of 8 header bytes
        std::fs::write(&seg, &bytes).unwrap();

        let mut follower = TailFollower::new(dir.path());
        let batch = follower.poll().unwrap();
        assert_eq!(batch.records, vec![b"whole".to_vec()]);
        // Still waiting, not erroring.
        assert!(follower.poll().unwrap().is_empty());
    }

    #[test]
    fn cursor_resume_skips_consumed_records() {
        let dir = TempDir::new("tail-resume");
        let (mut store, _) = Store::open_with(dir.path(), opts(4096), None).unwrap();
        let mut follower = TailFollower::new(dir.path());
        assert_eq!(follower.cursor(), None, "no position before first poll");

        store.append(b"seen-1").unwrap();
        store.append(b"seen-2").unwrap();
        store.flush().unwrap();
        assert_eq!(follower.poll().unwrap().records.len(), 2);
        let cursor = follower.cursor().expect("initialized after poll");
        drop(follower);

        store.append(b"fresh").unwrap();
        store.flush().unwrap();
        let mut resumed = TailFollower::resume(dir.path(), cursor);
        let batch = resumed.poll().unwrap();
        assert!(batch.snapshot.is_none(), "resume does not redeliver");
        assert_eq!(batch.records, vec![b"fresh".to_vec()]);
        assert!(resumed.poll().unwrap().is_empty());
    }

    #[test]
    fn resume_after_compaction_falls_back_to_snapshot() {
        let dir = TempDir::new("tail-resume-compact");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        let mut follower = TailFollower::new(dir.path());
        store.append(b"a").unwrap();
        store.flush().unwrap();
        follower.poll().unwrap();
        let cursor = follower.cursor().unwrap();

        // Compaction deletes the cursor's segment.
        store.snapshot(b"state").unwrap();
        store.append(b"b").unwrap();
        store.flush().unwrap();

        let mut resumed = TailFollower::resume(dir.path(), cursor);
        let mut snapshot = None;
        let mut records = Vec::new();
        for _ in 0..3 {
            let batch = resumed.poll().unwrap();
            if batch.snapshot.is_some() {
                snapshot = batch.snapshot;
            }
            records.extend(batch.records);
            if !records.is_empty() {
                break;
            }
        }
        assert_eq!(snapshot.as_deref(), Some(&b"state"[..]));
        assert_eq!(records, vec![b"b".to_vec()]);
    }

    #[test]
    fn full_frame_corruption_poisons() {
        let dir = TempDir::new("tail-poison");
        let (mut store, _) = Store::open(dir.path()).unwrap();
        store.append(b"aaaa").unwrap();
        store.append(b"bbbb").unwrap();
        store.flush().unwrap();
        let seg = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();

        let mut follower = TailFollower::new(dir.path());
        assert!(follower.poll().is_err());
        assert!(follower.poll().is_err(), "stays poisoned");
    }
}
