//! The analysis module: longitudinal measurement of every anti-phishing
//! entity (Section 4.4 / Section 5).
//!
//! For each URL the framework tracks, the module records — on the same
//! ten-minute polling grid the paper used — when each of the four
//! blocklists listed it, when the hosting provider removed it, when the
//! platform deleted the carrying post, and the VirusTotal detection count
//! at daily checkpoints. Aggregators then compute the paper's two key
//! indicators, *coverage* (fraction handled within the observation window)
//! and *response time* (first-seen → action), sliced exactly the way the
//! paper's tables and figures slice them.
//!
//! Implementation note: rather than simulating every individual poll, the
//! oracle timestamps are quantized *up* to the next grid point
//! ([`crate::pipeline::quantize_to_poll`]) — mathematically identical to
//! polling every ten minutes, at a fraction of the cost.

use crate::campaign::{CampaignRecord, RecordClass};
use crate::pipeline::quantize_to_poll;
use crate::world::World;
use freephish_ecosim::BlocklistKind;
use freephish_fwbsim::history::Platform;
use freephish_fwbsim::SiteState;
use freephish_simclock::stats::{coverage_curve, median_u64};
use freephish_simclock::{SimDuration, SimTime};
use freephish_webgen::{FwbKind, BRANDS};

/// Observation window for blocklists and platforms (Table 3: "within one
/// week").
pub const WEEK_SECS: u64 = 7 * 86_400;
/// Observation window for hosting-domain removal (Section 5.3: "after two
/// weeks").
pub const TWO_WEEKS_SECS: u64 = 14 * 86_400;

/// Everything the analysis module observed about one URL.
#[derive(Debug, Clone)]
pub struct UrlObservation {
    /// The URL.
    pub url: String,
    /// What it is.
    pub class: RecordClass,
    /// Platform it appeared on.
    pub platform: Platform,
    /// Spoofed brand index, if phishing.
    pub brand: Option<usize>,
    /// First appearance (post time).
    pub first_seen: SimTime,
    /// Listing delays (seconds from first_seen, poll-quantized), indexed by
    /// [`BlocklistKind::ALL`] order.
    pub blocklist_delay: [Option<u64>; 4],
    /// Hosting takedown delay.
    pub host_removal_delay: Option<u64>,
    /// Platform post-deletion delay.
    pub post_deletion_delay: Option<u64>,
    /// VT detection counts at 1..=7 days after first seen (index 0 = day 1).
    pub vt_daily_counts: [usize; 7],
}

fn delay_from(first_seen: SimTime, event: Option<SimTime>) -> Option<u64> {
    event.map(|at| (quantize_to_poll(at) - first_seen).as_secs())
}

/// Build observations for every *phishing* record (benign background posts
/// are not part of the Section 5 measurement).
pub fn observe(world: &World, records: &[CampaignRecord]) -> Vec<UrlObservation> {
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        let (host_removed, is_phish) = match r.class {
            RecordClass::FwbPhish(fwb) => {
                let site = world
                    .host(fwb)
                    .site(r.site_id.expect("fwb record has site"));
                let removed = match site.state {
                    SiteState::Removed(at) => Some(at),
                    SiteState::Active => None,
                };
                (removed, true)
            }
            RecordClass::SelfHostedPhish => (
                world.self_hosted.sites()[r.self_idx.expect("self-hosted idx")].removed_at,
                true,
            ),
            RecordClass::BenignFwb(_) => (None, false),
        };
        if !is_phish {
            continue;
        }
        let mut blocklist_delay = [None; 4];
        for (i, kind) in BlocklistKind::ALL.iter().enumerate() {
            blocklist_delay[i] =
                delay_from(r.posted_at, world.blocklist(*kind).listing_time(&r.url));
        }
        let post_deletion = world
            .feed(r.platform)
            .post(r.post)
            .and_then(|p| p.deleted_at);
        let mut vt_daily_counts = [0usize; 7];
        for (d, slot) in vt_daily_counts.iter_mut().enumerate() {
            *slot = world
                .virustotal
                .scan(&r.url, r.posted_at + SimDuration::from_days(d as u64 + 1));
        }
        out.push(UrlObservation {
            url: r.url.clone(),
            class: r.class,
            platform: r.platform,
            brand: r.brand,
            first_seen: r.posted_at,
            blocklist_delay,
            host_removal_delay: delay_from(r.posted_at, host_removed),
            post_deletion_delay: delay_from(r.posted_at, post_deletion),
            vt_daily_counts,
        });
    }
    out
}

/// Coverage + response-time summary for one (entity, population) cell of
/// Table 3 / Table 4.
#[derive(Debug, Clone, Copy)]
pub struct CoverageStat {
    /// Population size.
    pub n: usize,
    /// URLs covered within the window.
    pub covered: usize,
    /// covered / n (0 when n = 0).
    pub coverage: f64,
    /// Fastest response among covered URLs.
    pub min: Option<SimDuration>,
    /// Slowest response among covered URLs.
    pub max: Option<SimDuration>,
    /// Median response among covered URLs.
    pub median: Option<SimDuration>,
}

/// Compute a [`CoverageStat`] from per-URL delays, counting only events
/// inside `window_secs`.
pub fn coverage_stat(delays: &[Option<u64>], window_secs: u64) -> CoverageStat {
    let covered: Vec<u64> = delays
        .iter()
        .filter_map(|d| *d)
        .filter(|&d| d <= window_secs)
        .collect();
    CoverageStat {
        n: delays.len(),
        covered: covered.len(),
        coverage: if delays.is_empty() {
            0.0
        } else {
            covered.len() as f64 / delays.len() as f64
        },
        min: covered.iter().min().map(|&s| SimDuration::from_secs(s)),
        max: covered.iter().max().map(|&s| SimDuration::from_secs(s)),
        median: median_u64(&covered).map(SimDuration::from_secs),
    }
}

/// The measured entities, in Table 3 row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// One of the four blocklists.
    Blocklist(BlocklistKind),
    /// The social platform's post deletion.
    SocialPlatform,
    /// The hosting provider's site removal.
    HostingDomain,
}

impl Entity {
    /// Table 3's six rows.
    pub const ALL: [Entity; 6] = [
        Entity::Blocklist(BlocklistKind::PhishTank),
        Entity::Blocklist(BlocklistKind::OpenPhish),
        Entity::Blocklist(BlocklistKind::Gsb),
        Entity::Blocklist(BlocklistKind::EcrimeX),
        Entity::SocialPlatform,
        Entity::HostingDomain,
    ];

    /// Row label as printed in Table 3.
    pub fn label(&self) -> String {
        match self {
            Entity::Blocklist(k) => k.to_string(),
            Entity::SocialPlatform => "Social media Platform".to_string(),
            Entity::HostingDomain => "Hosting domain".to_string(),
        }
    }

    /// Observation window for this entity.
    pub fn window_secs(&self) -> u64 {
        match self {
            Entity::HostingDomain => TWO_WEEKS_SECS,
            _ => WEEK_SECS,
        }
    }
}

/// Pull one entity's delay for an observation.
pub fn entity_delay(obs: &UrlObservation, entity: Entity) -> Option<u64> {
    match entity {
        Entity::Blocklist(kind) => {
            let i = BlocklistKind::ALL.iter().position(|k| *k == kind).unwrap();
            obs.blocklist_delay[i]
        }
        Entity::SocialPlatform => obs.post_deletion_delay,
        Entity::HostingDomain => obs.host_removal_delay,
    }
}

/// Is this observation FWB-hosted phishing?
pub fn is_fwb(obs: &UrlObservation) -> bool {
    matches!(obs.class, RecordClass::FwbPhish(_))
}

/// One Table 3 row: an entity's performance on both populations.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Entity label.
    pub entity: Entity,
    /// Performance on FWB phishing.
    pub fwb: CoverageStat,
    /// Performance on self-hosted phishing.
    pub self_hosted: CoverageStat,
}

/// Reproduce Table 3.
pub fn table3(observations: &[UrlObservation]) -> Vec<Table3Row> {
    Entity::ALL
        .iter()
        .map(|&entity| {
            let fwb_delays: Vec<Option<u64>> = observations
                .iter()
                .filter(|o| is_fwb(o))
                .map(|o| entity_delay(o, entity))
                .collect();
            let sh_delays: Vec<Option<u64>> = observations
                .iter()
                .filter(|o| o.class == RecordClass::SelfHostedPhish)
                .map(|o| entity_delay(o, entity))
                .collect();
            Table3Row {
                entity,
                fwb: coverage_stat(&fwb_delays, entity.window_secs()),
                self_hosted: coverage_stat(&sh_delays, entity.window_secs()),
            }
        })
        .collect()
}

/// One Table 4 row: per-FWB performance of all six countermeasures.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The service.
    pub fwb: FwbKind,
    /// URLs measured on this service.
    pub urls: usize,
    /// Hosting-domain removal.
    pub domain: CoverageStat,
    /// Platform post deletion.
    pub platform: CoverageStat,
    /// PhishTank listing.
    pub phishtank: CoverageStat,
    /// OpenPhish listing.
    pub openphish: CoverageStat,
    /// GSB listing.
    pub gsb: CoverageStat,
    /// eCrimeX listing.
    pub ecrimex: CoverageStat,
}

/// Reproduce Table 4.
pub fn table4(observations: &[UrlObservation]) -> Vec<Table4Row> {
    FwbKind::all()
        .map(|fwb| {
            let per: Vec<&UrlObservation> = observations
                .iter()
                .filter(|o| o.class == RecordClass::FwbPhish(fwb))
                .collect();
            let stat = |entity: Entity| {
                let delays: Vec<Option<u64>> =
                    per.iter().map(|o| entity_delay(o, entity)).collect();
                coverage_stat(&delays, entity.window_secs())
            };
            Table4Row {
                fwb,
                urls: per.len(),
                domain: stat(Entity::HostingDomain),
                platform: stat(Entity::SocialPlatform),
                phishtank: stat(Entity::Blocklist(BlocklistKind::PhishTank)),
                openphish: stat(Entity::Blocklist(BlocklistKind::OpenPhish)),
                gsb: stat(Entity::Blocklist(BlocklistKind::Gsb)),
                ecrimex: stat(Entity::Blocklist(BlocklistKind::EcrimeX)),
            }
        })
        .collect()
}

/// Checkpoints (hours) used by the Figure 6 / Figure 9 coverage curves.
pub const CURVE_CHECKPOINT_HOURS: [u64; 10] = [3, 6, 12, 16, 24, 48, 72, 96, 120, 168];

/// Coverage-vs-time curve of one entity over one population.
/// Returns (hours, fraction-covered) pairs.
pub fn entity_curve(
    observations: &[UrlObservation],
    entity: Entity,
    fwb_population: bool,
) -> Vec<(u64, f64)> {
    let delays: Vec<Option<u64>> = observations
        .iter()
        .filter(|o| {
            if fwb_population {
                is_fwb(o)
            } else {
                o.class == RecordClass::SelfHostedPhish
            }
        })
        .map(|o| entity_delay(o, entity))
        .collect();
    let checkpoints: Vec<u64> = CURVE_CHECKPOINT_HOURS.iter().map(|h| h * 3600).collect();
    coverage_curve(&delays, &checkpoints)
        .into_iter()
        .map(|(s, f)| (s / 3600, f))
        .collect()
}

/// Figure 7: detection-count distribution after one week. Returns, for each
/// possible count `k` in `ks`, the fraction of the population with at most
/// `k` detections (an ECDF over counts).
pub fn vt_week_cdf(
    observations: &[UrlObservation],
    fwb_population: bool,
    platform: Option<Platform>,
    ks: &[usize],
) -> Vec<(usize, f64)> {
    let pop: Vec<&UrlObservation> = observations
        .iter()
        .filter(|o| {
            (if fwb_population {
                is_fwb(o)
            } else {
                o.class == RecordClass::SelfHostedPhish
            }) && platform.map(|p| o.platform == p).unwrap_or(true)
        })
        .collect();
    if pop.is_empty() {
        return ks.iter().map(|&k| (k, 0.0)).collect();
    }
    ks.iter()
        .map(|&k| {
            let n = pop.iter().filter(|o| o.vt_daily_counts[6] <= k).count();
            (k, n as f64 / pop.len() as f64)
        })
        .collect()
}

/// Figure 8: per-day fraction of a population with at most `k` detections,
/// for days 1..=7.
pub fn vt_daily_at_most(
    observations: &[UrlObservation],
    fwb_population: bool,
    platform: Platform,
    k: usize,
) -> Vec<(u64, f64)> {
    let pop: Vec<&UrlObservation> = observations
        .iter()
        .filter(|o| {
            (if fwb_population {
                is_fwb(o)
            } else {
                o.class == RecordClass::SelfHostedPhish
            }) && o.platform == platform
        })
        .collect();
    (0..7)
        .map(|d| {
            let frac = if pop.is_empty() {
                0.0
            } else {
                pop.iter().filter(|o| o.vt_daily_counts[d] <= k).count() as f64 / pop.len() as f64
            };
            (d as u64 + 1, frac)
        })
        .collect()
}

/// Figure 5: brand frequency among FWB phishing, most-targeted first.
/// Returns (brand name, count) limited to `top_n`.
pub fn brand_distribution(
    observations: &[UrlObservation],
    top_n: usize,
) -> Vec<(&'static str, usize)> {
    let mut counts = vec![0usize; BRANDS.len()];
    for o in observations.iter().filter(|o| is_fwb(o)) {
        if let Some(b) = o.brand {
            counts[b] += 1;
        }
    }
    let mut pairs: Vec<(usize, usize)> = counts.into_iter().enumerate().collect();
    pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    pairs
        .into_iter()
        .take(top_n)
        .filter(|&(_, c)| c > 0)
        .map(|(i, c)| (BRANDS[i].name, c))
        .collect()
}

/// Site-uptime summary: how long attacks stay reachable before their host
/// removes them (the paper's "resist takedowns for extended periods").
#[derive(Debug, Clone, Copy)]
pub struct LifetimeStats {
    /// Population size.
    pub n: usize,
    /// Attacks still alive at the end of the observation window.
    pub survived: usize,
    /// Fraction still alive.
    pub survival_rate: f64,
    /// Median uptime among removed attacks.
    pub median_uptime: Option<SimDuration>,
}

/// Compute uptime statistics for one population within `window_secs`.
pub fn lifetime_stats(
    observations: &[UrlObservation],
    fwb_population: bool,
    window_secs: u64,
) -> LifetimeStats {
    let delays: Vec<Option<u64>> = observations
        .iter()
        .filter(|o| {
            if fwb_population {
                is_fwb(o)
            } else {
                o.class == RecordClass::SelfHostedPhish
            }
        })
        .map(|o| o.host_removal_delay.filter(|&d| d <= window_secs))
        .collect();
    let removed: Vec<u64> = delays.iter().filter_map(|d| *d).collect();
    let n = delays.len();
    LifetimeStats {
        n,
        survived: n - removed.len(),
        survival_rate: if n == 0 {
            0.0
        } else {
            (n - removed.len()) as f64 / n as f64
        },
        median_uptime: median_u64(&removed).map(SimDuration::from_secs),
    }
}

/// Number of unique brands targeted across the FWB population.
pub fn unique_brands(observations: &[UrlObservation]) -> usize {
    let mut seen = vec![false; BRANDS.len()];
    for o in observations.iter().filter(|o| is_fwb(o)) {
        if let Some(b) = o.brand {
            seen[b] = true;
        }
    }
    seen.iter().filter(|&&s| s).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{self, CampaignConfig};

    fn measured() -> Vec<UrlObservation> {
        let mut world = World::new(7);
        let records = campaign::run(
            &CampaignConfig {
                scale: 0.05,
                days: 60,
                benign_fraction: 0.1,
                seed: 7,
            },
            &mut world,
        );
        // Drive host-takedown fates: report every FWB phishing URL shortly
        // after posting (the full pipeline does this; for the analysis unit
        // tests we file reports directly).
        let mut reporter = crate::pipeline::reporting::Reporter::new();
        let to_report: Vec<(FwbKind, String, SimTime)> = records
            .iter()
            .filter_map(|r| match r.class {
                RecordClass::FwbPhish(f) => Some((f, r.url.clone(), quantize_to_poll(r.posted_at))),
                _ => None,
            })
            .collect();
        for (f, url, at) in to_report {
            reporter.report(&mut world, f, &url, at);
        }
        observe(&world, &records)
    }

    #[test]
    fn observations_exclude_benign() {
        let obs = measured();
        assert!(obs
            .iter()
            .all(|o| !matches!(o.class, RecordClass::BenignFwb(_))));
        let fwb = obs.iter().filter(|o| is_fwb(o)).count();
        let sh = obs
            .iter()
            .filter(|o| o.class == RecordClass::SelfHostedPhish)
            .count();
        assert_eq!(fwb, sh);
        assert!(fwb > 1000);
    }

    #[test]
    fn table3_shape_matches_paper() {
        let obs = measured();
        for row in table3(&obs) {
            // The paper's headline: every entity handles self-hosted
            // phishing better and faster than FWB phishing.
            assert!(
                row.self_hosted.coverage > row.fwb.coverage,
                "{}: fwb {} vs self {}",
                row.entity.label(),
                row.fwb.coverage,
                row.self_hosted.coverage
            );
            // Median response direction. Exemption: for HostingDomain the
            // paper's own tables conflict — Table 4's per-FWB medians
            // (Weebly 1:39, 000webhost 0:45, together half the covered
            // URLs) imply a *fast* FWB aggregate, while Table 3 prints
            // 9:43. We calibrate to Table 4, so only the coverage contrast
            // is asserted for that entity (see EXPERIMENTS.md).
            if row.entity != Entity::HostingDomain {
                if let (Some(f), Some(s)) = (row.fwb.median, row.self_hosted.median) {
                    assert!(
                        f.as_secs() > s.as_secs(),
                        "{}: fwb median {} vs self {}",
                        row.entity.label(),
                        f,
                        s
                    );
                }
            }
        }
        // GSB beats PhishTank on both populations.
        let rows = table3(&obs);
        assert!(rows[2].fwb.coverage > rows[0].fwb.coverage);
        assert!(rows[2].self_hosted.coverage > rows[0].self_hosted.coverage);
    }

    #[test]
    fn table4_row_counts_track_table() {
        let obs = measured();
        let rows = table4(&obs);
        assert_eq!(rows.len(), 17);
        let weebly = rows.iter().find(|r| r.fwb == FwbKind::Weebly).unwrap();
        let hpage = rows.iter().find(|r| r.fwb == FwbKind::Hpage).unwrap();
        assert!(weebly.urls > hpage.urls * 20);
        // Weebly's removal rate ≫ Google Sites (Table 4).
        let gs = rows.iter().find(|r| r.fwb == FwbKind::GoogleSites).unwrap();
        assert!(weebly.domain.coverage > gs.domain.coverage * 3.0);
        // PhishTank has no coverage for GoDaddySites / hpage.
        let gd = rows
            .iter()
            .find(|r| r.fwb == FwbKind::GoDaddySites)
            .unwrap();
        assert_eq!(gd.phishtank.covered, 0);
    }

    #[test]
    fn curves_monotone_and_bounded() {
        let obs = measured();
        for entity in Entity::ALL {
            for fwb_pop in [true, false] {
                let curve = entity_curve(&obs, entity, fwb_pop);
                assert_eq!(curve.len(), CURVE_CHECKPOINT_HOURS.len());
                for w in curve.windows(2) {
                    assert!(w[0].1 <= w[1].1);
                }
                assert!(curve.iter().all(|&(_, f)| (0.0..=1.0).contains(&f)));
            }
        }
    }

    #[test]
    fn gsb_curve_fwb_below_self_hosted() {
        let obs = measured();
        let fwb = entity_curve(&obs, Entity::Blocklist(BlocklistKind::Gsb), true);
        let sh = entity_curve(&obs, Entity::Blocklist(BlocklistKind::Gsb), false);
        // At 24h: paper shows ~31% (FWB) vs ~83% (self-hosted).
        let at24 = |c: &[(u64, f64)]| c.iter().find(|&&(h, _)| h == 24).unwrap().1;
        assert!(
            at24(&sh) > at24(&fwb) + 0.2,
            "sh {} fwb {}",
            at24(&sh),
            at24(&fwb)
        );
    }

    #[test]
    fn vt_cdf_fwb_fewer_detections() {
        let obs = measured();
        let ks = [2, 4, 6, 9, 12, 20];
        let fwb = vt_week_cdf(&obs, true, None, &ks);
        let sh = vt_week_cdf(&obs, false, None, &ks);
        // Fraction with <= 4 detections is much larger for FWB.
        assert!(fwb[1].1 > sh[1].1 + 0.25, "fwb {} sh {}", fwb[1].1, sh[1].1);
        // Both CDFs monotone.
        for c in [&fwb, &sh] {
            for w in c.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn vt_daily_two_detection_start() {
        let obs = measured();
        let day1 = vt_daily_at_most(&obs, true, Platform::Twitter, 2);
        // Figure 8: ~75% of FWB Twitter URLs had only 2 detections on day 1.
        assert!(day1[0].1 > 0.55, "day1 frac {}", day1[0].1);
        // By day 7 the at-most-2 fraction shrinks.
        assert!(day1[6].1 < day1[0].1 + 1e-9);
    }

    #[test]
    fn brand_distribution_head_heavy() {
        let obs = measured();
        let dist = brand_distribution(&obs, 10);
        assert!(!dist.is_empty());
        assert_eq!(dist[0].0, "Facebook"); // Zipf head
        assert!(dist[0].1 >= dist.last().unwrap().1);
        let brands = unique_brands(&obs);
        assert!(brands > 60, "unique brands {brands}");
    }

    #[test]
    fn fwb_attacks_survive_far_more() {
        let obs = measured();
        let fwb = lifetime_stats(&obs, true, TWO_WEEKS_SECS);
        let sh = lifetime_stats(&obs, false, TWO_WEEKS_SECS);
        assert!(fwb.n > 0 && sh.n > 0);
        // Table 3: ~71% of FWB attacks survive two weeks vs ~22% of
        // self-hosted.
        assert!(
            fwb.survival_rate > sh.survival_rate + 0.3,
            "fwb {} vs sh {}",
            fwb.survival_rate,
            sh.survival_rate
        );
        assert!(fwb.median_uptime.is_some());
    }

    #[test]
    fn coverage_stat_edges() {
        let s = coverage_stat(&[], WEEK_SECS);
        assert_eq!(s.n, 0);
        assert_eq!(s.coverage, 0.0);
        assert!(s.median.is_none());
        let s2 = coverage_stat(&[Some(100), None, Some(WEEK_SECS + 1)], WEEK_SECS);
        assert_eq!(s2.n, 3);
        assert_eq!(s2.covered, 1); // the out-of-window event does not count
        assert_eq!(s2.min.unwrap().as_secs(), 100);
    }
}
