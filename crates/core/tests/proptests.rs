//! Property tests over the framework layer: the wire protocol, feature
//! extraction, and the evasion heuristics must be total; campaign
//! generation must be deterministic and well-formed.

use bytes::BytesMut;
use freephish_core::evasion::classify_evasion;
use freephish_core::extension::{decode_request, decode_verdict, encode_verdict, Verdict};
use freephish_core::features::{FeatureSet, FeatureVector};
use freephish_htmlparse::parse;
use freephish_urlparse::Url;
use proptest::prelude::*;

proptest! {
    /// The request decoder never panics on arbitrary bytes and always
    /// consumes through the newline when it returns anything.
    #[test]
    fn request_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut buf = BytesMut::from(&data[..]);
        let before = buf.len();
        match decode_request(&mut buf) {
            Ok(None) => prop_assert_eq!(buf.len(), before),
            Ok(Some(_)) | Err(_) => prop_assert!(buf.len() < before || before == 0),
        }
    }

    /// Verdict encode/decode round-trips for all scores.
    #[test]
    fn verdict_round_trip(phish in any::<bool>(), score in 0.0f64..1.0) {
        let v = if phish { Verdict::Phishing(score) } else { Verdict::Safe(score) };
        let decoded = decode_verdict(&encode_verdict(&v)).unwrap();
        match (v, decoded) {
            (Verdict::Phishing(a), Verdict::Phishing(b))
            | (Verdict::Safe(a), Verdict::Safe(b)) => prop_assert!((a - b).abs() < 1e-3),
            _ => prop_assert!(false, "verdict kind flipped"),
        }
    }

    /// The verdict decoder never panics on arbitrary lines.
    #[test]
    fn verdict_decoder_total(s in "\\PC{0,100}") {
        let _ = decode_verdict(&s);
    }

    /// Feature extraction is total on arbitrary HTML and produces finite
    /// values of the declared width.
    #[test]
    fn feature_extraction_total(html in "\\PC{0,400}") {
        let url = Url::parse("https://fuzz.weebly.com/x").unwrap();
        let doc = parse(&html);
        for set in [FeatureSet::Base, FeatureSet::Augmented] {
            let v = FeatureVector::extract(set, &url, &doc);
            prop_assert_eq!(v.values.len(), FeatureVector::width(set));
            prop_assert!(v.values.iter().all(|x| x.is_finite()));
        }
    }

    /// The evasion heuristics are total on arbitrary HTML.
    #[test]
    fn evasion_total(html in "\\PC{0,400}") {
        let url = Url::parse("https://fuzz.blogspot.com/").unwrap();
        let doc = parse(&html);
        let _ = classify_evasion(&url, &doc);
    }

    /// Constructed malicious iframes are always classified; same-domain
    /// iframes never are.
    #[test]
    fn iframe_heuristic_contract(token in "[a-z]{3,10}") {
        let url = Url::parse("https://victim.blogspot.com/").unwrap();
        let evil = parse(&format!(
            r#"<iframe src="https://{token}-attack.icu/f"></iframe><p>notice</p>"#
        ));
        prop_assert!(
            freephish_core::evasion::detect_iframe_embed(&url, &evil).is_some()
        );
        let same = parse(&format!(
            r#"<iframe src="https://{token}.blogspot.com/w"></iframe>"#
        ));
        prop_assert!(freephish_core::evasion::detect_iframe_embed(&url, &same).is_none());
    }
}

#[test]
fn campaign_is_deterministic_and_well_formed() {
    use freephish_core::campaign::{self, CampaignConfig};
    use freephish_core::world::World;
    let cfg = CampaignConfig {
        scale: 0.005,
        days: 10,
        benign_fraction: 0.2,
        seed: 99,
    };
    let mut w1 = World::new(99);
    let mut w2 = World::new(99);
    let a = campaign::run(&cfg, &mut w1);
    let b = campaign::run(&cfg, &mut w2);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.url, y.url);
        assert_eq!(x.posted_at, y.posted_at);
        assert_eq!(x.platform, y.platform);
        // Every record's post exists on its platform and was posted at the
        // recorded time.
        let post = w1.feed(x.platform).post(x.post).expect("post exists");
        assert_eq!(post.posted_at, x.posted_at);
        assert!(post.text.contains(&x.url));
    }
}
