//! ops_smoke: the CI smoke test for the ops plane.
//!
//! Starts an in-process evented engine with the ops plane mounted,
//! pushes a little traffic through both protocols, then GETs every
//! endpoint and asserts the responses are well-formed:
//!
//! * `/healthz` → 200 `ok`
//! * `/readyz` → 200 with `"ready": true` (the index published at start)
//! * `/metrics` → Prometheus text with `# HELP` lines and the
//!   `serve_requests_total` family
//! * `/varz` → JSON with counters/gauges/histograms and the engine tag
//! * `/events` and `/traces/slow` → JSON with the expected top-level keys
//! * an unknown path → 404
//!
//! Exits 0 on success; any malformed response panics (nonzero exit), so
//! `ci.sh` can run this binary as its ops smoke step.

use freephish_core::extension::VerdictClient;
use freephish_serve::{http_get, EventedServer, OpsServer, ShardedIndex};
use std::net::SocketAddr;
use std::sync::Arc;

fn get_ok(addr: SocketAddr, path: &str) -> String {
    let (code, body) = http_get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"));
    assert_eq!(code, 200, "GET {path} returned {code}: {body}");
    body
}

fn main() {
    let index = ShardedIndex::with_default_shards();
    index.publish(vec![("https://evil.weebly.com/login".to_string(), 0.97)]);
    let mut engine = EventedServer::start(Arc::new(index)).expect("start evented engine");
    let mut ops = OpsServer::start(0, engine.ops_config()).expect("start ops plane");
    let addr = ops.addr();

    // A little traffic so the scrape has something to show: a batched
    // CHECKN (binary) and a line-protocol CHECK via the same client.
    let client = VerdictClient::new(engine.addr());
    let urls: Vec<String> = (0..64)
        .map(|i| format!("https://site{i}.wixsite.com/home"))
        .chain(["https://evil.weebly.com/login".to_string()])
        .collect();
    let verdicts = client.check_batch_strict(&urls).expect("CHECKN batch");
    assert!(verdicts.last().unwrap().is_phishing());

    assert_eq!(get_ok(addr, "/healthz").trim(), "ok");

    let readyz = get_ok(addr, "/readyz");
    let ready: serde_json::Value = serde_json::from_str(&readyz).expect("/readyz is JSON");
    assert_eq!(ready["ready"], true, "engine should be ready: {readyz}");

    let metrics = get_ok(addr, "/metrics");
    assert!(metrics.contains("# HELP "), "no HELP lines:\n{metrics}");
    assert!(metrics.contains("# TYPE "), "no TYPE lines:\n{metrics}");
    assert!(
        metrics.contains("serve_requests_total{"),
        "no serve_requests_total family:\n{metrics}"
    );
    assert!(
        metrics.contains("serve_window_latency_us{"),
        "no windowed quantile gauges:\n{metrics}"
    );

    let varz: serde_json::Value =
        serde_json::from_str(&get_ok(addr, "/varz")).expect("/varz is JSON");
    assert_eq!(varz["engine"], "evented");
    for section in ["counters", "gauges", "histograms"] {
        assert!(varz.get(section).is_some(), "/varz missing {section}");
    }

    let events: serde_json::Value =
        serde_json::from_str(&get_ok(addr, "/events")).expect("/events is JSON");
    for key in ["suppressed", "evicted", "events"] {
        assert!(events.get(key).is_some(), "/events missing {key}");
    }

    let traces: serde_json::Value =
        serde_json::from_str(&get_ok(addr, "/traces/slow")).expect("/traces/slow is JSON");
    assert!(
        traces.get("traces").is_some(),
        "/traces/slow missing traces"
    );

    let (code, _) = http_get(addr, "/nope").expect("GET /nope");
    assert_eq!(code, 404, "unknown path should 404");

    ops.shutdown();
    engine.shutdown();
    println!("ops_smoke: all endpoints well-formed");
}
