//! `freephish-extd` — the FreePhish verdict daemon and its client.
//!
//! The deployable form of the paper's browser extension backend: a TCP
//! service answering `CHECK <url>` queries (and accepting `ADD <url>
//! <score>` updates), plus a client subcommand for scripting and for
//! wiring into a browser proxy.
//!
//! ```text
//! freephish-extd serve [--port N] [--blocklist FILE] [--store DIR]
//!                      [--index-file FILE] [--rebake-secs N]
//!                      [--engine threaded|evented] [--ops-port N]
//!                      [--classify-on-miss] [--rate-cap N]
//!                      [--replication-port N] [--replicate-from ADDR]
//!     Serve verdicts on 127.0.0.1:N (default: an ephemeral port).
//!     FILE holds one `<url> [score]` per line ('#' comments allowed);
//!     malformed lines are skipped with a warning. With --store DIR the
//!     daemon follows a pipeline run journal instead: verdicts hot-reload
//!     as the pipeline appends them, and ADDs are durably journaled in
//!     DIR/extd-adds. --engine picks the serving engine: "evented" (the
//!     default) runs the freephish-serve poll-loop engine with the binary
//!     CHECKN protocol, backpressure and load shedding; "threaded" runs
//!     the classic thread-per-connection line server. With
//!     --classify-on-miss the daemon mounts the tiered resolver in front
//!     of the lookup: a URL-lexical pre-filter serves confident-safe
//!     misses inline, the residue is classified off the serve path as
//!     microbatches, and inline phishing verdicts are journaled through
//!     the store (with --store, durably — a restart recovers them with
//!     zero re-classification). Models train on a background thread at
//!     startup. With --ops-port N the daemon also mounts the ops plane on
//!     127.0.0.1:N: GET /metrics (Prometheus text, including the
//!     resolver_* tier series), /varz (JSON), /healthz, /readyz, /events
//!     and /traces/slow. /readyz reports 503 until the serving index has
//!     published its first generation, the journal tail is caught up
//!     (with --store), and the classifier is warm (with
//!     --classify-on-miss). Ctrl-C / SIGTERM drains connections, flushes
//!     the store, and exits 0.
//!
//!     Scale flags (both need --store): --index-file FILE mmaps a baked
//!     verdict index (DESIGN.md §15) as the serving baseline — a node
//!     carrying millions of entries restarts in milliseconds, replaying
//!     only the journal suffix past the bake's cursor; live entries
//!     shadow baked ones bit-identically. --rebake-secs N (evented
//!     engine) re-bakes the journal into FILE (default:
//!     DIR/verdicts.mapidx) every N seconds on the serve loop — temp
//!     file + atomic rename, then an in-process baseline swap.
//!
//!     Cluster flags: --rate-cap N sheds check traffic past N URLs/sec
//!     with BUSY (a per-replica QoS quota; evented engine only). N must
//!     be positive — the cap is off when the flag is absent.
//!     --replication-port N makes this daemon the cluster primary
//!     (DESIGN.md §14): it owns --store DIR as its WAL — wire ADDs (and
//!     inline classify-on-miss verdicts) are journaled straight into it,
//!     durable before OK — and ships that WAL to follower replicas on
//!     127.0.0.1:N, so followers receive every verdict the primary
//!     admits. Do not point it at a directory another process is
//!     writing. --replicate-from ADDR turns this daemon into a
//!     read-only follower: it mirrors the primary's WAL into --store
//!     DIR (which the replication session owns — no local writers),
//!     feeds the serving index from the replica, refuses ADDs, and
//!     reports ready only once caught up to the primary's tip.
//!
//! freephish-extd route [--port N] --backends ADDR,ADDR,...
//!                      [--backend-ops ADDR|-,...] [--ops-port N]
//!     Consistent-hash router front-end over evented backends: speaks
//!     the same line + BINARY verdict wire, scatters CHECKN batches by
//!     ring owner, gathers in order, fails over along the ring when a
//!     backend is down or shedding. --backend-ops lists each backend's
//!     ops address ("-" for none) for /readyz health probes; without
//!     one a bare TCP connect is probed. Read-only: ADDs are refused.
//!
//! freephish-extd check <addr> <url> [url...]
//!     Query a running daemon; exit code 2 if any URL is phishing,
//!     3 if any URL's shard failed (other URLs still print verdicts).
//! ```

use freephish_cluster::{
    Replica, ReplicaConfig, ReplicationSource, Router, RouterConfig, RouterServer, SourceConfig,
};
use freephish_core::extension::{KnownSetChecker, UrlChecker, VerdictClient, VerdictServer};
use freephish_core::journal::{encode_event, obs_store_observer, AddEvent, RunEvent};
use freephish_core::resolver::{SyntheticFetcher, TieredResolver, TieredResolverConfig};
use freephish_core::verdictstore::{journal_payload_decoder, StoreBacking};
use freephish_serve::{
    EventedServer, IndexPublisher, OpsConfig, OpsServer, ServeConfig, ShardedIndex, Verdict,
};
use freephish_store::{Store, StoreOptions};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Signal-driven shutdown flag, set from `SIGINT` / `SIGTERM`.
///
/// The handler only does an atomic store — the one thing that is safe in
/// async-signal context — and the serve loop polls the flag. The `signal`
/// libc call is declared locally to keep the workspace dependency-free.
mod shutdown {
    use super::AtomicBool;
    use std::sync::atomic::Ordering;

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Install handlers for Ctrl-C and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// True once a shutdown signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Parse a blocklist file: one `<url> [score]` per line, `#` comments.
/// Malformed lines (unparsable URL, unparsable or out-of-range score, or
/// trailing junk) are skipped with a warning rather than silently turned
/// into bogus entries.
fn load_blocklist(path: &str) -> std::io::Result<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let url = parts.next().expect("non-empty line has a first token");
        if let Err(e) = freephish_urlparse::Url::parse(url) {
            freephish_obs::warn(
                "extd",
                format!(
                    "{path}:{}: skipping malformed URL {url:?}: {e:?}",
                    lineno + 1
                ),
            );
            continue;
        }
        let score = match parts.next() {
            None => 0.99,
            Some(raw) => match raw.parse::<f64>() {
                Ok(s) if (0.0..=1.0).contains(&s) => s,
                _ => {
                    freephish_obs::warn(
                        "extd",
                        format!(
                            "{path}:{}: skipping line with bad score {raw:?} (want 0..=1)",
                            lineno + 1
                        ),
                    );
                    continue;
                }
            },
        };
        if parts.next().is_some() {
            freephish_obs::warn(
                "extd",
                format!("{path}:{}: skipping line with trailing fields", lineno + 1),
            );
            continue;
        }
        entries.push((url.to_string(), score));
    }
    Ok(entries)
}

fn usage() -> ! {
    eprintln!(
        "usage: freephish-extd serve [--port N] [--blocklist FILE] [--store DIR] \
         [--index-file FILE] [--rebake-secs N] \
         [--engine threaded|evented] [--ops-port N] [--classify-on-miss] [--rate-cap N] \
         [--replication-port N] [--replicate-from ADDR]"
    );
    eprintln!(
        "       freephish-extd route [--port N] --backends ADDR,ADDR,... \
         [--backend-ops ADDR|-,...] [--ops-port N]"
    );
    eprintln!("       freephish-extd check <addr> <url> [url...]");
    std::process::exit(64);
}

/// How often the serve loop wakes to poll the store and the shutdown flag.
const SERVE_POLL: Duration = Duration::from_millis(150);
/// How long shutdown waits for in-flight connections to finish.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// The serving engine behind one `--engine` choice; both expose the same
/// address / shutdown / drain contract to the serve loop.
enum Engine {
    Threaded(VerdictServer),
    Evented(EventedServer),
}

impl Engine {
    fn addr(&self) -> SocketAddr {
        match self {
            Engine::Threaded(s) => s.addr(),
            Engine::Evented(s) => s.addr(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Engine::Threaded(_) => "threaded",
            Engine::Evented(_) => "evented",
        }
    }

    fn shutdown(&mut self) {
        match self {
            Engine::Threaded(s) => s.shutdown(),
            Engine::Evented(s) => s.shutdown(),
        }
    }

    fn ops_config(&self) -> OpsConfig {
        match self {
            Engine::Threaded(s) => s.ops_config(),
            Engine::Evented(s) => s.ops_config(),
        }
    }

    fn drain(&self, timeout: Duration) -> bool {
        match self {
            Engine::Threaded(s) => s.drain(timeout),
            Engine::Evented(s) => s.drain(timeout),
        }
    }
}

/// How long shutdown lets the classify queue finish its residue before
/// stopping the resolver (journaled verdicts are durable regardless).
const RESOLVER_DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

fn serve(args: &[String]) -> std::io::Result<()> {
    let mut entries = Vec::new();
    let mut port: u16 = 0;
    let mut ops_port: Option<u16> = None;
    let mut store_dir: Option<String> = None;
    let mut evented = true;
    let mut classify_on_miss = false;
    let mut rate_cap: u64 = 0;
    let mut index_file: Option<String> = None;
    let mut rebake_secs: u64 = 0;
    let mut replication_port: Option<u16> = None;
    let mut replicate_from: Option<SocketAddr> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rate-cap" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                // A cap of zero (or below) would shed every request; the
                // way to disable the cap is to omit the flag.
                match raw.parse::<i64>() {
                    Ok(n) if n > 0 => rate_cap = n as u64,
                    _ => {
                        eprintln!(
                            "--rate-cap must be a positive integer (URLs/sec), got {raw:?}; \
                             omit the flag to disable the cap"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--index-file" => {
                i += 1;
                index_file = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--rebake-secs" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                rebake_secs = raw.parse().unwrap_or_else(|_| usage());
                if rebake_secs == 0 {
                    eprintln!("--rebake-secs must be positive");
                    usage();
                }
            }
            "--replication-port" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                replication_port = Some(raw.parse().unwrap_or_else(|_| usage()));
            }
            "--replicate-from" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                replicate_from = Some(raw.parse().unwrap_or_else(|_| usage()));
            }
            "--ops-port" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                ops_port = Some(raw.parse().unwrap_or_else(|_| usage()));
            }
            "--blocklist" => {
                i += 1;
                let path = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                entries = load_blocklist(path)?;
            }
            "--port" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                port = raw.parse().unwrap_or_else(|_| usage());
            }
            "--store" => {
                i += 1;
                let dir = args.get(i).cloned().unwrap_or_else(|| usage());
                store_dir = Some(dir);
            }
            "--engine" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("threaded") => evented = false,
                    Some("evented") => evented = true,
                    _ => usage(),
                }
            }
            "--classify-on-miss" => classify_on_miss = true,
            _ => usage(),
        }
        i += 1;
    }

    if rate_cap > 0 && !evented {
        eprintln!("--rate-cap requires the evented engine");
        usage();
    }
    if (index_file.is_some() || rebake_secs > 0) && store_dir.is_none() {
        eprintln!("--index-file and --rebake-secs need --store DIR (the journal to bake)");
        usage();
    }
    if rebake_secs > 0 && !evented {
        eprintln!("--rebake-secs requires the evented engine (in-process baseline swap)");
        usage();
    }
    if (index_file.is_some() || rebake_secs > 0)
        && (replication_port.is_some() || replicate_from.is_some())
    {
        eprintln!("--index-file/--rebake-secs are incompatible with the replication modes");
        usage();
    }
    // Where re-bakes land: the explicit --index-file, or a default next
    // to the journal.
    let bake_path: Option<std::path::PathBuf> = match (&index_file, &store_dir) {
        (Some(f), _) => Some(f.into()),
        (None, Some(dir)) if rebake_secs > 0 => {
            Some(std::path::Path::new(dir).join("verdicts.mapidx"))
        }
        _ => None,
    };
    if let Some(primary) = replicate_from {
        // Follower mode is a different wiring altogether: the store dir
        // belongs to the replication session, not to a local journal
        // writer, so none of the primary-side options make sense.
        if !evented || classify_on_miss || !entries.is_empty() || replication_port.is_some() {
            eprintln!(
                "--replicate-from is incompatible with --engine threaded, \
                 --classify-on-miss, --blocklist and --replication-port"
            );
            usage();
        }
        let Some(dir) = store_dir else {
            eprintln!("--replicate-from needs --store DIR for the replica directory");
            usage();
        };
        return serve_follower(primary, &dir, port, ops_port, rate_cap);
    }

    // A store-backed checker hot-reloads from the run journal; the static
    // checker serves the blocklist as loaded. A cluster primary
    // (--replication-port) instead owns the store directory as its WAL:
    // ADDs journal straight into the shipped history.
    let static_len = entries.len();
    let mut backing: Option<StoreBacking> = None;
    let mut primary_publisher: Option<IndexPublisher> = None;
    let mut primary_store: Option<Arc<parking_lot::Mutex<Store>>> = None;
    let lookup: Arc<dyn UrlChecker> = if replication_port.is_some() {
        if !evented {
            eprintln!("--replication-port requires the evented engine");
            usage();
        }
        let Some(dir) = &store_dir else {
            eprintln!("--replication-port needs --store DIR (the WAL to own and ship)");
            usage();
        };
        let (store, _) =
            Store::open_with(dir, StoreOptions::default(), Some(obs_store_observer()))?;
        let store = Arc::new(parking_lot::Mutex::new(store));
        let index = Arc::new(ShardedIndex::with_default_shards());
        let mut publisher = IndexPublisher::new(dir, index.clone(), journal_payload_decoder());
        publisher.poll()?;
        let primary = Arc::new(PrimaryChecker {
            index,
            store: store.clone(),
        });
        for (url, score) in std::mem::take(&mut entries) {
            primary
                .add(&url, score)
                .map_err(|e| std::io::Error::other(format!("journaling blocklist entry: {e}")))?;
        }
        primary_publisher = Some(publisher);
        primary_store = Some(store);
        primary
    } else {
        match &store_dir {
            Some(dir) => {
                // The baseline is optional at startup: before the first
                // bake exists the daemon simply replays the journal, and
                // the first --rebake-secs cycle creates the file.
                let base = match bake_path.as_deref() {
                    Some(p) if p.exists() => Some(p),
                    Some(p) if index_file.is_some() => {
                        freephish_obs::warn(
                            "extd",
                            format!("index file {} not found; serving from journal replay until the first bake", p.display()),
                        );
                        None
                    }
                    _ => None,
                };
                let b = StoreBacking::open_with(dir, evented, std::mem::take(&mut entries), base)?;
                let c = b.checker();
                backing = Some(b);
                c
            }
            None if evented => {
                let index = ShardedIndex::with_default_shards();
                index.publish(entries);
                Arc::new(index)
            }
            None => Arc::new(KnownSetChecker::new(entries)),
        }
    };

    // --classify-on-miss mounts the tiered resolver in front of the
    // lookup. Models train on a background thread (readiness gates on it
    // below); snapshots come from the deterministic synthetic fetcher
    // until a real crawler is wired in. Inline phishing verdicts journal
    // through the lookup's `add` path — durable when it is store-backed.
    let resolver: Option<Arc<TieredResolver>> = classify_on_miss.then(|| {
        TieredResolver::bootstrap(
            lookup.clone(),
            Arc::new(SyntheticFetcher::new(0x0F_E7C4)),
            TieredResolverConfig::default(),
        )
    });
    let checker: Arc<dyn UrlChecker> = match &resolver {
        Some(r) => r.clone(),
        None => lookup.clone(),
    };

    // --replication-port serves the store directory's WAL to follower
    // replicas. This daemon is the directory's only writer (the
    // PrimaryChecker above), so the journal keeps its single writer.
    let mut replication = match replication_port {
        Some(p) => {
            let Some(dir) = &store_dir else {
                eprintln!("--replication-port needs --store DIR (the WAL to ship)");
                usage();
            };
            let source = ReplicationSource::start_with(
                dir,
                SourceConfig {
                    port: p,
                    ..SourceConfig::default()
                },
            )?;
            println!("replication source on {} (shipping {dir})", source.addr());
            Some(source)
        }
        None => None,
    };

    shutdown::install();
    let mut server = if evented {
        Engine::Evented(EventedServer::start_with(
            ServeConfig {
                port,
                rate_cap_urls_per_sec: rate_cap,
                ..ServeConfig::default()
            },
            checker.clone(),
        )?)
    } else {
        Engine::Threaded(VerdictServer::start_on(port, checker.clone())?)
    };
    println!(
        "freephish-extd listening on {} (engine: {}{})",
        server.addr(),
        server.name(),
        if classify_on_miss {
            ", classify-on-miss"
        } else {
            ""
        }
    );

    // When --store is given, readiness additionally requires the journal
    // tail to be caught up: true after every successful reload/publish
    // poll, false the moment one fails. The flag starts true because
    // `StoreBacking::open` already did one successful full read. With
    // --classify-on-miss it further requires the classifier warm, and the
    // scrape snapshot merges the resolver's per-tier series.
    let caught_up = Arc::new(AtomicBool::new(true));
    let mut ops_server = match ops_port {
        Some(p) => {
            let mut cfg = server.ops_config();
            if backing.is_some() || primary_publisher.is_some() {
                let flag = caught_up.clone();
                cfg = cfg.with_ready_condition(
                    "store_journal_caught_up",
                    Arc::new(move || flag.load(Ordering::SeqCst)),
                );
            }
            if let Some(r) = &resolver {
                let warm = r.clone();
                cfg = cfg.with_ready_condition("classifier_warm", Arc::new(move || warm.is_warm()));
                let snap = r.clone();
                cfg = cfg.with_snapshot_merge(Arc::new(move || snap.metrics_snapshot()));
            }
            if let Some(src) = &replication {
                cfg = cfg.with_snapshot_merge(src.snapshot_fn());
            }
            let ops = OpsServer::start(p, cfg)?;
            println!(
                "ops plane on http://{} (/metrics /varz /healthz /readyz /events /traces/slow)",
                ops.addr()
            );
            Some(ops)
        }
        None => None,
    };
    match &backing {
        Some(b) => println!(
            "following store {} ({} known URLs, generation {})",
            store_dir.as_deref().unwrap_or_default(),
            b.len(),
            checker.generation()
        ),
        None if primary_store.is_some() => println!(
            "primary WAL {} (generation {})",
            store_dir.as_deref().unwrap_or_default(),
            checker.generation()
        ),
        None => println!("known phishing URLs: {static_len}"),
    }
    println!("press Ctrl-C to stop");

    let mut last_rebake = std::time::Instant::now();
    while !shutdown::requested() {
        std::thread::sleep(SERVE_POLL);
        if let Some(b) = &mut backing {
            match b.poll() {
                Ok(()) => caught_up.store(true, Ordering::SeqCst),
                Err(e) => {
                    caught_up.store(false, Ordering::SeqCst);
                    freephish_obs::warn("extd", format!("store reload failed: {e}"));
                }
            }
            if rebake_secs > 0 && last_rebake.elapsed().as_secs() >= rebake_secs {
                last_rebake = std::time::Instant::now();
                let out = bake_path.as_deref().expect("rebake implies a bake path");
                match b.rebake(out) {
                    Ok(summary) => freephish_obs::info(
                        "extd",
                        format!(
                            "re-baked {} entries ({} bytes) into {}",
                            summary.entries,
                            summary.file_bytes,
                            out.display()
                        ),
                    ),
                    Err(e) => freephish_obs::warn("extd", format!("re-bake failed: {e}")),
                }
            }
        }
        if let Some(p) = &mut primary_publisher {
            match p.poll() {
                Ok(_) => caught_up.store(true, Ordering::SeqCst),
                Err(e) => {
                    caught_up.store(false, Ordering::SeqCst);
                    freephish_obs::warn("extd", format!("primary WAL reload failed: {e}"));
                }
            }
        }
    }

    println!("shutting down: draining connections");
    if let Some(ops) = ops_server.as_mut() {
        ops.shutdown();
    }
    if let Some(src) = replication.as_mut() {
        src.shutdown();
    }
    server.shutdown();
    if !server.drain(DRAIN_TIMEOUT) {
        freephish_obs::warn("extd", "drain timed out with connections still active");
    }
    if let Some(r) = &resolver {
        // Give the classify queue a bounded window to finish; anything
        // still queued is lost (by design — provisional answers were
        // already served, and journaled verdicts are already durable).
        if !r.drain(RESOLVER_DRAIN_TIMEOUT) {
            freephish_obs::warn("extd", "resolver queue not drained; dropping residue");
        }
        r.shutdown();
    }
    if let Some(b) = &backing {
        b.sync()?;
    }
    if let Some(store) = &primary_store {
        store.lock().sync()?;
    }
    println!("bye");
    Ok(())
}

/// A cluster primary's serving checker: this daemon owns the store
/// directory as its WAL — the history the replication source ships — so
/// an ADD appends a `RunEvent::Add` record to it, durable (fsync) before
/// the OK goes back, then publishes into the index for immediate
/// read-your-writes visibility. Followers receive the same record
/// through replication.
struct PrimaryChecker {
    index: Arc<ShardedIndex>,
    store: Arc<parking_lot::Mutex<Store>>,
}

impl UrlChecker for PrimaryChecker {
    fn check(&self, url: &str) -> Verdict {
        self.index.check(url)
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        self.index.check_many(urls)
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        let ev = RunEvent::Add(AddEvent {
            url: url.to_string(),
            score,
        });
        let mut store = self.store.lock();
        store
            .append(&encode_event(&ev))
            .map_err(|e| format!("store write failed: {e}"))?;
        store
            .sync()
            .map_err(|e| format!("store sync failed: {e}"))?;
        drop(store);
        Ok(self.index.publish([(url.to_string(), score)]))
    }

    fn generation(&self) -> u64 {
        self.index.generation()
    }
}

/// A follower's serving checker: reads come from the locally replicated
/// index, writes are refused — the primary's journal is the only place
/// verdicts are born, and replication is how they arrive here.
struct FollowerChecker {
    index: Arc<ShardedIndex>,
}

impl UrlChecker for FollowerChecker {
    fn check(&self, url: &str) -> Verdict {
        self.index.check(url)
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        self.index.check_many(urls)
    }

    fn add(&self, _url: &str, _score: f64) -> Result<u64, String> {
        Err("read-only follower replica; send ADDs to the primary".to_string())
    }

    fn generation(&self) -> u64 {
        self.index.generation()
    }
}

/// Follower mode: mirror the primary's WAL into `dir`, feed the serving
/// index from the replica, and serve read-only verdicts.
fn serve_follower(
    primary: SocketAddr,
    dir: &str,
    port: u16,
    ops_port: Option<u16>,
    rate_cap: u64,
) -> std::io::Result<()> {
    let replica = Arc::new(Replica::start(primary, dir, ReplicaConfig::default())?);
    let index = Arc::new(ShardedIndex::with_default_shards());
    let mut publisher = IndexPublisher::new(dir, index.clone(), journal_payload_decoder());
    let checker: Arc<dyn UrlChecker> = Arc::new(FollowerChecker {
        index: index.clone(),
    });

    shutdown::install();
    let mut server = EventedServer::start_with(
        ServeConfig {
            port,
            rate_cap_urls_per_sec: rate_cap,
            ..ServeConfig::default()
        },
        checker,
    )?;
    println!(
        "freephish-extd follower listening on {} (replicating {primary} into {dir})",
        server.addr()
    );

    // Readiness needs both layers: the replica at the primary's tip AND
    // the local publisher having ingested the replicated journal.
    let journal_ok = Arc::new(AtomicBool::new(false));
    let mut ops_server = match ops_port {
        Some(p) => {
            let caught = replica.clone();
            let ingested = journal_ok.clone();
            let cfg = server
                .ops_config()
                .with_ready_condition(
                    "replication_caught_up",
                    Arc::new(move || caught.caught_up()),
                )
                .with_ready_condition(
                    "replica_journal_ingested",
                    Arc::new(move || ingested.load(Ordering::SeqCst)),
                )
                .with_snapshot_merge({
                    let r = replica.clone();
                    Arc::new(move || r.metrics_snapshot())
                });
            let ops = OpsServer::start(p, cfg)?;
            println!("ops plane on http://{}", ops.addr());
            Some(ops)
        }
        None => None,
    };
    println!("press Ctrl-C to stop");

    while !shutdown::requested() {
        std::thread::sleep(SERVE_POLL);
        match publisher.poll() {
            Ok(_) => journal_ok.store(true, Ordering::SeqCst),
            Err(e) => {
                journal_ok.store(false, Ordering::SeqCst);
                freephish_obs::warn("extd", format!("replica journal poll failed: {e}"));
            }
        }
    }

    println!("shutting down: draining connections");
    if let Some(ops) = ops_server.as_mut() {
        ops.shutdown();
    }
    replica.shutdown();
    server.shutdown();
    if !server.drain(DRAIN_TIMEOUT) {
        freephish_obs::warn("extd", "drain timed out with connections still active");
    }
    println!("bye");
    Ok(())
}

/// Parse a comma-separated address list; each entry must be `host:port`,
/// except that `allow_blank` lets `-` mean "no address for this slot".
fn parse_addr_list(raw: &str, allow_blank: bool) -> Vec<Option<SocketAddr>> {
    raw.split(',')
        .map(|s| {
            let s = s.trim();
            if allow_blank && s == "-" {
                return None;
            }
            Some(s.parse().unwrap_or_else(|_| usage()))
        })
        .collect()
}

fn route(args: &[String]) -> std::io::Result<()> {
    let mut port: u16 = 0;
    let mut ops_port: Option<u16> = None;
    let mut backends: Vec<SocketAddr> = Vec::new();
    let mut backend_ops: Vec<Option<SocketAddr>> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                port = raw.parse().unwrap_or_else(|_| usage());
            }
            "--ops-port" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                ops_port = Some(raw.parse().unwrap_or_else(|_| usage()));
            }
            "--backends" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                backends = parse_addr_list(raw, false)
                    .into_iter()
                    .map(|a| a.expect("blank not allowed"))
                    .collect();
            }
            "--backend-ops" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                backend_ops = parse_addr_list(raw, true);
            }
            _ => usage(),
        }
        i += 1;
    }
    if backends.is_empty() {
        eprintln!("route needs --backends with at least one address");
        usage();
    }
    if !backend_ops.is_empty() && backend_ops.len() != backends.len() {
        eprintln!("--backend-ops must list one address (or -) per backend");
        usage();
    }

    let n = backends.len();
    let router = Router::new(
        backends,
        RouterConfig {
            ops_addrs: backend_ops,
            ..RouterConfig::default()
        },
    );
    shutdown::install();
    let mut server = RouterServer::start(port, router)?;
    println!(
        "freephish-extd router listening on {} ({n} backends)",
        server.addr()
    );
    let mut ops_server = match ops_port {
        Some(p) => {
            let ops = OpsServer::start(p, server.ops_config())?;
            println!("ops plane on http://{}", ops.addr());
            Some(ops)
        }
        None => None,
    };
    println!("press Ctrl-C to stop");

    while !shutdown::requested() {
        std::thread::sleep(SERVE_POLL);
    }
    println!("shutting down");
    if let Some(ops) = ops_server.as_mut() {
        ops.shutdown();
    }
    server.shutdown();
    println!("bye");
    Ok(())
}

fn check(args: &[String]) -> std::io::Result<()> {
    let (addr, urls) = match args.split_first() {
        Some((a, rest)) if !rest.is_empty() => (a, rest),
        _ => usage(),
    };
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let client = VerdictClient::new(addr);
    let urls: Vec<String> = urls.to_vec();
    // One connection, batched when the server speaks the binary protocol.
    // Failures are per URL: a shed shard prints errors for its URLs while
    // the rest of the batch still gets verdicts.
    let verdicts = client.check_batch(&urls)?;
    let mut any_phish = false;
    let mut any_err = false;
    for (url, v) in urls.iter().zip(&verdicts) {
        match v {
            Ok(v) if v.is_phishing() => {
                println!("PHISHING  {url}");
                any_phish = true;
            }
            Ok(_) => println!("safe      {url}"),
            Err(msg) => {
                println!("error     {url}  ({msg})");
                any_err = true;
            }
        }
    }
    if any_phish {
        std::process::exit(2);
    }
    if any_err {
        std::process::exit(3);
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "serve" => serve(rest),
        Some((cmd, rest)) if cmd == "route" => route(rest),
        Some((cmd, rest)) if cmd == "check" => check(rest),
        _ => usage(),
    }
}
