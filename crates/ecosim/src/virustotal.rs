//! The VirusTotal aggregate: 76 third-party anti-phishing engines.
//!
//! Section 5.2 scans every URL with VirusTotal every ten minutes for a week
//! and studies the *detection count* trajectory (Figures 7–8), after
//! excluding GSB/PhishTank/OpenPhish to avoid double counting. The
//! reproduction models 76 engines with heterogeneous sensitivity and speed:
//!
//! * two "seed" feeds that flag most phishing quickly regardless of
//!   hosting (these are why day-one counts cluster at 2 — the dataset
//!   inclusion threshold);
//! * a handful of strong engines and a long tail of weak ones, all of
//!   which are substantially *less* likely to flag FWB-hosted URLs
//!   (shared SSL, old domain age, .com TLD — the Section 3 evasion
//!   features defeat their heuristics).
//!
//! Calibration target: after one week, FWB URLs sit around 4 detections at
//! the median, self-hosted around 9 (Figure 7).

use crate::blocklist::HostClass;
use freephish_simclock::{Rng64, SimDuration, SimTime};
use std::collections::HashMap;

/// Number of simulated engines.
pub const VT_ENGINE_COUNT: usize = 76;

/// One engine's behaviour.
#[derive(Debug, Clone)]
struct Engine {
    /// Detection probability for self-hosted phishing.
    propensity: f64,
    /// Median detection delay, hours.
    median_hours: f64,
    /// Whether the engine is a community seed feed (class-independent).
    seed_feed: bool,
}

fn engine_roster() -> Vec<Engine> {
    let mut engines = Vec::with_capacity(VT_ENGINE_COUNT);
    // Two seed feeds: fast, near-certain, class-independent.
    for _ in 0..2 {
        engines.push(Engine {
            propensity: 0.97,
            median_hours: 2.0,
            seed_feed: true,
        });
    }
    // Eight strong engines.
    for i in 0..8 {
        engines.push(Engine {
            propensity: 0.45 - 0.02 * i as f64,
            median_hours: 18.0 + 6.0 * i as f64,
            seed_feed: false,
        });
    }
    // Long tail of weak engines.
    for i in 0..(VT_ENGINE_COUNT - 10) {
        engines.push(Engine {
            propensity: 0.12 * (1.0 - i as f64 / (VT_ENGINE_COUNT - 10) as f64) + 0.01,
            median_hours: 48.0 + (i as f64 * 1.7) % 96.0,
            seed_feed: false,
        });
    }
    engines
}

/// Class multiplier applied to non-seed engines: FWB URLs defeat most
/// heuristics.
fn class_multiplier(class: HostClass) -> f64 {
    match class {
        HostClass::Fwb(_) => 0.30,
        HostClass::SelfHosted => 1.0,
    }
}

/// The VirusTotal service: registered URLs with per-engine detection times.
#[derive(Debug)]
pub struct VirusTotal {
    engines: Vec<Engine>,
    /// url → sorted detection times (one per detecting engine).
    detections: HashMap<String, Vec<SimTime>>,
    rng: Rng64,
}

impl VirusTotal {
    /// A fresh aggregator.
    pub fn new(seed: u64) -> VirusTotal {
        VirusTotal {
            engines: engine_roster(),
            detections: HashMap::new(),
            rng: Rng64::new(seed ^ 0x76_707461),
        }
    }

    /// Register a URL the moment it goes live; each engine's verdict and
    /// timing are drawn once. Idempotent per URL.
    pub fn register(&mut self, url: &str, class: HostClass, first_seen: SimTime) {
        if self.detections.contains_key(url) {
            return;
        }
        let mult = class_multiplier(class);
        let mut times = Vec::new();
        for e in &self.engines.clone() {
            let p = if e.seed_feed {
                e.propensity
            } else {
                e.propensity * mult
            };
            if self.rng.chance(p) {
                let hours = self.rng.lognormal_median(e.median_hours, 0.8);
                times.push(first_seen + SimDuration::from_secs((hours * 3600.0) as u64));
            }
        }
        times.sort_unstable();
        self.detections.insert(url.to_string(), times);
    }

    /// The scan API: number of engines flagging `url` at time `now`.
    /// Unregistered URLs scan clean.
    pub fn scan(&self, url: &str, now: SimTime) -> usize {
        self.detections
            .get(url)
            .map(|times| times.partition_point(|&t| t <= now))
            .unwrap_or(0)
    }

    /// Final detection count (after all engines that ever will detect,
    /// have). Oracle/test access.
    pub fn final_count(&self, url: &str) -> usize {
        self.detections.get(url).map(|t| t.len()).unwrap_or(0)
    }

    /// Number of registered URLs.
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// True when no URLs are registered.
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_simclock::stats::median_u64;
    use freephish_webgen::FwbKind;

    fn counts_after(vt: &VirusTotal, urls: &[String], d: SimDuration) -> Vec<u64> {
        urls.iter()
            .map(|u| vt.scan(u, SimTime::ZERO + d) as u64)
            .collect()
    }

    fn populate(vt: &mut VirusTotal, class: HostClass, prefix: &str, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let url = format!("https://{prefix}{i}.example/");
                vt.register(&url, class, SimTime::ZERO);
                url
            })
            .collect()
    }

    #[test]
    fn roster_is_76_engines() {
        assert_eq!(engine_roster().len(), VT_ENGINE_COUNT);
    }

    #[test]
    fn week_medians_match_figure7() {
        let mut vt = VirusTotal::new(1);
        let fwb = populate(&mut vt, HostClass::Fwb(FwbKind::Weebly), "f", 2000);
        let sh = populate(&mut vt, HostClass::SelfHosted, "s", 2000);
        let week = SimDuration::from_days(7);
        let fwb_med = median_u64(&counts_after(&vt, &fwb, week)).unwrap();
        let sh_med = median_u64(&counts_after(&vt, &sh, week)).unwrap();
        // Paper: FWB ≈ 4 detections, self-hosted ≈ 9 after one week.
        assert!((3..=6).contains(&fwb_med), "fwb median {fwb_med}");
        assert!((7..=12).contains(&sh_med), "self-hosted median {sh_med}");
        assert!(sh_med >= fwb_med + 3);
    }

    #[test]
    fn day_one_fwb_counts_cluster_at_two() {
        let mut vt = VirusTotal::new(2);
        let fwb = populate(&mut vt, HostClass::Fwb(FwbKind::GoogleSites), "g", 2000);
        let day = SimDuration::from_days(1);
        let counts = counts_after(&vt, &fwb, day);
        let at_most_two = counts.iter().filter(|&&c| c <= 2).count() as f64 / counts.len() as f64;
        // Figure 8: ~75% of FWB URLs had only the 2 seed detections on day 1.
        assert!(at_most_two > 0.6, "at_most_two={at_most_two}");
    }

    #[test]
    fn detections_monotone_in_time() {
        let mut vt = VirusTotal::new(3);
        let urls = populate(&mut vt, HostClass::SelfHosted, "m", 50);
        for u in &urls {
            let mut prev = 0;
            for d in 0..8 {
                let c = vt.scan(u, SimTime::from_days(d));
                assert!(c >= prev);
                prev = c;
            }
            assert_eq!(vt.scan(u, SimTime::from_days(365)), vt.final_count(u));
        }
    }

    #[test]
    fn unregistered_scans_clean() {
        let vt = VirusTotal::new(4);
        assert_eq!(
            vt.scan("https://unknown.example/", SimTime::from_days(9)),
            0
        );
    }

    #[test]
    fn register_idempotent() {
        let mut vt = VirusTotal::new(5);
        vt.register("https://a.example/", HostClass::SelfHosted, SimTime::ZERO);
        let first = vt.final_count("https://a.example/");
        vt.register(
            "https://a.example/",
            HostClass::SelfHosted,
            SimTime::from_days(1),
        );
        assert_eq!(vt.final_count("https://a.example/"), first);
        assert_eq!(vt.len(), 1);
    }

    #[test]
    fn counts_capped_by_engine_total() {
        let mut vt = VirusTotal::new(6);
        let urls = populate(&mut vt, HostClass::SelfHosted, "c", 200);
        for u in &urls {
            assert!(vt.final_count(u) <= VT_ENGINE_COUNT);
        }
    }
}
