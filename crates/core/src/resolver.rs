//! Tiered verdict resolution: the classify-on-miss pipeline behind the
//! serve path.
//!
//! The serving engines judge URLs through one [`UrlChecker`]; until now
//! that checker was a pure lookup, so unknown URLs — the traffic that
//! actually matters — always fell through as `SAFE 0.0`. A
//! [`TieredResolver`] wraps any inner checker and resolves misses through
//! an admission pipeline:
//!
//! * **tier 0 — index.** The inner checker (a [`ShardedIndex`]-backed
//!   store checker, a `KnownSetChecker`, anything). A hit answers
//!   immediately; batches resolve against one snapshot via `check_many`.
//! * **tier 1 — URL-lexical pre-filter.** A flat-forest GBDT over the
//!   eight SWAR-extracted [`url_features`] scores the URL alone in
//!   microseconds. Scores below a calibrated confident-safe cutoff
//!   ([`freephish_ml::threshold_at_fnr`]) are served as safe without ever
//!   touching the page — the cheap first stage that absorbs the bulk of
//!   miss traffic.
//! * **tier 2 — full classification.** The residue is enqueued on a
//!   *bounded* classify queue and scored as microbatches on the
//!   `freephish-par` pool by a background worker: snapshot fetch,
//!   [`looks_like_html`] sniff, then [`AugmentedStackModel::score_snapshot`]
//!   per URL. The caller is answered immediately with the tier-1 score as
//!   a provisional verdict, so the evented engine's poll workers never
//!   block on a model; a full queue sheds the enqueue (counted) rather
//!   than stalling.
//! * **tier 3 — durability.** Freshly classified phishing verdicts are
//!   journaled through the inner checker's `add` path (the
//!   [`SidecarAdds`] fsync-per-append journal for store-backed checkers),
//!   so they become durable, hot-reloadable tier-0 state: a restart
//!   recovers every journaled inline verdict with zero re-classification.
//!
//! Safe classifications are not journaled — a lookup miss already means
//! safe — but land in a TTL'd **negative cache** so repeat misses don't
//! re-classify. Expired negatives re-enter the classify queue; fresh ones
//! never do. Every stage is counted and timed through `freephish-obs`
//! (`resolver_*` metrics) and surfaces on the ops plane.
//!
//! [`ShardedIndex`]: freephish_serve::ShardedIndex
//! [`SidecarAdds`]: crate::verdictstore::SidecarAdds
//! [`looks_like_html`]: freephish_htmlparse::looks_like_html
//! [`url_features`]: crate::features::url_features

use crate::extension::{UrlChecker, Verdict};
use crate::features::url_features;
use crate::groundtruth::{build, GroundTruthConfig, LabeledSite};
use crate::models::augmented::AugmentedStackModel;
use freephish_htmlparse::looks_like_html;
use freephish_ml::{threshold_at_fnr, Dataset, Gbdt, GbdtConfig, StackModelConfig};
use freephish_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use freephish_simclock::{Rng64, SimDuration, SimTime};
use freephish_urlparse::{swar, Url};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where tier 2 gets page snapshots from. Production would put a crawler
/// here; the daemon uses [`SyntheticFetcher`] (a deterministic stand-in
/// world) and tests/benches use [`MapFetcher`] with exact bodies.
///
/// `None` means the snapshot is unavailable (site down, non-HTML, fetch
/// error); the resolver negative-caches the URL instead of classifying.
pub trait SnapshotFetcher: Send + Sync {
    /// The page body for `url`, if one can be obtained.
    fn fetch(&self, url: &str) -> Option<String>;
}

/// A fetcher serving exact bodies from an in-memory map — the test and
/// loadgen backend, where miss URLs are generated together with their
/// HTML.
#[derive(Default)]
pub struct MapFetcher {
    map: RwLock<HashMap<String, String>>,
}

impl MapFetcher {
    /// An empty fetcher.
    pub fn new() -> MapFetcher {
        MapFetcher::default()
    }

    /// Register the body served for `url`.
    pub fn insert(&self, url: impl Into<String>, html: impl Into<String>) {
        self.map.write().insert(url.into(), html.into());
    }

    /// Number of registered bodies.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no bodies are registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl SnapshotFetcher for MapFetcher {
    fn fetch(&self, url: &str) -> Option<String> {
        self.map.read().get(url).cloned()
    }
}

fn fnv1a(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// A deterministic synthetic snapshot source: every URL hashes to one of
/// a pre-generated pool of ground-truth sites (phishing and benign), so a
/// daemon without a real crawler still exercises the full tier-2 path
/// with reproducible results.
pub struct SyntheticFetcher {
    bodies: Vec<String>,
}

impl SyntheticFetcher {
    /// Generate a pool of `n_phish + n_benign` bodies from `seed`.
    pub fn new(seed: u64) -> SyntheticFetcher {
        let corpus = build(&GroundTruthConfig {
            n_phish: 24,
            n_benign: 24,
            seed,
        });
        SyntheticFetcher {
            bodies: corpus.into_iter().map(|s| s.site.html).collect(),
        }
    }
}

impl SnapshotFetcher for SyntheticFetcher {
    fn fetch(&self, url: &str) -> Option<String> {
        let i = (fnv1a(url) % self.bodies.len() as u64) as usize;
        Some(self.bodies[i].clone())
    }
}

/// A minimal real-page fetcher: `GET` over a plain [`TcpStream`], no
/// TLS, no redirects, no external dependencies. Enough for
/// `--classify-on-miss` to pull live pages from `http://` endpoints —
/// local crawler sidecars, test servers, the ops plane — while
/// `https://` URLs (which would need a TLS stack) and every failure
/// mode map to `None`, which the resolver treats as "snapshot
/// unavailable" and negative-caches.
///
/// The request is pinned to HTTP/1.0 so compliant servers reply with a
/// whole body and close — sidestepping chunked transfer decoding — and
/// the body read is capped so a hostile endpoint cannot balloon
/// memory.
pub struct HttpFetcher {
    connect_timeout: Duration,
    io_timeout: Duration,
    max_body_bytes: usize,
}

impl Default for HttpFetcher {
    fn default() -> HttpFetcher {
        HttpFetcher {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            max_body_bytes: 2 << 20,
        }
    }
}

impl HttpFetcher {
    /// A fetcher with default timeouts (2 s connect, 5 s read) and a
    /// 2 MiB body cap.
    pub fn new() -> HttpFetcher {
        HttpFetcher::default()
    }

    /// Override the timeouts and body cap.
    pub fn with_limits(
        connect_timeout: Duration,
        io_timeout: Duration,
        max_body_bytes: usize,
    ) -> HttpFetcher {
        HttpFetcher {
            connect_timeout,
            io_timeout,
            max_body_bytes,
        }
    }

    fn fetch_inner(&self, url: &str) -> Option<String> {
        use std::io::{Read, Write};
        use std::net::{TcpStream, ToSocketAddrs};

        let rest = url.strip_prefix("http://")?;
        let (host_port, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host_port.is_empty() {
            return None;
        }
        let host = host_port.rsplit_once(':').map_or(host_port, |(h, p)| {
            if p.chars().all(|c| c.is_ascii_digit()) {
                h
            } else {
                host_port
            }
        });
        let addr = if host_port.contains(':') {
            host_port.to_socket_addrs().ok()?.next()?
        } else {
            (host_port, 80).to_socket_addrs().ok()?.next()?
        };
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout).ok()?;
        stream.set_read_timeout(Some(self.io_timeout)).ok()?;
        stream.set_write_timeout(Some(self.io_timeout)).ok()?;
        stream
            .write_all(
                format!(
                    "GET {path} HTTP/1.0\r\nHost: {host}\r\nAccept: text/html\r\n\
                     Connection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .ok()?;
        let mut raw = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        let cap = self.max_body_bytes + 16 * 1024; // headers allowance
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    raw.extend_from_slice(&chunk[..n]);
                    if raw.len() > cap {
                        return None;
                    }
                }
                Err(_) => return None,
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let (head, body) = text.split_once("\r\n\r\n")?;
        let status_line = head.lines().next()?;
        let mut parts = status_line.split_whitespace();
        let proto = parts.next()?;
        if !proto.starts_with("HTTP/1.") {
            return None;
        }
        let status: u16 = parts.next()?.parse().ok()?;
        if !(200..300).contains(&status) {
            return None;
        }
        if body.len() > self.max_body_bytes {
            return None;
        }
        Some(body.to_string())
    }
}

impl SnapshotFetcher for HttpFetcher {
    fn fetch(&self, url: &str) -> Option<String> {
        self.fetch_inner(url)
    }
}

/// The resolver's notion of "now", abstracted so TTL behaviour is
/// testable under `simclock` control.
pub trait ResolverClock: Send + Sync {
    /// Current time.
    fn now(&self) -> SimTime;
}

/// Wall time: whole seconds elapsed since the clock was created.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock starting at the simulation epoch now.
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl ResolverClock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_secs())
    }
}

/// A hand-advanced clock for TTL tests.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at the epoch.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward.
    pub fn advance(&self, d: SimDuration) {
        self.now.fetch_add(d.0, Ordering::SeqCst);
    }
}

impl ResolverClock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime(self.now.load(Ordering::SeqCst))
    }
}

/// Tuning for a [`TieredResolver`].
#[derive(Debug, Clone)]
pub struct TieredResolverConfig {
    /// Classification decision threshold: tier-2 scores at or above it are
    /// phishing (journaled), below it safe (negative-cached). Provisional
    /// verdicts for queued residue use the same cut on the tier-1 score.
    pub threshold: f64,
    /// False-negative budget for the tier-1 confident-safe cutoff
    /// calibration (fraction of training phish the pre-filter may wave
    /// through to the negative cache).
    pub prefilter_max_fnr: f64,
    /// Bound on the classify queue; admissions beyond it are shed.
    pub queue_cap: usize,
    /// URLs per classify microbatch handed to the `par` pool.
    pub microbatch: usize,
    /// How long a safe (negative) verdict suppresses re-classification.
    pub negative_ttl: SimDuration,
    /// Ground-truth corpus the bootstrap path trains on.
    pub corpus: GroundTruthConfig,
    /// Seed for model training.
    pub train_seed: u64,
}

impl Default for TieredResolverConfig {
    fn default() -> Self {
        TieredResolverConfig {
            threshold: 0.5,
            prefilter_max_fnr: 0.02,
            queue_cap: 4096,
            microbatch: 64,
            negative_ttl: SimDuration(3600),
            corpus: GroundTruthConfig::tiny(),
            train_seed: 0xF5EE_F00D,
        }
    }
}

/// The trained model pair a resolver serves with: the URL-only pre-filter
/// with its calibrated cutoff, and the full-page stack model.
pub struct ResolverModels {
    prefilter: Gbdt,
    cutoff: f64,
    stack: AugmentedStackModel,
}

impl ResolverModels {
    /// Train both tiers on `corpus` and calibrate the confident-safe
    /// cutoff to `cfg.prefilter_max_fnr`.
    pub fn train(corpus: &[LabeledSite], cfg: &TieredResolverConfig) -> ResolverModels {
        let mut rng = Rng64::new(cfg.train_seed);
        let mut data = Dataset::new(
            [
                "url_len",
                "suspicious_symbols",
                "sensitive_words",
                "brand_score",
                "digit_ratio",
                "host_dots",
                "host_hyphens",
                "ip_host",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        for site in corpus {
            if let Ok(url) = Url::parse(&site.site.url) {
                data.push(url_features(&url), site.label);
            }
        }
        let prefilter = Gbdt::train(&GbdtConfig::classic(), &data, &mut rng);
        let scores = prefilter.predict_all(&data);
        let cutoff = threshold_at_fnr(data.labels(), &scores, cfg.prefilter_max_fnr);
        let stack = AugmentedStackModel::train(corpus, &StackModelConfig::tiny(), &mut rng);
        ResolverModels {
            prefilter,
            cutoff,
            stack,
        }
    }

    /// Override the calibrated cutoff (tests force tier routing with it:
    /// `0.0` sends everything to tier 2, `f64::INFINITY` nothing).
    pub fn with_cutoff(mut self, cutoff: f64) -> ResolverModels {
        self.cutoff = cutoff;
        self
    }

    /// The calibrated confident-safe cutoff.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Tier-1 score for a parsed URL.
    pub fn prefilter_score(&self, url: &Url) -> f64 {
        self.prefilter.predict_proba(&url_features(url))
    }

    /// The tier-2 model (offline equivalence tests score through it).
    pub fn stack(&self) -> &AugmentedStackModel {
        &self.stack
    }
}

/// What produced a negative-cache entry — kept so per-tier accounting can
/// attribute repeat hits to the tier that originally served them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NegativeSrc {
    Prefilter,
    Model,
    Unfetchable,
    Rejected,
}

struct NegativeEntry {
    score: f64,
    expires: SimTime,
    src: NegativeSrc,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<String>,
    /// Queued or mid-classification; admission dedup key.
    pending: HashSet<String>,
    inflight: usize,
}

struct ResolverMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    hit_index: Arc<Counter>,
    hit_prefilter: Arc<Counter>,
    hit_negative_prefilter: Arc<Counter>,
    hit_negative_model: Arc<Counter>,
    hit_negative_unfetchable: Arc<Counter>,
    hit_negative_rejected: Arc<Counter>,
    hit_provisional: Arc<Counter>,
    enqueued: Arc<Counter>,
    pending_hits: Arc<Counter>,
    shed: Arc<Counter>,
    cold: Arc<Counter>,
    rejected: Arc<Counter>,
    negative_expired: Arc<Counter>,
    classified: Arc<Counter>,
    classified_phishing: Arc<Counter>,
    classified_safe: Arc<Counter>,
    journaled: Arc<Counter>,
    journal_errors: Arc<Counter>,
    fetch_failed: Arc<Counter>,
    prefilter_us: Arc<Histogram>,
    classify_batch_us: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    negative_entries: Arc<Gauge>,
}

impl ResolverMetrics {
    fn new() -> ResolverMetrics {
        let registry = Registry::new();
        let tier = |t: &str| registry.counter("resolver_tier_hits_total", &[("tier", t)]);
        let neg = |s: &str| {
            registry.counter(
                "resolver_tier_hits_total",
                &[("tier", "negative"), ("src", s)],
            )
        };
        ResolverMetrics {
            requests: registry.counter("resolver_requests_total", &[]),
            hit_index: tier("index"),
            hit_prefilter: tier("prefilter"),
            hit_negative_prefilter: neg("prefilter"),
            hit_negative_model: neg("model"),
            hit_negative_unfetchable: neg("unfetchable"),
            hit_negative_rejected: neg("rejected"),
            hit_provisional: tier("provisional"),
            enqueued: registry.counter("resolver_classify_enqueued_total", &[]),
            pending_hits: registry.counter("resolver_classify_pending_hits_total", &[]),
            shed: registry.counter("resolver_classify_shed_total", &[]),
            cold: registry.counter("resolver_cold_misses_total", &[]),
            rejected: registry.counter("resolver_rejected_urls_total", &[]),
            negative_expired: registry.counter("resolver_negative_expired_total", &[]),
            classified: registry.counter("resolver_classified_total", &[]),
            classified_phishing: registry.counter("resolver_classified_phishing_total", &[]),
            classified_safe: registry.counter("resolver_classified_safe_total", &[]),
            journaled: registry.counter("resolver_journaled_total", &[]),
            journal_errors: registry.counter("resolver_journal_errors_total", &[]),
            fetch_failed: registry.counter("resolver_fetch_failed_total", &[]),
            prefilter_us: registry.histogram("resolver_tier_latency_us", &[("tier", "prefilter")]),
            classify_batch_us: registry
                .histogram("resolver_tier_latency_us", &[("tier", "classify_batch")]),
            queue_depth: registry.gauge("resolver_queue_depth", &[]),
            negative_entries: registry.gauge("resolver_negative_entries", &[]),
            registry,
        }
    }
}

/// The tiered resolver. Implements [`UrlChecker`], so it slots directly
/// into either serving engine in place of the bare index checker; see the
/// module docs for the tier walk.
pub struct TieredResolver {
    inner: Arc<dyn UrlChecker>,
    fetcher: Arc<dyn SnapshotFetcher>,
    clock: Arc<dyn ResolverClock>,
    cfg: TieredResolverConfig,
    models: RwLock<Option<Arc<ResolverModels>>>,
    negative: RwLock<HashMap<String, NegativeEntry>>,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    warm: AtomicBool,
    stop: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: ResolverMetrics,
}

impl TieredResolver {
    /// A resolver over pre-trained models: warm immediately. The worker
    /// thread starts consuming the classify queue at once.
    pub fn with_models(
        inner: Arc<dyn UrlChecker>,
        fetcher: Arc<dyn SnapshotFetcher>,
        clock: Arc<dyn ResolverClock>,
        models: Arc<ResolverModels>,
        cfg: TieredResolverConfig,
    ) -> Arc<TieredResolver> {
        let r = Self::build(inner, fetcher, clock, cfg);
        *r.models.write() = Some(models);
        r.warm.store(true, Ordering::SeqCst);
        Self::spawn_worker(&r);
        r
    }

    /// A resolver that trains its own models on a background thread (the
    /// daemon's startup path): serving begins immediately, `/readyz` stays
    /// 503 on the `classifier_warm` condition until training and a warm-up
    /// scoring pass finish, and cold misses queue up to be classified the
    /// moment the models land.
    pub fn bootstrap(
        inner: Arc<dyn UrlChecker>,
        fetcher: Arc<dyn SnapshotFetcher>,
        cfg: TieredResolverConfig,
    ) -> Arc<TieredResolver> {
        let r = Self::build(inner, fetcher, Arc::new(WallClock::new()), cfg);
        let trainer = {
            let r = r.clone();
            std::thread::spawn(move || {
                let corpus = build(&r.cfg.corpus);
                let models = Arc::new(ResolverModels::train(&corpus, &r.cfg));
                // Warm-up pass: fault in both models' hot paths before
                // declaring readiness, so the first real request pays no
                // first-touch cost.
                if let Ok(u) = Url::parse(&corpus[0].site.url) {
                    let _ = models.prefilter_score(&u);
                    let _ = models.stack.score_snapshot(&u, &corpus[0].site.html);
                }
                *r.models.write() = Some(models);
                r.warm.store(true, Ordering::SeqCst);
                // Wake the worker: queued cold misses are now classifiable.
                r.work_cv.notify_all();
            })
        };
        r.workers.lock().unwrap().push(trainer);
        Self::spawn_worker(&r);
        r
    }

    fn build(
        inner: Arc<dyn UrlChecker>,
        fetcher: Arc<dyn SnapshotFetcher>,
        clock: Arc<dyn ResolverClock>,
        cfg: TieredResolverConfig,
    ) -> Arc<TieredResolver> {
        Arc::new(TieredResolver {
            inner,
            fetcher,
            clock,
            cfg,
            models: RwLock::new(None),
            negative: RwLock::new(HashMap::new()),
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            warm: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            metrics: ResolverMetrics::new(),
        })
    }

    fn spawn_worker(r: &Arc<TieredResolver>) {
        let worker = {
            let r = r.clone();
            std::thread::spawn(move || r.worker_loop())
        };
        r.workers.lock().unwrap().push(worker);
    }

    /// True once models are trained and warmed — the `/readyz`
    /// `classifier_warm` condition.
    pub fn is_warm(&self) -> bool {
        self.warm.load(Ordering::SeqCst)
    }

    /// Block until warm, up to `timeout`. Returns whether it happened.
    pub fn wait_warm(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_warm() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Block until the classify queue is empty and no batch is in flight,
    /// up to `timeout`. Returns whether it drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        while !st.queue.is_empty() || st.inflight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .idle_cv
                .wait_timeout(st, deadline - now)
                .expect("resolver state poisoned");
            st = guard;
        }
        true
    }

    /// Stop the background threads and join them. Idempotent; verdicts
    /// already journaled are durable regardless (the sidecar fsyncs per
    /// append), which is what the kill-mid-load recovery test relies on.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Snapshot of the resolver's own metrics (`resolver_*`), with the
    /// queue-depth and negative-cache gauges refreshed.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        {
            let st = self.state.lock().unwrap();
            self.metrics.queue_depth.set(st.queue.len() as i64);
        }
        self.metrics
            .negative_entries
            .set(self.negative.read().len() as i64);
        self.metrics.registry.snapshot()
    }

    /// The inner checker (tier 0 / tier 3).
    pub fn inner(&self) -> Arc<dyn UrlChecker> {
        self.inner.clone()
    }

    /// Resolve one miss (tier 0 already answered safe-unknown).
    fn resolve_miss(&self, url: &str) -> Verdict {
        let now = self.clock.now();

        // Negative cache: a fresh safe verdict answers without work; an
        // expired one is evicted and falls through to re-classification.
        if let Some(entry) = self.negative.read().get(url) {
            if now < entry.expires {
                match entry.src {
                    NegativeSrc::Prefilter => self.metrics.hit_negative_prefilter.inc(),
                    NegativeSrc::Model => self.metrics.hit_negative_model.inc(),
                    NegativeSrc::Unfetchable => self.metrics.hit_negative_unfetchable.inc(),
                    NegativeSrc::Rejected => self.metrics.hit_negative_rejected.inc(),
                }
                return Verdict::Safe(entry.score);
            }
        }
        {
            // Evict under the write lock, re-checking freshness: a publish
            // may have raced a refresh in.
            let mut neg = self.negative.write();
            if let Some(entry) = neg.get(url) {
                if now < entry.expires {
                    match entry.src {
                        NegativeSrc::Prefilter => self.metrics.hit_negative_prefilter.inc(),
                        NegativeSrc::Model => self.metrics.hit_negative_model.inc(),
                        NegativeSrc::Unfetchable => self.metrics.hit_negative_unfetchable.inc(),
                        NegativeSrc::Rejected => self.metrics.hit_negative_rejected.inc(),
                    }
                    return Verdict::Safe(entry.score);
                }
                neg.remove(url);
                self.metrics.negative_expired.inc();
            }
        }

        // Garbage guard: one SWAR pass, then the full parse. Unparsable
        // input can never be classified — cache the rejection.
        if swar::has_space_or_control(url) || Url::parse(url).is_err() {
            self.metrics.rejected.inc();
            self.insert_negative(url, 0.0, NegativeSrc::Rejected, now);
            return Verdict::Safe(0.0);
        }
        let parsed = Url::parse(url).expect("checked above");

        let Some(models) = self.models.read().clone() else {
            // Cold: models still training. Queue the miss so it resolves
            // once warm; answer the only thing known so far.
            self.metrics.cold.inc();
            return self.admit_residue(url, Verdict::Safe(0.0));
        };

        // Tier 1: URL-lexical pre-filter.
        let t0 = Instant::now();
        let p = models.prefilter_score(&parsed);
        self.metrics
            .prefilter_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
        if p < models.cutoff {
            self.metrics.hit_prefilter.inc();
            self.insert_negative(url, p, NegativeSrc::Prefilter, now);
            return Verdict::Safe(p);
        }

        // Tier 2 admission: provisional verdict from the tier-1 score,
        // classification deferred to the worker.
        let provisional = if p >= self.cfg.threshold {
            Verdict::Phishing(p)
        } else {
            Verdict::Safe(p)
        };
        self.admit_residue(url, provisional)
    }

    /// Put `url` on the classify queue unless it is already pending or
    /// the queue is full (shed). Always answers `provisional` now.
    fn admit_residue(&self, url: &str, provisional: Verdict) -> Verdict {
        self.metrics.hit_provisional.inc();
        let mut st = self.state.lock().unwrap();
        if st.pending.contains(url) {
            self.metrics.pending_hits.inc();
            return provisional;
        }
        if st.queue.len() >= self.cfg.queue_cap {
            self.metrics.shed.inc();
            return provisional;
        }
        st.pending.insert(url.to_string());
        st.queue.push_back(url.to_string());
        self.metrics.enqueued.inc();
        drop(st);
        self.work_cv.notify_one();
        provisional
    }

    fn insert_negative(&self, url: &str, score: f64, src: NegativeSrc, now: SimTime) {
        self.negative.write().insert(
            url.to_string(),
            NegativeEntry {
                score,
                expires: now + self.cfg.negative_ttl,
                src,
            },
        );
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let batch: Vec<String> = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if !st.queue.is_empty() && self.models.read().is_some() {
                        break;
                    }
                    st = self
                        .work_cv
                        .wait_timeout(st, Duration::from_millis(100))
                        .expect("resolver state poisoned")
                        .0;
                }
                let n = self.cfg.microbatch.min(st.queue.len());
                let batch: Vec<String> = st.queue.drain(..n).collect();
                st.inflight += batch.len();
                batch
            };
            let models = self
                .models
                .read()
                .clone()
                .expect("worker only runs with models");
            self.classify_batch(&batch, &models);
            let mut st = self.state.lock().unwrap();
            st.inflight -= batch.len();
            for url in &batch {
                st.pending.remove(url);
            }
            drop(st);
            self.idle_cv.notify_all();
        }
    }

    /// Tier 2 + tier 3 for one microbatch: fetch, sniff, score on the
    /// `par` pool, then journal phishing / negative-cache safe.
    fn classify_batch(&self, batch: &[String], models: &ResolverModels) {
        let t0 = Instant::now();
        let now = self.clock.now();
        let mut jobs: Vec<(usize, Url, String)> = Vec::with_capacity(batch.len());
        for (i, url) in batch.iter().enumerate() {
            let Some(html) = self.fetcher.fetch(url) else {
                self.metrics.fetch_failed.inc();
                self.insert_negative(url, 0.0, NegativeSrc::Unfetchable, now);
                continue;
            };
            if !looks_like_html(&html) {
                self.metrics.fetch_failed.inc();
                self.insert_negative(url, 0.0, NegativeSrc::Unfetchable, now);
                continue;
            }
            match Url::parse(url) {
                Ok(parsed) => jobs.push((i, parsed, html)),
                Err(_) => {
                    // Admission filters unparsable URLs; a direct `add`
                    // race could still surface one here.
                    self.metrics.rejected.inc();
                    self.insert_negative(url, 0.0, NegativeSrc::Rejected, now);
                }
            }
        }
        // Each item is pure and independent, so the scores are
        // bit-identical to serial `score_snapshot` calls at any
        // FREEPHISH_THREADS — the cross-engine equivalence tests pin this.
        let scores = freephish_par::par_map(&jobs, |(_, url, html)| {
            models.stack.score_snapshot(url, html)
        });
        for ((i, _, _), score) in jobs.iter().zip(&scores) {
            let url = &batch[*i];
            self.metrics.classified.inc();
            if *score >= self.cfg.threshold {
                self.metrics.classified_phishing.inc();
                match self.inner.add(url, *score) {
                    Ok(_) => self.metrics.journaled.inc(),
                    Err(e) => {
                        self.metrics.journal_errors.inc();
                        freephish_obs::warn(
                            "resolver",
                            format!("journal of inline verdict failed for {url}: {e}"),
                        );
                    }
                }
            } else {
                self.metrics.classified_safe.inc();
                self.insert_negative(url, *score, NegativeSrc::Model, now);
            }
        }
        self.metrics
            .classify_batch_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
    }
}

impl Drop for TieredResolver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl UrlChecker for TieredResolver {
    fn check(&self, url: &str) -> Verdict {
        self.metrics.requests.inc();
        let v = self.inner.check(url);
        if v.is_phishing() {
            self.metrics.hit_index.inc();
            return v;
        }
        self.resolve_miss(url)
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        // Tier 0 resolves the whole batch against one index snapshot;
        // only the misses walk the lower tiers.
        self.metrics.requests.add(urls.len() as u64);
        let mut out = self.inner.check_many(urls);
        for (url, v) in urls.iter().zip(out.iter_mut()) {
            if v.is_phishing() {
                self.metrics.hit_index.inc();
            } else {
                *v = self.resolve_miss(url);
            }
        }
        out
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        // Wire ADDs pass straight to the durable tier; drop any cached
        // negative so the next check sees the new verdict.
        let generation = self.inner.add(url, score)?;
        self.negative.write().remove(url);
        Ok(generation)
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::KnownSetChecker;

    fn corpus() -> Vec<LabeledSite> {
        build(&GroundTruthConfig {
            n_phish: 120,
            n_benign: 120,
            seed: 7_082_026,
        })
    }

    fn models(cfg: &TieredResolverConfig) -> Arc<ResolverModels> {
        Arc::new(ResolverModels::train(&corpus(), cfg))
    }

    fn resolver_with(
        cutoff: Option<f64>,
        fetcher: Arc<dyn SnapshotFetcher>,
        clock: Arc<dyn ResolverClock>,
        cfg: TieredResolverConfig,
    ) -> Arc<TieredResolver> {
        let mut m = ResolverModels::train(&corpus(), &cfg);
        if let Some(c) = cutoff {
            m = m.with_cutoff(c);
        }
        TieredResolver::with_models(
            Arc::new(KnownSetChecker::new(Vec::new())),
            fetcher,
            clock,
            Arc::new(m),
            cfg,
        )
    }

    /// A one-request HTTP server thread serving a canned response.
    fn canned_http_server(response: &'static str) -> std::net::SocketAddr {
        use std::io::{Read, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let mut buf = [0u8; 4096];
                // Read until the end of the request head.
                let mut seen = Vec::new();
                while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => seen.extend_from_slice(&buf[..n]),
                    }
                }
                let _ = stream.write_all(response.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn http_fetcher_fetches_real_pages_over_tcp() {
        let ok = canned_http_server(
            "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n<html><body>login page</body></html>",
        );
        let fetcher = HttpFetcher::new();
        assert_eq!(
            fetcher.fetch(&format!("http://{ok}/login")).as_deref(),
            Some("<html><body>login page</body></html>")
        );

        // Non-2xx, unsupported schemes, and dead hosts all map to None
        // (the resolver's "snapshot unavailable" signal).
        let missing = canned_http_server("HTTP/1.0 404 Not Found\r\n\r\ngone");
        assert_eq!(fetcher.fetch(&format!("http://{missing}/x")), None);
        assert_eq!(fetcher.fetch("https://needs-tls.example/"), None);
        assert_eq!(fetcher.fetch("not a url"), None);
        let dead = HttpFetcher::with_limits(
            Duration::from_millis(200),
            Duration::from_millis(200),
            1 << 20,
        );
        assert_eq!(dead.fetch("http://127.0.0.1:1/x"), None);
    }

    #[test]
    fn http_fetcher_feeds_classify_on_miss() {
        // The fetcher is a drop-in SnapshotFetcher: a resolver configured
        // with it classifies a page fetched over real TCP.
        let addr = canned_http_server(
            "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n\
             <html><form action=\"http://collector.test/post\">\
             <input type=password name=pw></form>\
             Verify your account password immediately</html>",
        );
        let cfg = TieredResolverConfig::default();
        let resolver = resolver_with(
            Some(0.0),
            Arc::new(HttpFetcher::new()),
            Arc::new(WallClock::new()),
            cfg,
        );
        let url = format!("http://{addr}/verify");
        // The first check enqueues the miss; drain runs the fetch →
        // parse → classify pipeline against the live TCP server.
        let v = resolver.check(&url);
        assert!(v.score().is_finite());
        assert!(resolver.drain(Duration::from_secs(10)));
        let snap = resolver.metrics_snapshot();
        assert_eq!(snap.counter("resolver_fetch_failed_total", &[]), 0);
        assert_eq!(snap.counter("resolver_classified_total", &[]), 1);
        resolver.shutdown();
    }

    #[test]
    fn tier0_hits_bypass_the_lower_tiers() {
        let inner = Arc::new(KnownSetChecker::new(vec![(
            "https://evil.weebly.com/".to_string(),
            0.93,
        )]));
        let cfg = TieredResolverConfig::default();
        let r = TieredResolver::with_models(
            inner,
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            models(&cfg),
            cfg,
        );
        let v = r.check("https://evil.weebly.com/");
        assert!(v.is_phishing());
        let snap = r.metrics_snapshot();
        assert_eq!(
            snap.counter("resolver_tier_hits_total", &[("tier", "index")]),
            1
        );
        assert_eq!(snap.counter("resolver_classify_enqueued_total", &[]), 0);
        r.shutdown();
    }

    #[test]
    fn prefilter_serves_confident_safe_without_classification() {
        let cfg = TieredResolverConfig::default();
        // Cutoff above every score: everything is confidently safe.
        let r = resolver_with(
            Some(f64::INFINITY),
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            cfg,
        );
        let v = r.check("https://gardening-tips.wixsite.com/home");
        assert!(!v.is_phishing());
        assert!(r.drain(Duration::from_secs(5)));
        let snap = r.metrics_snapshot();
        assert_eq!(
            snap.counter("resolver_tier_hits_total", &[("tier", "prefilter")]),
            1
        );
        assert_eq!(snap.counter("resolver_classified_total", &[]), 0);
        // The second check is served by the negative cache, attributed to
        // the pre-filter that produced it.
        r.check("https://gardening-tips.wixsite.com/home");
        let snap = r.metrics_snapshot();
        assert_eq!(
            snap.counter(
                "resolver_tier_hits_total",
                &[("tier", "negative"), ("src", "prefilter")]
            ),
            1
        );
        r.shutdown();
    }

    #[test]
    fn residue_is_classified_journaled_and_hits_tier0_after() {
        let sites = corpus();
        let phish = sites.iter().find(|s| s.label == 1).unwrap();
        let fetcher = Arc::new(MapFetcher::new());
        fetcher.insert(&phish.site.url, &phish.site.html);
        let cfg = TieredResolverConfig::default();
        // Cutoff 0: nothing is confidently safe, everything residues.
        let r = resolver_with(
            Some(0.0),
            fetcher,
            Arc::new(ManualClock::new()),
            cfg.clone(),
        );
        let first = r.check(&phish.site.url);
        // Provisional verdict carries the tier-1 score.
        let _ = first;
        assert!(r.drain(Duration::from_secs(10)));
        let settled = r.check(&phish.site.url);
        assert!(settled.is_phishing(), "phishing page must settle phishing");
        // Bit-identical to the offline model.
        let m = ResolverModels::train(&corpus(), &cfg);
        let url = Url::parse(&phish.site.url).unwrap();
        let offline = m.stack().score_snapshot(&url, &phish.site.html);
        assert_eq!(settled.score().to_bits(), offline.to_bits());
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_classified_total", &[]), 1);
        assert_eq!(snap.counter("resolver_journaled_total", &[]), 1);
        // The settled check was a tier-0 hit, not a re-classification.
        assert_eq!(
            snap.counter("resolver_tier_hits_total", &[("tier", "index")]),
            1
        );
        r.shutdown();
    }

    #[test]
    fn fresh_negatives_never_reenter_the_queue_expired_ones_do() {
        let sites = corpus();
        let benign = sites.iter().find(|s| s.label == 0).unwrap();
        let fetcher = Arc::new(MapFetcher::new());
        fetcher.insert(&benign.site.url, &benign.site.html);
        let clock = Arc::new(ManualClock::new());
        let cfg = TieredResolverConfig {
            negative_ttl: SimDuration(600),
            ..TieredResolverConfig::default()
        };
        let r = resolver_with(Some(0.0), fetcher, clock.clone(), cfg);
        r.check(&benign.site.url);
        assert!(r.drain(Duration::from_secs(10)));
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_classified_total", &[]), 1);
        assert_eq!(snap.counter("resolver_classified_safe_total", &[]), 1);

        // Fresh: repeated checks are negative-cache hits, never enqueued.
        for _ in 0..5 {
            let v = r.check(&benign.site.url);
            assert!(!v.is_phishing());
        }
        assert!(r.drain(Duration::from_secs(5)));
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_classified_total", &[]), 1);
        assert_eq!(
            snap.counter(
                "resolver_tier_hits_total",
                &[("tier", "negative"), ("src", "model")]
            ),
            5
        );

        // Expired: the next check re-enters the classify queue.
        clock.advance(SimDuration(600));
        r.check(&benign.site.url);
        assert!(r.drain(Duration::from_secs(10)));
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_negative_expired_total", &[]), 1);
        assert_eq!(snap.counter("resolver_classified_total", &[]), 2);
        r.shutdown();
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let cfg = TieredResolverConfig {
            queue_cap: 2,
            ..TieredResolverConfig::default()
        };
        // No fetcher entries: classification will negative-cache as
        // unfetchable, but that is irrelevant here — we only watch the
        // admission. Use a cold resolver (no models): the worker cannot
        // consume, so the queue genuinely fills.
        let inner: Arc<dyn UrlChecker> = Arc::new(KnownSetChecker::new(Vec::new()));
        let r = TieredResolver::build(
            inner,
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            cfg,
        );
        for i in 0..5 {
            r.check(&format!("https://miss{i}.weebly.com/"));
        }
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_classify_enqueued_total", &[]), 2);
        assert_eq!(snap.counter("resolver_classify_shed_total", &[]), 3);
        r.shutdown();
    }

    #[test]
    fn duplicate_misses_deduplicate_while_pending() {
        let cfg = TieredResolverConfig::default();
        let inner: Arc<dyn UrlChecker> = Arc::new(KnownSetChecker::new(Vec::new()));
        // Cold resolver: the queue holds whatever is admitted.
        let r = TieredResolver::build(
            inner,
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            cfg,
        );
        for _ in 0..4 {
            r.check("https://same.weebly.com/");
        }
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_classify_enqueued_total", &[]), 1);
        assert_eq!(snap.counter("resolver_classify_pending_hits_total", &[]), 3);
        r.shutdown();
    }

    #[test]
    fn garbage_urls_are_rejected_and_cached() {
        let cfg = TieredResolverConfig::default();
        let r = resolver_with(
            None,
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            cfg,
        );
        let v = r.check("not a url at all");
        assert!(!v.is_phishing());
        let v = r.check("not a url at all");
        assert!(!v.is_phishing());
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_rejected_urls_total", &[]), 1);
        assert_eq!(
            snap.counter(
                "resolver_tier_hits_total",
                &[("tier", "negative"), ("src", "rejected")]
            ),
            1
        );
        assert_eq!(snap.counter("resolver_classify_enqueued_total", &[]), 0);
        r.shutdown();
    }

    #[test]
    fn unfetchable_pages_are_negative_cached_not_scored() {
        let cfg = TieredResolverConfig::default();
        let fetcher = Arc::new(MapFetcher::new());
        fetcher.insert("https://blob.weebly.com/", "{\"json\": true}");
        let r = resolver_with(Some(0.0), fetcher, Arc::new(ManualClock::new()), cfg);
        r.check("https://nosuchpage.weebly.com/");
        r.check("https://blob.weebly.com/");
        assert!(r.drain(Duration::from_secs(10)));
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("resolver_fetch_failed_total", &[]), 2);
        assert_eq!(snap.counter("resolver_classified_total", &[]), 0);
        r.shutdown();
    }

    #[test]
    fn wire_add_invalidates_the_negative_cache() {
        let cfg = TieredResolverConfig::default();
        let r = resolver_with(
            Some(f64::INFINITY),
            Arc::new(MapFetcher::new()),
            Arc::new(ManualClock::new()),
            cfg,
        );
        let url = "https://reported.wixsite.com/login";
        assert!(!r.check(url).is_phishing());
        // An analyst reports it over the wire.
        r.add(url, 0.97).unwrap();
        assert!(r.check(url).is_phishing());
        r.shutdown();
    }

    #[test]
    fn bootstrap_becomes_warm_and_flushes_cold_misses() {
        let sites = corpus();
        let phish = sites.iter().find(|s| s.label == 1).unwrap();
        let fetcher = Arc::new(MapFetcher::new());
        fetcher.insert(&phish.site.url, &phish.site.html);
        let cfg = TieredResolverConfig {
            corpus: GroundTruthConfig {
                n_phish: 60,
                n_benign: 60,
                seed: 0xB007,
            },
            ..TieredResolverConfig::default()
        };
        let inner: Arc<dyn UrlChecker> = Arc::new(KnownSetChecker::new(Vec::new()));
        let r = TieredResolver::bootstrap(inner, fetcher, cfg);
        // A miss arriving before warm-up is queued, not dropped.
        r.check(&phish.site.url);
        assert!(
            r.wait_warm(Duration::from_secs(120)),
            "trainer never warmed"
        );
        assert!(r.drain(Duration::from_secs(30)));
        let snap = r.metrics_snapshot();
        // The cold miss was classified once the models landed (unless the
        // trainer won the race, in which case it went through tier 1/2
        // normally — either way it was not lost).
        assert!(
            snap.counter("resolver_classified_total", &[])
                + snap.counter("resolver_tier_hits_total", &[("tier", "prefilter")])
                >= 1
        );
        r.shutdown();
    }
}
