//! The 109-brand catalog targeted by the simulated phishing campaigns.
//!
//! The paper's coders checked spoofing against the 409 brands of the
//! OpenPhish August-2022 monthly list and observed 109 distinct brands
//! across the six-month measurement (Figure 5 shows the head of the
//! distribution). That list is not redistributable, so this catalog
//! reconstructs a 109-brand population with the same *shape*: the heavily
//! hit consumer platforms at the head, then banks, logistics, crypto,
//! telcos and regional services in the tail. Campaign generators sample it
//! with a Zipf law so a handful of brands dominate, as in Figure 5.

/// Sector of a spoofed brand; used to pick page vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sector {
    /// Social networks and messaging.
    Social,
    /// Technology / software / email providers.
    Tech,
    /// Banks and payment processors.
    Finance,
    /// Streaming and entertainment.
    Streaming,
    /// Parcel carriers and postal services.
    Logistics,
    /// Telecom operators.
    Telecom,
    /// Online retail.
    Retail,
    /// Cryptocurrency exchanges and wallets.
    Crypto,
    /// Travel, government and everything else.
    Other,
}

/// One spoofable brand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brand {
    /// Display name ("PayPal").
    pub name: &'static str,
    /// Lower-case token used in URLs and matching ("paypal").
    pub token: &'static str,
    /// Legitimate domain, for page chrome ("paypal.com").
    pub domain: &'static str,
    /// Sector, for page vocabulary.
    pub sector: Sector,
}

macro_rules! brand {
    ($name:literal, $token:literal, $domain:literal, $sector:ident) => {
        Brand {
            name: $name,
            token: $token,
            domain: $domain,
            sector: Sector::$sector,
        }
    };
}

/// The catalog, ordered head-first (index 0 is the most-targeted brand, as
/// in Figure 5). Exactly 109 entries.
pub const BRANDS: &[Brand] = &[
    brand!("Facebook", "facebook", "facebook.com", Social),
    brand!("Microsoft", "microsoft", "microsoft.com", Tech),
    brand!("Netflix", "netflix", "netflix.com", Streaming),
    brand!("AT&T", "att", "att.com", Telecom),
    brand!("PayPal", "paypal", "paypal.com", Finance),
    brand!("Instagram", "instagram", "instagram.com", Social),
    brand!("WhatsApp", "whatsapp", "whatsapp.com", Social),
    brand!("Amazon", "amazon", "amazon.com", Retail),
    brand!("Apple", "apple", "apple.com", Tech),
    brand!("Chase", "chase", "chase.com", Finance),
    brand!("Google", "google", "google.com", Tech),
    brand!("Outlook", "outlook", "outlook.com", Tech),
    brand!("DHL", "dhl", "dhl.com", Logistics),
    brand!("USPS", "usps", "usps.com", Logistics),
    brand!("Adobe", "adobe", "adobe.com", Tech),
    brand!("Coinbase", "coinbase", "coinbase.com", Crypto),
    brand!("Wells Fargo", "wellsfargo", "wellsfargo.com", Finance),
    brand!(
        "Bank of America",
        "bankofamerica",
        "bankofamerica.com",
        Finance
    ),
    brand!("Yahoo", "yahoo", "yahoo.com", Tech),
    brand!("Twitter", "twitter", "twitter.com", Social),
    brand!("LinkedIn", "linkedin", "linkedin.com", Social),
    brand!("Office 365", "office365", "office.com", Tech),
    brand!("OneDrive", "onedrive", "onedrive.com", Tech),
    brand!("Dropbox", "dropbox", "dropbox.com", Tech),
    brand!("FedEx", "fedex", "fedex.com", Logistics),
    brand!("UPS", "ups", "ups.com", Logistics),
    brand!("eBay", "ebay", "ebay.com", Retail),
    brand!("Binance", "binance", "binance.com", Crypto),
    brand!("MetaMask", "metamask", "metamask.io", Crypto),
    brand!("Trust Wallet", "trustwallet", "trustwallet.com", Crypto),
    brand!("Citibank", "citibank", "citi.com", Finance),
    brand!("Capital One", "capitalone", "capitalone.com", Finance),
    brand!(
        "American Express",
        "americanexpress",
        "americanexpress.com",
        Finance
    ),
    brand!("HSBC", "hsbc", "hsbc.com", Finance),
    brand!("Barclays", "barclays", "barclays.co.uk", Finance),
    brand!("Santander", "santander", "santander.com", Finance),
    brand!(
        "Credit Agricole",
        "creditagricole",
        "credit-agricole.fr",
        Finance
    ),
    brand!("BNP Paribas", "bnpparibas", "bnpparibas.com", Finance),
    brand!("ING", "ing", "ing.com", Finance),
    brand!("Venmo", "venmo", "venmo.com", Finance),
    brand!("Cash App", "cashapp", "cash.app", Finance),
    brand!("Zelle", "zelle", "zellepay.com", Finance),
    brand!("Spotify", "spotify", "spotify.com", Streaming),
    brand!("Disney+", "disneyplus", "disneyplus.com", Streaming),
    brand!("Hulu", "hulu", "hulu.com", Streaming),
    brand!("HBO Max", "hbomax", "hbomax.com", Streaming),
    brand!("Steam", "steam", "steampowered.com", Streaming),
    brand!("Epic Games", "epicgames", "epicgames.com", Streaming),
    brand!("Roblox", "roblox", "roblox.com", Streaming),
    brand!("Verizon", "verizon", "verizon.com", Telecom),
    brand!("T-Mobile", "tmobile", "t-mobile.com", Telecom),
    brand!("Vodafone", "vodafone", "vodafone.com", Telecom),
    brand!("Orange", "orange", "orange.fr", Telecom),
    brand!("Telstra", "telstra", "telstra.com.au", Telecom),
    brand!("Comcast", "comcast", "xfinity.com", Telecom),
    brand!("Spectrum", "spectrum", "spectrum.net", Telecom),
    brand!("Walmart", "walmart", "walmart.com", Retail),
    brand!("Target", "target", "target.com", Retail),
    brand!("Costco", "costco", "costco.com", Retail),
    brand!("Alibaba", "alibaba", "alibaba.com", Retail),
    brand!("Mercado Libre", "mercadolibre", "mercadolibre.com", Retail),
    brand!("Shopify", "shopify", "shopify.com", Retail),
    brand!("Etsy", "etsy", "etsy.com", Retail),
    brand!("Rakuten", "rakuten", "rakuten.co.jp", Retail),
    brand!("Kraken", "kraken", "kraken.com", Crypto),
    brand!("Crypto.com", "cryptocom", "crypto.com", Crypto),
    brand!("Gemini", "gemini", "gemini.com", Crypto),
    brand!("Ledger", "ledger", "ledger.com", Crypto),
    brand!("Exodus", "exodus", "exodus.com", Crypto),
    brand!("OpenSea", "opensea", "opensea.io", Crypto),
    brand!("Gmail", "gmail", "gmail.com", Tech),
    brand!("iCloud", "icloud", "icloud.com", Tech),
    brand!("Zoom", "zoom", "zoom.us", Tech),
    brand!("Slack", "slack", "slack.com", Tech),
    brand!("GitHub", "github", "github.com", Tech),
    brand!("Docusign", "docusign", "docusign.com", Tech),
    brand!("Norton", "norton", "norton.com", Tech),
    brand!("McAfee", "mcafee", "mcafee.com", Tech),
    brand!("Telegram", "telegram", "telegram.org", Social),
    brand!("Snapchat", "snapchat", "snapchat.com", Social),
    brand!("TikTok", "tiktok", "tiktok.com", Social),
    brand!("Pinterest", "pinterest", "pinterest.com", Social),
    brand!("Reddit", "reddit", "reddit.com", Social),
    brand!("Discord", "discord", "discord.com", Social),
    brand!("Royal Mail", "royalmail", "royalmail.com", Logistics),
    brand!("Canada Post", "canadapost", "canadapost.ca", Logistics),
    brand!("Australia Post", "auspost", "auspost.com.au", Logistics),
    brand!("La Poste", "laposte", "laposte.fr", Logistics),
    brand!("Correos", "correos", "correos.es", Logistics),
    brand!("Hermes", "hermes", "myhermes.co.uk", Logistics),
    brand!("IRS", "irs", "irs.gov", Other),
    brand!("HMRC", "hmrc", "gov.uk", Other),
    brand!("Netflix Brasil", "netflixbr", "netflix.com", Streaming),
    brand!("Caixa", "caixa", "caixa.gov.br", Finance),
    brand!("Itau", "itau", "itau.com.br", Finance),
    brand!("Bradesco", "bradesco", "bradesco.com.br", Finance),
    brand!("BBVA", "bbva", "bbva.com", Finance),
    brand!(
        "Standard Bank",
        "standardbank",
        "standardbank.co.za",
        Finance
    ),
    brand!("Absa", "absa", "absa.co.za", Finance),
    brand!("SBI", "sbi", "onlinesbi.sbi", Finance),
    brand!("ICICI", "icici", "icicibank.com", Finance),
    brand!("HDFC", "hdfc", "hdfcbank.com", Finance),
    brand!("Airbnb", "airbnb", "airbnb.com", Other),
    brand!("Booking.com", "booking", "booking.com", Other),
    brand!("Expedia", "expedia", "expedia.com", Other),
    brand!("Uber", "uber", "uber.com", Other),
    brand!("Lyft", "lyft", "lyft.com", Other),
    brand!("DoorDash", "doordash", "doordash.com", Other),
    brand!("Instacart", "instacart", "instacart.com", Other),
];

/// Tokens of all brands, for URL brand matching.
pub fn brand_tokens() -> Vec<&'static str> {
    BRANDS.iter().map(|b| b.token).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_109_brands() {
        assert_eq!(BRANDS.len(), 109);
    }

    #[test]
    fn tokens_unique_and_lowercase() {
        let mut tokens: Vec<&str> = BRANDS.iter().map(|b| b.token).collect();
        tokens.sort_unstable();
        let before = tokens.len();
        tokens.dedup();
        assert_eq!(tokens.len(), before, "duplicate brand tokens");
        for b in BRANDS {
            assert_eq!(b.token, b.token.to_ascii_lowercase());
            assert!(!b.token.is_empty());
        }
    }

    #[test]
    fn head_is_consumer_platforms() {
        assert_eq!(BRANDS[0].name, "Facebook");
        assert_eq!(BRANDS[1].name, "Microsoft");
        assert_eq!(BRANDS[2].name, "Netflix");
    }

    #[test]
    fn every_brand_has_domain() {
        for b in BRANDS {
            assert!(b.domain.contains('.'), "{} has no domain", b.name);
        }
    }
}
