//! loadgen: the concurrent verdict-serving load record behind the
//! `serve_throughput` and `serve_latency` keys of `BENCH_PIPELINE.json`.
//!
//! Starts both serving engines in-process over an identical verdict set
//! and drives each with `FREEPHISH_LOADGEN_CONNS` (default 64) concurrent
//! client connections for `FREEPHISH_LOADGEN_SECS` (default 2) seconds:
//!
//! * **threaded / CHECK** — the seed's thread-per-connection line server,
//!   one synchronous `CHECK` RPC at a time per connection;
//! * **evented / CHECK** — the poll-loop engine on the same line
//!   protocol, isolating the event-loop-vs-thread-pool difference;
//! * **evented / CHECKN** — the poll-loop engine driven over the binary
//!   protocol with `FREEPHISH_LOADGEN_BATCH` (default 64) URLs per frame,
//!   the deployment shape for browser-fleet fanout.
//!
//! Throughput is URLs verdicted per second across all connections;
//! latency is per-RPC microseconds (p50/p99 over every sample). During
//! the CHECKN phase the evented engine's ops plane is mounted and a
//! scraper thread polls `/varz` mid-run, adding three server-side keys:
//! `serve_p999` (the rolling windowed quantiles the engine itself
//! measured), `serve_worker_utilization` (per-worker busy fraction) and
//! `ops_scrape_latency` (client-observed cost of a scrape under load).
//! Results merge into the existing record at `FREEPHISH_BENCH_OUT`
//! (default `BENCH_PIPELINE.json`) so `bench.sh` composes this with
//! perfbench.

mod cluster;
mod soak;

use bytes::BytesMut;
use freephish_core::extension::{KnownSetChecker, VerdictServer};
use freephish_core::groundtruth::{build, GroundTruthConfig};
use freephish_core::resolver::{
    MapFetcher, ResolverModels, TieredResolver, TieredResolverConfig, WallClock,
};
use freephish_core::verdictstore::EventedStoreChecker;
use freephish_serve::{
    decode_bin_reply, encode_bin_request, http_get, BinReply, BinRequest, EventedServer, OpsServer,
    ShardedIndex, UrlChecker, HANDSHAKE_OK,
};
use freephish_simclock::Rng64;
use freephish_store::testutil::TempDir;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The query pool: half the URLs are in the served verdict set, half are
/// unknown, so both lookup outcomes stay on the hot path.
fn url_pool(n: usize) -> (Vec<(String, f64)>, Vec<String>) {
    let known: Vec<(String, f64)> = (0..n)
        .map(|i| (format!("https://phish{i}.weebly.com/login"), 0.9))
        .collect();
    let pool: Vec<String> = known
        .iter()
        .map(|(u, _)| u.clone())
        .chain((0..n).map(|i| format!("https://clean{i}.wixsite.com/home")))
        .collect();
    (known, pool)
}

/// One closed-loop line-protocol connection: synchronous `CHECK` RPCs
/// until the deadline. Returns (urls checked, per-RPC latencies in µs).
fn line_worker(
    addr: SocketAddr,
    pool: Arc<Vec<String>>,
    stop: Instant,
    tid: usize,
) -> (u64, Vec<u64>) {
    let stream = TcpStream::connect(addr).expect("loadgen connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut urls = 0u64;
    let mut lat = Vec::new();
    let mut i = tid.wrapping_mul(7919);
    while Instant::now() < stop {
        let url = &pool[i % pool.len()];
        i += 1;
        let t0 = Instant::now();
        writer
            .write_all(format!("CHECK {url}\n").as_bytes())
            .expect("loadgen write");
        line.clear();
        reader.read_line(&mut line).expect("loadgen read");
        assert!(!line.is_empty(), "server closed mid-run");
        lat.push(t0.elapsed().as_micros() as u64);
        urls += 1;
    }
    (urls, lat)
}

/// One closed-loop binary-protocol connection: `CHECKN` frames of
/// `batch` URLs until the deadline.
fn batch_worker(
    addr: SocketAddr,
    pool: Arc<Vec<String>>,
    stop: Instant,
    tid: usize,
    batch: usize,
) -> (u64, Vec<u64>) {
    let mut stream = TcpStream::connect(addr).expect("loadgen connect");
    stream.set_nodelay(true).ok();
    stream.write_all(b"BINARY\n").expect("handshake write");
    let mut inbuf = BytesMut::new();
    let handshake = read_line_buffered(&mut stream, &mut inbuf);
    assert_eq!(handshake, HANDSHAKE_OK, "engine refused binary protocol");
    let mut outbuf = BytesMut::new();
    let mut urls = 0u64;
    let mut lat = Vec::new();
    let mut i = tid.wrapping_mul(7919);
    let mut tmp = [0u8; 16 * 1024];
    while Instant::now() < stop {
        let frame: Vec<String> = (0..batch)
            .map(|k| pool[(i + k) % pool.len()].clone())
            .collect();
        i += batch;
        let t0 = Instant::now();
        outbuf.clear();
        encode_bin_request(&mut outbuf, &BinRequest::CheckN(frame)).expect("encode CHECKN");
        stream.write_all(&outbuf).expect("loadgen write");
        loop {
            match decode_bin_reply(&mut inbuf).expect("decode reply") {
                Some(BinReply::VerdictN(vs)) => {
                    assert_eq!(vs.len(), batch);
                    break;
                }
                Some(BinReply::Busy) => panic!("loadgen shed: raise --max-inflight for bench"),
                Some(other) => panic!("unexpected reply {other:?}"),
                None => {
                    let n = stream.read(&mut tmp).expect("loadgen read");
                    assert!(n > 0, "server closed mid-run");
                    inbuf.extend_from_slice(&tmp[..n]);
                }
            }
        }
        lat.push(t0.elapsed().as_micros() as u64);
        urls += batch as u64;
    }
    (urls, lat)
}

/// Read one `\n`-terminated line through the shared accumulation buffer,
/// leaving any bytes after the newline (the first binary frame may ride
/// the same segment) in place for the frame decoder.
fn read_line_buffered(stream: &mut TcpStream, buf: &mut BytesMut) -> String {
    let mut tmp = [0u8; 4096];
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line = buf.split_to(pos + 1);
            return String::from_utf8_lossy(&line[..pos]).trim_end().to_string();
        }
        let n = stream.read(&mut tmp).expect("handshake read");
        assert!(n > 0, "server closed during handshake");
        buf.extend_from_slice(&tmp[..n]);
    }
}

/// Fan `conns` workers at one engine and fold their counts and samples.
fn drive<F>(conns: usize, secs: f64, worker: F) -> (f64, Vec<u64>)
where
    F: Fn(Instant, usize) -> (u64, Vec<u64>) + Send + Sync + 'static,
{
    let worker = Arc::new(worker);
    let start = Instant::now();
    let stop = start + Duration::from_secs_f64(secs);
    let handles: Vec<_> = (0..conns)
        .map(|tid| {
            let worker = worker.clone();
            std::thread::spawn(move || worker(stop, tid))
        })
        .collect();
    let mut urls = 0u64;
    let mut lat = Vec::new();
    for h in handles {
        let (n, mut l) = h.join().expect("loadgen worker panicked");
        urls += n;
        lat.append(&mut l);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (urls as f64 / elapsed, lat)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn latency_json(mut samples: Vec<u64>) -> serde_json::Value {
    samples.sort_unstable();
    serde_json::json!({
        "samples": samples.len(),
        "p50_us": percentile(&samples, 0.50),
        "p99_us": percentile(&samples, 0.99),
    })
}

/// A mid-run ops-plane scraper: polls `GET /varz` every `period` the way
/// a Prometheus scrape would, while the load phase runs, so the recorded
/// scrape cost and the server-side quantiles come from a server under
/// load. Returns (client-side GET latencies in µs, last /varz body).
struct OpsScraper {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(Vec<u64>, String)>,
}

impl OpsScraper {
    fn start(addr: SocketAddr, period: Duration) -> OpsScraper {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut lat = Vec::new();
            let last = loop {
                let t0 = Instant::now();
                let body = match http_get(addr, "/varz") {
                    Ok((200, body)) => {
                        lat.push(t0.elapsed().as_micros() as u64);
                        body
                    }
                    Ok((code, body)) => panic!("/varz returned {code}: {body}"),
                    Err(e) => panic!("/varz scrape failed: {e}"),
                };
                // Check after the scrape so the final body postdates the
                // stop request — it sees the whole load phase.
                if flag.load(Ordering::SeqCst) {
                    break body;
                }
                std::thread::sleep(period);
            };
            (lat, last)
        });
        OpsScraper { stop, handle }
    }

    fn finish(self) -> (Vec<u64>, String) {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("ops scraper panicked")
    }
}

/// Pull one windowed-quantile gauge (integer µs) out of a /varz body.
fn window_gauge(varz: &serde_json::Value, cmd: &str, q: &str) -> Option<i64> {
    varz["gauges"]
        .get(&format!(
            "serve_window_latency_us{{cmd=\"{cmd}\",q=\"{q}\"}}"
        ))
        .and_then(|v| v.as_i64())
}

/// Pull one labeled counter out of a resolver metrics snapshot.
fn tier_hits(snap: &freephish_obs::MetricsSnapshot, labels: &[(&str, &str)]) -> u64 {
    snap.counter("resolver_tier_hits_total", labels)
}

/// The classify-on-miss phase: the evented engine fronted by a
/// [`TieredResolver`] over a durable store checker, driven with a
/// workload where `miss_rate` of the traffic is never-seen URLs whose
/// generated HTML bodies back the tier-2 fetch. Ends with a
/// kill-mid-load restart: the resolver is stopped *without* draining its
/// queue, the store directory reopened cold, and every inline verdict
/// that was journaled must come back as a tier-0 hit with zero
/// re-classification.
fn miss_phase(
    conns: usize,
    secs: f64,
    batch: usize,
    miss_rate: f64,
    known: &[(String, f64)],
) -> serde_json::Value {
    // Miss corpus: mostly-benign never-seen sites with real generated
    // HTML — the traffic shape the pre-filter tier exists for. A seed
    // disjoint from the resolver's training corpus keeps this honest.
    let cfg = TieredResolverConfig::default();
    let miss_corpus = build(&GroundTruthConfig {
        n_phish: 64,
        n_benign: 576,
        seed: 0xA11_CE5,
    });
    let fetcher = Arc::new(MapFetcher::new());
    let miss_urls: Vec<String> = miss_corpus
        .iter()
        .map(|s| {
            fetcher.insert(&s.site.url, &s.site.html);
            s.site.url.clone()
        })
        .collect();
    let models = Arc::new(ResolverModels::train(&build(&cfg.corpus), &cfg));

    // Durable tier 0: an evented store checker on a scratch directory.
    // Known verdicts go straight into the index (they model journal
    // state, not inline classifications); only the resolver's own
    // verdicts reach the fsynced sidecar.
    let store_dir = TempDir::new("loadgen-miss");
    let checker =
        Arc::new(EventedStoreChecker::open(store_dir.path()).expect("open scratch store"));
    checker.index().publish(known.to_vec());
    let resolver = TieredResolver::with_models(
        checker.clone(),
        fetcher.clone(),
        Arc::new(WallClock::new()),
        models.clone(),
        cfg.clone(),
    );

    // Mixed workload pool, deterministic given the seed.
    let mut rng = Rng64::new(0x10AD_3141);
    let mixed: Vec<String> = (0..8192)
        .map(|_| {
            if rng.f64() < miss_rate {
                miss_urls[(rng.f64() * miss_urls.len() as f64) as usize % miss_urls.len()].clone()
            } else {
                known[(rng.f64() * known.len() as f64) as usize % known.len()]
                    .0
                    .clone()
            }
        })
        .collect();

    let mut evented =
        EventedServer::start(resolver.clone() as Arc<dyn UrlChecker>).expect("start miss engine");
    let e_addr = evented.addr();
    let p = Arc::new(mixed);
    let t0 = Instant::now();
    let (miss_rps, miss_lat) = drive(conns, secs, move |stop, tid| {
        batch_worker(e_addr, p.clone(), stop, tid, batch)
    });
    let elapsed = t0.elapsed().as_secs_f64();
    evented.shutdown();
    evented.drain(Duration::from_secs(5));

    // Per-tier accounting over the load window.
    let snap = resolver.metrics_snapshot();
    let requests = snap.counter("resolver_requests_total", &[]);
    let index_hits = tier_hits(&snap, &[("tier", "index")]);
    let prefilter_decided = tier_hits(&snap, &[("tier", "prefilter")]);
    let negative_prefilter = tier_hits(&snap, &[("tier", "negative"), ("src", "prefilter")]);
    let negative_model = tier_hits(&snap, &[("tier", "negative"), ("src", "model")]);
    let negative_unfetchable = tier_hits(&snap, &[("tier", "negative"), ("src", "unfetchable")]);
    let negative_rejected = tier_hits(&snap, &[("tier", "negative"), ("src", "rejected")]);
    let provisional = tier_hits(&snap, &[("tier", "provisional")]);
    let classified = snap.counter("resolver_classified_total", &[]);
    let shed = snap.counter("resolver_classify_shed_total", &[]);
    let miss_traffic = requests.saturating_sub(index_hits).max(1);
    // Tier 1 is the synchronous resolver fast path: the pre-filter model
    // plus the negative cache it shares with tier 2 (just as tier-2
    // phishing verdicts surface as tier-0 index hits, its safe verdicts
    // surface as tier-1 negative-cache hits). A miss is "served by tier 1"
    // when it is answered in-line without any classification work —
    // prefilter decision, negative-cache hit of any provenance, or a
    // provisional verdict while the URL waits in the classify queue.
    let fast_path = prefilter_decided
        + negative_prefilter
        + negative_model
        + negative_unfetchable
        + negative_rejected
        + provisional;
    let tier1_share = fast_path as f64 / miss_traffic as f64;
    let classify_per_sec = classified as f64 / elapsed;
    println!(
        "  miss({miss_rate:.2}) CHECKN: {miss_rps:>12.0} urls/s, \
         {classify_per_sec:.0} classified/s, tier-1 share {:.1}%",
        tier1_share * 100.0
    );
    assert!(
        tier1_share >= 0.80,
        "tier-1 fast path must serve >=80% of miss traffic, got {:.1}% \
         (fast path {fast_path} / misses {miss_traffic})",
        tier1_share * 100.0
    );

    // Which misses were journaled inline (phishing in tier 0 but not in
    // the seeded known set means the resolver classified and added them).
    let journaled: Vec<String> = miss_urls
        .iter()
        .filter(|u| checker.check(u).is_phishing())
        .cloned()
        .collect();

    // Kill mid-load: stop the resolver WITHOUT draining its queue — the
    // crash contract is that every verdict already journaled survives
    // (the sidecar fsyncs per append) and nothing else does.
    resolver.shutdown();
    drop(resolver);
    drop(checker);

    // Cold restart on the same directory.
    let checker2 =
        Arc::new(EventedStoreChecker::open(store_dir.path()).expect("reopen scratch store"));
    let recovered = checker2.len();
    assert_eq!(
        recovered,
        journaled.len(),
        "sidecar must recover exactly the journaled inline verdicts"
    );
    let resolver2 = TieredResolver::with_models(
        checker2,
        Arc::new(MapFetcher::new()),
        Arc::new(WallClock::new()),
        models,
        cfg,
    );
    for url in &journaled {
        assert!(
            resolver2.check(url).is_phishing(),
            "journaled verdict for {url} must be a tier-0 hit after restart"
        );
    }
    let snap2 = resolver2.metrics_snapshot();
    let replay_index_hits = tier_hits(&snap2, &[("tier", "index")]);
    let reclassified = snap2.counter("resolver_classified_total", &[])
        + snap2.counter("resolver_classify_enqueued_total", &[]);
    assert_eq!(
        replay_index_hits,
        journaled.len() as u64,
        "every replayed check must resolve in tier 0"
    );
    assert_eq!(reclassified, 0, "restart must not re-classify anything");
    resolver2.shutdown();
    println!("  restart: {recovered} journaled verdicts recovered, 0 re-classified");

    serde_json::json!({
        "miss_rate": miss_rate,
        "miss_pool": miss_urls.len(),
        "throughput_urls_per_sec": miss_rps,
        "latency_per_frame": latency_json(miss_lat),
        "classified": classified,
        "classify_per_sec": classify_per_sec,
        "classify_shed": shed,
        "tier_hit_rates": {
            "index": index_hits as f64 / requests.max(1) as f64,
            "prefilter": prefilter_decided as f64 / requests.max(1) as f64,
            "negative_prefilter": negative_prefilter as f64 / requests.max(1) as f64,
            "negative_model": negative_model as f64 / requests.max(1) as f64,
            "negative_unfetchable": negative_unfetchable as f64 / requests.max(1) as f64,
            "provisional": provisional as f64 / requests.max(1) as f64,
            "tier1_share_of_misses": tier1_share,
        },
        "restart_recovered_verdicts": recovered,
        "restart_reclassified": 0,
    })
}

/// Merge a JSON object of keys into the bench record at `out` without
/// clobbering keys owned by other phases.
fn merge_keys(out: &str, keys: &serde_json::Value) {
    let mut record: serde_json::Value = std::fs::read_to_string(out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({"schema_version": 1}));
    let obj = record
        .as_object_mut()
        .expect("bench record must be a JSON object");
    let mut merged: Vec<String> = Vec::new();
    for (k, v) in keys.as_object().expect("phase keys").iter() {
        obj.insert(k.clone(), v.clone());
        merged.push(k.clone());
    }
    std::fs::write(out, serde_json::to_string_pretty(&record).unwrap())
        .unwrap_or_else(|e| panic!("could not write {out}: {e}"));
    println!("merged {} into {out}", merged.join(", "));
}

fn main() {
    let conns = env_usize("FREEPHISH_LOADGEN_CONNS", 64);
    let batch = env_usize("FREEPHISH_LOADGEN_BATCH", 64).clamp(1, 256);
    let secs = env_usize("FREEPHISH_LOADGEN_SECS", 2) as f64;
    let out = std::env::var("FREEPHISH_BENCH_OUT").unwrap_or_else(|_| "BENCH_PIPELINE.json".into());
    // --miss-rate F: fraction of never-seen URLs mixed into the
    // classify-on-miss phase's workload.
    let mut miss_rate = 0.75f64;
    // --cluster: skip the single-node phases and run the multi-process
    // cluster phase (scaling sweep + failover proof) instead.
    let mut cluster_only = false;
    // --soak: skip the single-node phases and run the scale/soak phase
    // (streaming world build, 10M-entry bake, mmap load gate, sustained
    // mixed traffic with RSS/p99.9 gates) instead.
    let mut soak_only = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--cluster" => cluster_only = true,
            "--soak" => soak_only = true,
            "--miss-rate" => {
                i += 1;
                miss_rate = argv
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| {
                        eprintln!("usage: loadgen [--miss-rate F]  (F in 0..=1)");
                        std::process::exit(64);
                    });
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: loadgen [--miss-rate F] [--cluster] [--soak]"
                );
                std::process::exit(64);
            }
        }
        i += 1;
    }

    if cluster_only {
        println!("loadgen: cluster phase ({secs}s per sweep point, CHECKN batch {batch})");
        let keys = cluster::cluster_phase(secs, batch);
        merge_keys(&out, &keys);
        return;
    }

    if soak_only {
        let keys = soak::soak_phase(batch);
        merge_keys(&out, &keys);
        return;
    }

    let (known, pool) = url_pool(4096);
    let pool = Arc::new(pool);
    println!(
        "loadgen: {conns} connections, {secs}s per engine, CHECKN batch {batch}, \
         pool {} URLs ({} known)",
        pool.len(),
        known.len()
    );

    // Threaded engine: the seed's thread-per-connection line server.
    let mut threaded = VerdictServer::start(Arc::new(KnownSetChecker::new(known.clone())))
        .expect("start threaded engine");
    let t_addr = threaded.addr();
    let p = pool.clone();
    let (threaded_rps, threaded_lat) = drive(conns, secs, move |stop, tid| {
        line_worker(t_addr, p.clone(), stop, tid)
    });
    threaded.shutdown();
    threaded.drain(Duration::from_secs(5));
    println!("  threaded  CHECK : {threaded_rps:>12.0} urls/s");

    // Evented engine, line protocol then binary CHECKN, same verdict set.
    let index = ShardedIndex::with_default_shards();
    index.publish(known.clone());
    let mut evented = EventedServer::start(Arc::new(index)).expect("start evented engine");
    let e_addr = evented.addr();
    let p = pool.clone();
    let (evented_rps, evented_lat) = drive(conns, secs, move |stop, tid| {
        line_worker(e_addr, p.clone(), stop, tid)
    });
    println!("  evented   CHECK : {evented_rps:>12.0} urls/s");

    // CHECKN phase with the ops plane mounted: a scraper thread hits
    // /varz mid-run so `serve_p999`, the worker-utilization gauges and
    // the scrape cost itself are all measured under load.
    let mut ops = OpsServer::start(0, evented.ops_config()).expect("start ops plane");
    let scraper = OpsScraper::start(ops.addr(), Duration::from_millis(50));
    let p = pool.clone();
    let (eventedn_rps, eventedn_lat) = drive(conns, secs, move |stop, tid| {
        batch_worker(e_addr, p.clone(), stop, tid, batch)
    });
    let (scrape_lat, varz_body) = scraper.finish();
    ops.shutdown();
    evented.shutdown();
    evented.drain(Duration::from_secs(5));
    println!("  evented   CHECKN: {eventedn_rps:>12.0} urls/s");

    // Classify-on-miss phase: tiered resolver in front, miss-heavy
    // workload, ending in the kill-mid-load restart proof.
    let miss_record = miss_phase(conns, secs, batch, miss_rate, &known);

    let varz: serde_json::Value =
        serde_json::from_str(&varz_body).expect("final /varz body parses as JSON");
    let serve_p999 = serde_json::json!({
        "checkn_p50_us": window_gauge(&varz, "checkn", "p50"),
        "checkn_p99_us": window_gauge(&varz, "checkn", "p99"),
        "checkn_p999_us": window_gauge(&varz, "checkn", "p999"),
    });
    // Per-worker busy fraction, straight from the poll-loop gauges.
    let mut worker_bp: Vec<i64> = varz["gauges"]
        .as_object()
        .expect("/varz has a gauges object")
        .iter()
        .filter(|(k, _)| k.starts_with("serve_worker_utilization{"))
        .filter_map(|(_, v)| v.as_i64())
        .collect();
    worker_bp.sort_unstable();
    let utilization = serde_json::json!({
        "workers": worker_bp.len(),
        "min_basis_points": worker_bp.first().copied(),
        "max_basis_points": worker_bp.last().copied(),
        "mean_basis_points": if worker_bp.is_empty() { None } else {
            Some(worker_bp.iter().sum::<i64>() / worker_bp.len() as i64)
        },
    });
    let scrape_latency = latency_json(scrape_lat);
    println!(
        "  ops plane: checkn window p999 {:?}µs, {} scrapes",
        window_gauge(&varz, "checkn", "p999"),
        scrape_latency["samples"]
    );
    println!(
        "  evented CHECKN vs threaded CHECK: {:.1}x",
        eventedn_rps / threaded_rps.max(1.0)
    );

    // Merge into the perfbench record rather than clobbering it.
    let mut record: serde_json::Value = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({"schema_version": 1}));
    let throughput = serde_json::json!({
        "connections": conns,
        "duration_secs": secs,
        "checkn_batch": batch,
        "threaded_check_urls_per_sec": threaded_rps,
        "evented_check_urls_per_sec": evented_rps,
        "evented_checkn_urls_per_sec": eventedn_rps,
        "evented_checkn_vs_threaded_check": eventedn_rps / threaded_rps.max(1.0),
    });
    let latency = serde_json::json!({
        "threaded_check": latency_json(threaded_lat),
        "evented_check": latency_json(evented_lat),
        "evented_checkn_per_frame": latency_json(eventedn_lat),
    });
    let obj = record
        .as_object_mut()
        .expect("bench record must be a JSON object");
    obj.insert("serve_throughput".into(), throughput);
    obj.insert("serve_latency".into(), latency);
    obj.insert("serve_p999".into(), serve_p999);
    obj.insert("serve_worker_utilization".into(), utilization);
    obj.insert("ops_scrape_latency".into(), scrape_latency);
    obj.insert(
        "serve_miss_classify_per_sec".into(),
        miss_record["classify_per_sec"].clone(),
    );
    obj.insert(
        "serve_tier_hit_rates".into(),
        miss_record["tier_hit_rates"].clone(),
    );
    obj.insert("serve_miss_classify".into(), miss_record);
    std::fs::write(&out, serde_json::to_string_pretty(&record).unwrap())
        .unwrap_or_else(|e| panic!("could not write {out}: {e}"));
    println!(
        "merged serve_throughput, serve_latency, serve_p999, \
         serve_worker_utilization, ops_scrape_latency, \
         serve_miss_classify_per_sec and serve_tier_hit_rates into {out}"
    );
}
