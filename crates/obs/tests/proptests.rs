//! Property tests for the observability primitives: recording arbitrary
//! floats never panics, quantiles stay inside the observed range and are
//! monotone, and snapshot merging commutes with combined recording.

use freephish_obs::{escape_label_value, Histogram, HistogramSnapshot, WindowedHistogram};
use proptest::prelude::*;

proptest! {
    /// Any f64 — subnormals, zero, negatives, infinities, NaN — can be
    /// recorded without panicking, and the sample count only grows for
    /// non-NaN samples.
    #[test]
    fn recording_any_f64_never_panics(samples in proptest::collection::vec(
        proptest::num::f64::ANY, 0..200
    )) {
        let h = Histogram::new();
        let mut expected = 0u64;
        for &v in &samples {
            h.record(v);
            if !v.is_nan() {
                expected += 1;
            }
        }
        prop_assert_eq!(h.count(), expected);
        let s = h.snapshot();
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), expected);
    }

    /// Quantiles of any non-empty recording stay within the observed
    /// [min, max] and are monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(samples in proptest::collection::vec(
        prop_oneof![
            -1e12f64..1e12,
            Just(0.0),
            1e-12f64..1.0,
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
        1..300
    )) {
        let h = Histogram::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &samples {
            h.record(v);
            min = min.min(v);
            max = max.max(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = s.quantile(q).expect("non-empty histogram");
            prop_assert!(!est.is_nan());
            prop_assert!(est >= min, "quantile({}) = {} below min {}", q, est, min);
            prop_assert!(est <= max, "quantile({}) = {} above max {}", q, est, max);
            prop_assert!(est >= last, "quantile({}) = {} < previous {}", q, est, last);
            last = est;
        }
    }

    /// Merging two snapshots is equivalent to recording both sample sets
    /// into one histogram.
    #[test]
    fn merge_is_union(
        a in proptest::collection::vec(-1e9f64..1e9, 0..100),
        b in proptest::collection::vec(-1e9f64..1e9, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let reference = hall.snapshot();
        prop_assert_eq!(&merged.buckets, &reference.buckets);
        prop_assert_eq!(merged.count, reference.count);
        // min/max agree (== treats ±0.0 alike; both NaN only when empty).
        prop_assert!(merged.min == reference.min
            || (merged.min.is_nan() && reference.min.is_nan()));
        prop_assert!(merged.max == reference.max
            || (merged.max.is_nan() && reference.max.is_nan()));
    }

    /// The empty snapshot is a merge identity.
    #[test]
    fn empty_merge_identity(samples in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let reference = h.snapshot();
        let mut left = HistogramSnapshot::empty();
        left.merge(&reference);
        let mut right = reference.clone();
        right.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&left.buckets, &reference.buckets);
        prop_assert_eq!(&right.buckets, &reference.buckets);
        prop_assert_eq!(left.count, reference.count);
        prop_assert_eq!(right.min, reference.min);
    }

    /// A windowed histogram's `merged()` view equals merging its
    /// per-window snapshots by hand, for any interleaving of recording
    /// and manual window advances (including advances that wrap and
    /// evict old windows).
    #[test]
    fn windowed_merged_equals_merge_of_windows(
        ops in proptest::collection::vec((0.0f64..1e6, any::<bool>()), 0..200)
    ) {
        let w = WindowedHistogram::manual(4);
        for &(v, advance) in &ops {
            if advance {
                w.advance();
            }
            w.record(v);
        }
        let mut manual = HistogramSnapshot::empty();
        for (_, s) in w.window_snapshots() {
            manual.merge(&s);
        }
        let merged = w.merged();
        prop_assert_eq!(&manual.buckets, &merged.buckets);
        prop_assert_eq!(manual.count, merged.count);
        prop_assert_eq!(manual.sum, merged.sum);
        prop_assert!(manual.min == merged.min
            || (manual.min.is_nan() && merged.min.is_nan()));
        prop_assert!(manual.max == merged.max
            || (manual.max.is_nan() && merged.max.is_nan()));
    }

    /// Prometheus label-value escaping round-trips: the escaped form
    /// contains no unescaped `"`, `\` or newline, and unescaping
    /// recovers the original string exactly — for inputs deliberately
    /// dense in the three special characters.
    #[test]
    fn prometheus_escaping_round_trips(
        parts in proptest::collection::vec(prop_oneof![
            Just("\n".to_string()),
            Just("\"".to_string()),
            Just("\\".to_string()),
            Just("\\n".to_string()),
            "\\PC{0,6}",
        ], 0..24)
    ) {
        let original = parts.concat();
        let escaped = escape_label_value(&original);

        // Well-formedness: every special character is escaped, every
        // backslash starts a valid escape sequence.
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            prop_assert!(c != '"' && c != '\n', "unescaped {:?} in {:?}", c, escaped);
            if c == '\\' {
                let next = chars.next();
                prop_assert!(
                    matches!(next, Some('\\') | Some('"') | Some('n')),
                    "dangling or unknown escape {:?} in {:?}", next, escaped
                );
            }
        }

        // Round trip: decode and compare.
        let mut decoded = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => decoded.push('\\'),
                    Some('"') => decoded.push('"'),
                    Some('n') => decoded.push('\n'),
                    other => {
                        prop_assert!(false, "bad escape {:?} in {:?}", other, escaped);
                    }
                }
            } else {
                decoded.push(c);
            }
        }
        prop_assert_eq!(decoded, original);
    }
}
