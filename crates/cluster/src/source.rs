//! The primary side of replication: a listener that ships a store
//! directory's WAL to any number of followers.
//!
//! Each follower connection is one session: the follower says `HELLO`
//! with its resume cursor, the source decides between **resume** (the
//! cursor names a live segment at a valid record boundary — stream
//! from exactly there, re-shipping nothing) and **bootstrap** (no
//! usable cursor, or compaction has deleted the follower's segment —
//! ship the newest snapshot, or a `RESET`, then every live segment),
//! and then tails the directory, shipping records as the primary
//! appends them. The source never writes the store; it is a reader
//! exactly like [`freephish_store::TailFollower`], so it can run inside
//! the writing process or beside it.
//!
//! Cursor validation is strict: an offset that is not a record
//! boundary of the named segment (a forged or diverged cursor) demotes
//! the session to a bootstrap rather than shipping bytes that would
//! desynchronize the follower's framing.

use crate::wire::{decode_repl, encode_repl, ReplCursor, ReplFrame};
use bytes::BytesMut;
use freephish_obs::{Counter, Gauge, MetricsSnapshot, Registry};
use freephish_store::segment::{
    encode_frame_into, parse_segment_name, scan_buffer, segment_file_name, Torn, FRAME_OVERHEAD,
    SEGMENT_HEADER_LEN,
};
use freephish_store::snapshot::{load_snapshot, parse_snapshot_name, snapshot_file_name};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the replication source.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// How often an idle session re-reads the directory for new bytes.
    pub poll_interval: Duration,
    /// How long to wait for a connection's `HELLO` before dropping it.
    pub hello_timeout: Duration,
}

impl Default for SourceConfig {
    fn default() -> SourceConfig {
        SourceConfig {
            port: 0,
            poll_interval: Duration::from_millis(20),
            hello_timeout: Duration::from_secs(10),
        }
    }
}

/// List the indices of files in `dir` matching `parse`, sorted.
pub(crate) fn list_indexed(
    dir: &Path,
    parse: fn(&str) -> Option<u32>,
) -> std::io::Result<Vec<u32>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        if let Some(idx) = name.to_str().and_then(parse) {
            out.push(idx);
        }
    }
    out.sort_unstable();
    Ok(out)
}

struct SourceMetrics {
    registry: Registry,
    records_shipped: Arc<Counter>,
    bytes_shipped: Arc<Counter>,
    snapshots_shipped: Arc<Counter>,
    sessions_resume: Arc<Counter>,
    sessions_bootstrap: Arc<Counter>,
    followers: Arc<Gauge>,
}

impl SourceMetrics {
    fn new() -> SourceMetrics {
        let registry = Registry::new();
        SourceMetrics {
            records_shipped: registry.counter("cluster_source_records_shipped_total", &[]),
            bytes_shipped: registry.counter("cluster_source_bytes_shipped_total", &[]),
            snapshots_shipped: registry.counter("cluster_source_snapshots_shipped_total", &[]),
            sessions_resume: registry
                .counter("cluster_source_sessions_total", &[("mode", "resume")]),
            sessions_bootstrap: registry
                .counter("cluster_source_sessions_total", &[("mode", "bootstrap")]),
            followers: registry.gauge("cluster_source_followers", &[]),
            registry,
        }
    }
}

struct Shared {
    dir: PathBuf,
    cfg: SourceConfig,
    stop: AtomicBool,
    metrics: SourceMetrics,
}

/// The replication listener for one store directory.
pub struct ReplicationSource {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ReplicationSource {
    /// Serve `dir` on 127.0.0.1 with default tuning (ephemeral port).
    pub fn start(dir: impl AsRef<Path>) -> std::io::Result<ReplicationSource> {
        ReplicationSource::start_with(dir, SourceConfig::default())
    }

    /// Serve `dir` with explicit tuning.
    pub fn start_with(
        dir: impl AsRef<Path>,
        cfg: SourceConfig,
    ) -> std::io::Result<ReplicationSource> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            dir: dir.as_ref().to_path_buf(),
            cfg,
            stop: AtomicBool::new(false),
            metrics: SourceMetrics::new(),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let s = shared.clone();
        let sess = sessions.clone();
        let acceptor = std::thread::Builder::new()
            .name("repl-source".to_string())
            .spawn(move || accept_loop(s, sess, listener))?;
        Ok(ReplicationSource {
            addr,
            shared,
            acceptor: Some(acceptor),
            sessions,
        })
    }

    /// Where followers connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the `cluster_source_*` metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// A `'static` snapshot closure for merging the `cluster_source_*`
    /// series into an ops-plane scrape.
    pub fn snapshot_fn(&self) -> Arc<dyn Fn() -> MetricsSnapshot + Send + Sync> {
        let shared = self.shared.clone();
        Arc::new(move || shared.metrics.registry.snapshot())
    }

    /// Stop the listener and every session; idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationSource {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<Shared>, sessions: Arc<Mutex<Vec<JoinHandle<()>>>>, l: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match l.accept() {
            Ok((stream, peer)) => {
                let s = shared.clone();
                let h = std::thread::Builder::new()
                    .name("repl-session".to_string())
                    .spawn(move || {
                        s.metrics.followers.inc();
                        if let Err(e) = run_session(&s, stream) {
                            freephish_obs::debug(
                                "cluster",
                                format!("replication session with {peer} ended: {e}"),
                            );
                        }
                        s.metrics.followers.dec();
                    });
                match h {
                    Ok(h) => sessions.lock().push(h),
                    Err(e) => freephish_obs::warn("cluster", format!("spawn session: {e}")),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                freephish_obs::warn("cluster", format!("replication accept failed: {e}"));
                break;
            }
        }
    }
}

/// Read frames until one decodes, bounded by `deadline`.
fn read_frame(
    stream: &mut TcpStream,
    buf: &mut BytesMut,
    stop: &AtomicBool,
    deadline: Instant,
) -> std::io::Result<ReplFrame> {
    loop {
        if let Some(frame) = decode_repl(buf).map_err(invalid)? {
            return Ok(frame);
        }
        if stop.load(Ordering::SeqCst) {
            return Err(std::io::Error::other("source shutting down"));
        }
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(ErrorKind::TimedOut, "no HELLO"));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "follower closed",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

fn send(stream: &mut TcpStream, frame: &ReplFrame) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    encode_repl(&mut buf, frame).map_err(invalid)?;
    stream.write_all(&buf)
}

/// The record boundaries of a segment's current bytes: header end plus
/// each valid record's end offset, stopping at the first defect.
fn boundaries(bytes: &[u8]) -> Vec<u64> {
    let mut out = vec![SEGMENT_HEADER_LEN];
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return out;
    }
    let (records, _) = scan_buffer(&bytes[SEGMENT_HEADER_LEN as usize..]);
    let mut off = SEGMENT_HEADER_LEN;
    for r in &records {
        off += FRAME_OVERHEAD + r.len() as u64;
        out.push(off);
    }
    out
}

/// One follower session: handshake, placement, then tail-and-ship.
fn run_session(shared: &Shared, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf = BytesMut::new();
    let hello = read_frame(
        &mut stream,
        &mut buf,
        &shared.stop,
        Instant::now() + shared.cfg.hello_timeout,
    )?;
    let ReplFrame::Hello(cursor) = hello else {
        send(&mut stream, &ReplFrame::Error("expected HELLO".into())).ok();
        return Err(invalid(format!("expected HELLO, got {hello:?}")));
    };

    let mut cursor = Some(cursor);
    loop {
        // (Re-)place the session: resume at the cursor when it is a
        // valid boundary of a live segment, bootstrap otherwise. The
        // loop re-enters here whenever compaction deletes the segment
        // being streamed.
        let (mut seg, mut off) = place(shared, &mut stream, cursor.take())?;
        send(&mut stream, &ReplFrame::Segment { index: seg })?;

        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let segs = list_indexed(&shared.dir, parse_segment_name)?;
            let Some(&first) = segs.first() else {
                std::thread::sleep(shared.cfg.poll_interval);
                continue;
            };
            if seg < first {
                // Compacted out from under this session: re-bootstrap.
                break;
            }
            let bytes = match std::fs::read(shared.dir.join(segment_file_name(seg))) {
                Ok(b) => b,
                Err(e) if e.kind() == ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            };
            let mut shipped = false;
            if bytes.len() as u64 > off {
                let (records, torn) = scan_buffer(&bytes[off as usize..]);
                let mut out = BytesMut::new();
                for payload in &records {
                    off += FRAME_OVERHEAD + payload.len() as u64;
                    let mut frame = Vec::with_capacity(FRAME_OVERHEAD as usize + payload.len());
                    encode_frame_into(&mut frame, payload);
                    encode_repl(
                        &mut out,
                        &ReplFrame::Record {
                            segment: seg,
                            end_offset: off,
                            frame,
                        },
                    )
                    .map_err(invalid)?;
                    shared.metrics.records_shipped.inc();
                    shared
                        .metrics
                        .bytes_shipped
                        .add(FRAME_OVERHEAD + payload.len() as u64);
                    shipped = true;
                }
                match torn {
                    // A partial tail is the live append in progress.
                    None | Some(Torn::PartialFrame) => {}
                    Some(defect) => {
                        send(
                            &mut stream,
                            &ReplFrame::Error(format!("primary segment {seg} is corrupt")),
                        )
                        .ok();
                        return Err(invalid(format!(
                            "segment {seg} mid-file defect: {defect:?}"
                        )));
                    }
                }
                if shipped {
                    stream.write_all(&out)?;
                }
            }
            // Rotate once this segment is fully shipped and a later one
            // exists (the store only rotates after sealing the old
            // segment, so "a successor exists" marks it complete).
            let next = segs.iter().copied().find(|&s| s > seg);
            if let Some(next) = next {
                if off >= bytes.len() as u64 {
                    seg = next;
                    off = SEGMENT_HEADER_LEN;
                    send(&mut stream, &ReplFrame::Segment { index: seg })?;
                    continue;
                }
            }
            // Tip for lag accounting; doubles as a liveness heartbeat
            // and detects followers that went away while we idle.
            let tip_seg = *segs.last().expect("non-empty");
            let tip_len = std::fs::metadata(shared.dir.join(segment_file_name(tip_seg)))
                .map(|m| m.len())
                .unwrap_or(SEGMENT_HEADER_LEN);
            send(
                &mut stream,
                &ReplFrame::Tip {
                    segment: tip_seg,
                    offset: tip_len.max(SEGMENT_HEADER_LEN),
                },
            )?;
            if !shipped {
                std::thread::sleep(shared.cfg.poll_interval);
            }
        }
    }
}

/// Decide where a session starts. Returns `(segment, offset)` to stream
/// from, after sending any bootstrap frames.
fn place(
    shared: &Shared,
    stream: &mut TcpStream,
    cursor: Option<ReplCursor>,
) -> std::io::Result<(u32, u64)> {
    loop {
        let segs = list_indexed(&shared.dir, parse_segment_name)?;
        let Some(&first) = segs.first() else {
            // An empty directory: wait for the store to create it.
            if shared.stop.load(Ordering::SeqCst) {
                return Err(std::io::Error::other("source shutting down"));
            }
            std::thread::sleep(shared.cfg.poll_interval);
            continue;
        };

        // Resume: the cursor names a live segment at a valid boundary.
        if let Some(c) = cursor {
            if let Some(seg) = c.segment {
                if segs.contains(&seg) {
                    let bytes = std::fs::read(shared.dir.join(segment_file_name(seg)))?;
                    if boundaries(&bytes).contains(&c.offset) {
                        shared.metrics.sessions_resume.inc();
                        return Ok((seg, c.offset));
                    }
                    freephish_obs::warn(
                        "cluster",
                        format!(
                            "follower cursor ({seg}, {}) is not a record boundary; \
                             bootstrapping instead",
                            c.offset
                        ),
                    );
                }
            }
        }

        // Bootstrap: newest loadable snapshot plus all live segments,
        // or a bare RESET when no snapshot exists yet.
        shared.metrics.sessions_bootstrap.inc();
        let snaps = list_indexed(&shared.dir, parse_snapshot_name)?;
        let newest = snaps.iter().rev().find_map(|&seq| {
            load_snapshot(&shared.dir.join(snapshot_file_name(seq)), seq)
                .ok()
                .flatten()
                .map(|body| (seq, body))
        });
        match newest {
            Some((seq, body)) => {
                send(
                    stream,
                    &ReplFrame::Snapshot {
                        seq,
                        first_segment: first,
                        body,
                    },
                )?;
                shared.metrics.snapshots_shipped.inc();
            }
            None => send(
                stream,
                &ReplFrame::Reset {
                    first_segment: first,
                },
            )?,
        }
        return Ok((first, SEGMENT_HEADER_LEN));
    }
}
