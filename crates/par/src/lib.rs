//! `freephish-par` — a from-scratch, deterministic parallel execution
//! layer for the reproduction's embarrassingly-parallel hot paths.
//!
//! The paper's heaviest computations — the Appendix-A median-of-minimum
//! Levenshtein sweep (Table 1) and the per-tick crawl→feature→classify
//! loop over every observed URL — are data-parallel maps. This crate
//! provides exactly that shape and nothing more, built on
//! `std::thread::scope` (no rayon, matching the repo's no-new-deps
//! convention):
//!
//! * [`par_map`] / [`par_map_indexed`] / [`par_map_range`] — chunked
//!   fan-out over a scoped worker pool, with results **collected in input
//!   order**. Each input index is computed exactly once by a pure closure,
//!   so the output is a deterministic function of the input regardless of
//!   thread count or chunk interleaving.
//! * The **determinism contract**: `FREEPHISH_THREADS=1` (or one available
//!   core) degrades to the exact serial `iter().map()` path — no threads,
//!   no chunking — and any other thread count produces bit-identical
//!   output, because closures must not share mutable state (the API only
//!   hands them `&T`). Seeded RNG draws therefore stay in the serial
//!   caller; workers receive pre-forked [`Rng64`] values as input items
//!   (see `freephish-ml::stacking` for the idiom).
//! * Worker-pool observability through `freephish-obs`: `par_jobs_total`,
//!   `par_tasks_total`, `par_serial_jobs_total`, a `par_queue_depth`
//!   histogram (chunks still unclaimed at each claim), and
//!   `par_workers_busy` / `par_threads_configured` gauges, exported via
//!   [`metrics_snapshot`].
//!
//! Thread-count resolution order: [`with_thread_override`] (scoped,
//! test-friendly) → the `FREEPHISH_THREADS` environment variable →
//! `std::thread::available_parallelism()`.
//!
//! [`Rng64`]: https://docs.rs/ (freephish-simclock)

pub mod pool;

pub use pool::{par_map, par_map_indexed, par_map_range, par_map_with};

use freephish_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::cell::Cell;
use std::sync::{Arc, OnceLock};

/// Handles for the worker-pool metrics, resolved once against a global
/// registry; the hot path only touches atomics.
pub(crate) struct ParMetrics {
    registry: Registry,
    /// Parallel map invocations that fanned out to workers.
    pub jobs: Arc<Counter>,
    /// Invocations that degraded to the serial path (1 thread or tiny input).
    pub serial_jobs: Arc<Counter>,
    /// Individual items processed (serial or parallel).
    pub tasks: Arc<Counter>,
    /// Chunks left unclaimed at each claim — the queue-depth distribution.
    pub queue_depth: Arc<Histogram>,
    /// Workers currently inside a map (utilization gauge).
    pub workers_busy: Arc<Gauge>,
    /// The thread count the last pool resolved.
    pub threads_configured: Arc<Gauge>,
}

impl ParMetrics {
    fn new() -> ParMetrics {
        let registry = Registry::new();
        ParMetrics {
            jobs: registry.counter("par_jobs_total", &[]),
            serial_jobs: registry.counter("par_serial_jobs_total", &[]),
            tasks: registry.counter("par_tasks_total", &[]),
            queue_depth: registry.histogram("par_queue_depth", &[]),
            workers_busy: registry.gauge("par_workers_busy", &[]),
            threads_configured: registry.gauge("par_threads_configured", &[]),
            registry,
        }
    }
}

static METRICS: OnceLock<ParMetrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static ParMetrics {
    METRICS.get_or_init(ParMetrics::new)
}

/// Snapshot of the worker-pool metrics (`par_*`), mergeable into any other
/// [`MetricsSnapshot`] — the pipeline and bench harness fold this into
/// their own exports.
pub fn metrics_snapshot() -> MetricsSnapshot {
    metrics().registry.snapshot()
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with the pool's thread count pinned to `threads` on this thread
/// (nested maps included). This is how tests and benchmarks compare thread
/// counts in-process without touching the process-global environment.
pub fn with_thread_override<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    THREAD_OVERRIDE.with(|cell| {
        let prev = cell.replace(Some(threads.max(1)));
        let out = f();
        cell.set(prev);
        out
    })
}

/// The thread count maps resolve on this thread: the
/// [`with_thread_override`] scope if active, else `FREEPHISH_THREADS`,
/// else `available_parallelism()`; always at least 1.
pub fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    if let Some(n) = std::env::var("FREEPHISH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
