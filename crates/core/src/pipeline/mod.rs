//! The FreePhish runtime pipeline: streaming → pre-processing →
//! classification → reporting.
//!
//! [`Pipeline::run_batch`] drives the whole measurement window on the
//! ten-minute polling grid the paper used, returning one [`Detection`] per
//! URL the classifier flags. The [`streaming`] module is the poll-window
//! machinery; [`reporting`] files abuse reports and tallies the
//! Section 5.3 response statistics.

pub mod reporting;
pub mod streaming;

use crate::features::{FeatureSet, FeatureVector};
use crate::journal::{CheckpointEvent, ReportEvent, RunJournal, VerdictEvent, NONE_SECS};
use crate::models::augmented::AugmentedStackModel;
use crate::world::World;
use freephish_fwbsim::history::Platform;
use freephish_obs::{Counter, Gauge, Histogram, Level, MetricsSnapshot, Registry, Span, Stopwatch};
use freephish_simclock::{SimDuration, SimTime};
use freephish_socialsim::PostId;
use freephish_urlparse::Url;
use freephish_webgen::FwbKind;
use reporting::Reporter;
use std::sync::Arc;
use streaming::{ObservedPost, StreamingModule, POLL_INTERVAL};

/// One URL the classifier flagged as phishing.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The flagged URL.
    pub url: String,
    /// Hosting service.
    pub fwb: FwbKind,
    /// Platform it was observed on.
    pub platform: Platform,
    /// The post that carried it.
    pub post: PostId,
    /// When the streaming module first observed it (poll-grid time).
    pub observed_at: SimTime,
    /// Classifier score.
    pub score: f64,
}

/// Metric handles for the pipeline hot loop. Resolved against the registry
/// once at construction; the loop itself only touches atomics.
struct PipelineMetrics {
    registry: Registry,
    ticks: Arc<Counter>,
    posts_observed: Arc<Counter>,
    crawl_attempts: Arc<Counter>,
    sites_gone: Arc<Counter>,
    detections: Arc<Counter>,
    reports: Arc<Counter>,
    stage_poll: Arc<Histogram>,
    stage_crawl: Arc<Histogram>,
    stage_feature: Arc<Histogram>,
    stage_classify: Arc<Histogram>,
    stage_report: Arc<Histogram>,
    tick_seconds: Arc<Histogram>,
    last_tick_sim: Arc<Gauge>,
}

impl PipelineMetrics {
    fn new() -> PipelineMetrics {
        let registry = Registry::new();
        let stage = |s| registry.histogram("pipeline_stage_seconds", &[("stage", s)]);
        let (stage_poll, stage_crawl) = (stage("poll"), stage("crawl"));
        let (stage_feature, stage_classify) = (stage("feature"), stage("classify"));
        let stage_report = stage("report");
        PipelineMetrics {
            ticks: registry.counter("pipeline_ticks_total", &[]),
            posts_observed: registry.counter("pipeline_posts_observed_total", &[]),
            crawl_attempts: registry.counter("pipeline_crawl_attempts_total", &[]),
            sites_gone: registry.counter("pipeline_sites_gone_total", &[]),
            detections: registry.counter("pipeline_detections_total", &[]),
            reports: registry.counter("pipeline_reports_total", &[]),
            stage_poll,
            stage_crawl,
            stage_feature,
            stage_classify,
            stage_report,
            tick_seconds: registry.histogram("pipeline_tick_seconds", &[]),
            last_tick_sim: registry.gauge("pipeline_last_tick_sim_secs", &[]),
            registry,
        }
    }
}

/// Outcome of classifying one snapshot, with its stage timings sharded
/// alongside so parallel workers stay off the shared histograms.
struct Classified {
    /// `Some(score)` when flagged as phishing.
    score: Option<f64>,
    /// Feature-extraction seconds (None when the URL failed to parse).
    feature_secs: Option<f64>,
    /// Model-scoring seconds (None when the URL failed to parse).
    classify_secs: Option<f64>,
}

/// The assembled pipeline.
pub struct Pipeline {
    model: AugmentedStackModel,
    /// Classification threshold (paper uses 0.5).
    pub threshold: f64,
    metrics: PipelineMetrics,
}

impl Pipeline {
    /// Build a pipeline around a trained classifier.
    pub fn new(model: AugmentedStackModel) -> Pipeline {
        Pipeline {
            model,
            threshold: 0.5,
            metrics: PipelineMetrics::new(),
        }
    }

    /// Snapshot of every pipeline metric recorded so far: per-stage latency
    /// histograms (`pipeline_stage_seconds{stage=...}`), per-tick timing,
    /// the observation/detection/report counters, the worker-pool gauges
    /// (`par_*`) of the parallel classify stage, and the persistence-layer
    /// counters (`store_*`) when a run journal is attached.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.registry.snapshot();
        snapshot.merge(&freephish_par::metrics_snapshot());
        snapshot.merge(&crate::journal::store_metrics_snapshot());
        snapshot
    }

    /// Classify one observed snapshot without touching shared metrics:
    /// stage timings ride back in the result and are merged into the
    /// histograms at tick end, so parallel workers never contend on the
    /// stage atomics.
    fn classify_sharded(&self, url: &str, html: &str) -> Classified {
        let feature_watch = Stopwatch::start();
        let Ok(parsed) = Url::parse(url) else {
            return Classified {
                score: None,
                feature_secs: None,
                classify_secs: None,
            };
        };
        let v = FeatureVector::extract_fast(FeatureSet::Augmented, &parsed, html);
        let feature_secs = feature_watch.elapsed_secs();

        let classify_watch = Stopwatch::start();
        let score = self.model.score_features(&v.values);
        Classified {
            score: (score >= self.threshold).then_some(score),
            feature_secs: Some(feature_secs),
            classify_secs: Some(classify_watch.elapsed_secs()),
        }
    }

    /// Run the full pipeline over `[0, end)`: poll both feeds every ten
    /// minutes, classify every FWB URL observed, and report each detection
    /// to its hosting service (takedown fates are decided there) and the
    /// platform. Returns all detections plus the reporter's tallies.
    pub fn run_batch(&self, world: &mut World, end: SimTime) -> (Vec<Detection>, Reporter) {
        let mut stream = StreamingModule::new();
        let mut reporter = Reporter::new();
        let mut detections = Vec::new();

        let mut now = SimTime::ZERO;
        while now < end {
            let next = now + POLL_INTERVAL;
            self.run_tick(world, &mut stream, &mut reporter, &mut detections, next);
            now = next;
        }
        if freephish_obs::global_events().enabled(Level::Debug) {
            freephish_obs::event_at(
                Level::Debug,
                "pipeline",
                format!(
                    "batch complete: {} detections, {} reports",
                    detections.len(),
                    reporter.total_reports()
                ),
                end,
            );
        }
        (detections, reporter)
    }

    /// One ten-minute poll tick ending at `next`: poll both feeds, crawl
    /// everything observed, classify the live snapshots **in parallel**
    /// on the `freephish-par` pool, and report detections. Exposed so
    /// callers (live monitors, benchmarks) can drive the loop themselves;
    /// [`Pipeline::run_batch`] is this in a loop over the poll grid.
    ///
    /// Determinism: crawling and reporting stay serial against `&mut
    /// World`; the concurrent classify stage is a pure function of each
    /// borrowed snapshot and its results are re-collected in observation
    /// order, so detections are bit-identical at any `FREEPHISH_THREADS`.
    pub fn run_tick(
        &self,
        world: &mut World,
        stream: &mut StreamingModule,
        reporter: &mut Reporter,
        detections: &mut Vec<Detection>,
        next: SimTime,
    ) {
        self.run_tick_journaled(world, stream, reporter, detections, next, None)
            .expect("tick without a journal performs no I/O");
    }

    /// [`Pipeline::run_tick`] with an optional [`RunJournal`]: each
    /// detection is journaled as a verdict + report-outcome pair, and the
    /// tick ends with a durable checkpoint record (the journal's fsync
    /// point). With `journal = None` this is exactly `run_tick` and cannot
    /// fail.
    pub fn run_tick_journaled(
        &self,
        world: &mut World,
        stream: &mut StreamingModule,
        reporter: &mut Reporter,
        detections: &mut Vec<Detection>,
        next: SimTime,
        mut journal: Option<&mut RunJournal>,
    ) -> std::io::Result<()> {
        let m = &self.metrics;
        m.ticks.inc();
        let _tick = Span::enter(&m.tick_seconds).at(&m.last_tick_sim, next);

        let poll_watch = Stopwatch::start();
        let mut observed: Vec<ObservedPost> = stream.poll(world, next);
        poll_watch.record(&m.stage_poll);
        m.posts_observed.add(observed.len() as u64);

        // Crawl stage — serial: the snapshot registry is part of the
        // world's mutable state machine. Live snapshots are borrowed, not
        // copied; the borrow ends before the mutating report stage below.
        // Crawl latency is sampled 1-in-16: a crawl miss is a hash
        // lookup, and unconditional timestamping would cost more than
        // the work being measured.
        let jobs: Vec<(usize, &str)> = observed
            .iter()
            .enumerate()
            .filter_map(|(i, obs)| {
                let sampled = m.crawl_attempts.inc_and_get() & 0xF == 0;
                let crawl_watch = sampled.then(Stopwatch::start);
                let crawled = world.crawl(&obs.url, next);
                if let Some(watch) = crawl_watch {
                    watch.record(&m.stage_crawl);
                }
                if crawled.is_none() {
                    m.sites_gone.inc(); // site already gone when we got to it
                }
                crawled.map(|html| (i, html))
            })
            .collect();

        // Classify stage — parallel over the live snapshots. Per-task
        // stage timings are sharded into the results and merged below, so
        // workers never contend on the histogram atomics mid-sweep.
        let classified: Vec<Classified> = freephish_par::par_map(&jobs, |&(i, html)| {
            self.classify_sharded(&observed[i].url, html)
        });

        // Merge sharded stats and collect flagged URLs, in observation
        // order (the parallel map preserves it).
        let mut flagged: Vec<(usize, f64)> = Vec::new();
        for (&(i, _), c) in jobs.iter().zip(&classified) {
            if let Some(secs) = c.feature_secs {
                m.stage_feature.record(secs);
            }
            if let Some(secs) = c.classify_secs {
                m.stage_classify.record(secs);
            }
            if let Some(score) = c.score {
                flagged.push((i, score));
            }
        }
        drop(jobs); // ends the snapshot borrows; the world can mutate again

        // Report stage — serial: takedown fates mutate the world.
        for (i, score) in flagged {
            let obs = &mut observed[i];
            m.detections.inc();
            // Report to the hosting FWB (with screenshot, per the
            // paper's evidence-based reporting) and the platform.
            let report_watch = Stopwatch::start();
            let filed = reporter.report(world, obs.fwb, &obs.url, next);
            report_watch.record(&m.stage_report);
            m.reports.inc();
            detections.push(Detection {
                url: std::mem::take(&mut obs.url),
                fwb: obs.fwb,
                platform: obs.platform,
                post: obs.post,
                observed_at: next,
                score,
            });
            if let Some(j) = journal.as_deref_mut() {
                let d = detections.last().expect("just pushed");
                j.append_verdict(VerdictEvent {
                    url: d.url.clone(),
                    fwb: d.fwb,
                    platform: d.platform,
                    post: d.post.0,
                    observed_at_secs: d.observed_at.as_secs(),
                    score: d.score,
                })?;
                j.append_report(ReportEvent {
                    url: d.url.clone(),
                    fwb: d.fwb,
                    filed: filed.filed,
                    acknowledged: filed.acknowledged,
                    followed_up: filed.followed_up,
                    removal_at_secs: filed.removal_at.map_or(NONE_SECS, SimTime::as_secs),
                    account_terminated: filed.account_terminated,
                })?;
            }
        }

        if let Some(j) = journal {
            j.checkpoint(CheckpointEvent {
                tick_secs: next.as_secs(),
                scanned: stream.scanned_count() as u64,
                observed: stream.observed_count() as u64,
                detections_total: detections.len() as u64,
            })?;
        }
        Ok(())
    }
}

/// Convenience: interval alias re-exported for callers building timelines.
pub const POLL_SECS: u64 = 600;

/// Quantize an instant up to the next poll-grid point — the time an
/// entity's state change becomes *observable* to a 10-minute poller. This
/// is the analytic shortcut for per-URL polling loops: mathematically
/// identical to polling every 10 minutes, without simulating each poll.
pub fn quantize_to_poll(t: SimTime) -> SimTime {
    let s = t.as_secs();
    SimTime::from_secs(s.div_ceil(POLL_SECS) * POLL_SECS)
}

/// The polling interval as a duration.
pub fn poll_interval() -> SimDuration {
    SimDuration::from_secs(POLL_SECS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{self, CampaignConfig, RecordClass};
    use crate::groundtruth::{build, GroundTruthConfig};
    use freephish_ml::StackModelConfig;
    use freephish_simclock::Rng64;

    fn trained_model() -> AugmentedStackModel {
        let corpus = build(&GroundTruthConfig::tiny());
        let mut rng = Rng64::new(77);
        AugmentedStackModel::train(&corpus, &StackModelConfig::tiny(), &mut rng)
    }

    #[test]
    fn quantize_rounds_up_to_grid() {
        assert_eq!(quantize_to_poll(SimTime::from_secs(1)).as_secs(), 600);
        assert_eq!(quantize_to_poll(SimTime::from_secs(600)).as_secs(), 600);
        assert_eq!(quantize_to_poll(SimTime::from_secs(601)).as_secs(), 1200);
        assert_eq!(quantize_to_poll(SimTime::ZERO).as_secs(), 0);
    }

    #[test]
    fn pipeline_detects_most_phish_and_reports() {
        let mut world = World::new(42);
        let config = CampaignConfig {
            scale: 0.01,
            days: 10,
            benign_fraction: 0.3,
            seed: 42,
        };
        let records = campaign::run(&config, &mut world);
        let pipeline = Pipeline::new(trained_model());
        let (detections, reporter) = pipeline.run_batch(&mut world, SimTime::from_days(10));

        let n_phish = records
            .iter()
            .filter(|r| matches!(r.class, RecordClass::FwbPhish(_)))
            .count();
        // Recall: most FWB phishing URLs should be detected. Some are
        // legitimately missed (deleted before the first poll).
        let recall = detections.len() as f64 / n_phish as f64;
        assert!(
            recall > 0.75,
            "recall {recall} ({}/{n_phish})",
            detections.len()
        );

        // Precision: benign URLs should rarely be flagged.
        let benign_urls: std::collections::HashSet<&str> = records
            .iter()
            .filter(|r| matches!(r.class, RecordClass::BenignFwb(_)))
            .map(|r| r.url.as_str())
            .collect();
        let false_pos = detections
            .iter()
            .filter(|d| benign_urls.contains(d.url.as_str()))
            .count();
        assert!(
            (false_pos as f64) < 0.1 * detections.len() as f64,
            "false positives {false_pos} of {}",
            detections.len()
        );

        // Reports were filed — one per unique detected URL (attackers
        // occasionally reuse a site name, so detections can exceed the
        // number of distinct hosted sites).
        assert!(reporter.total_reports() > 0);
        assert!(reporter.total_reports() <= detections.len());
        let unique: std::collections::HashSet<&str> =
            detections.iter().map(|d| d.url.as_str()).collect();
        assert!(reporter.total_reports() >= unique.len() * 9 / 10);
    }

    #[test]
    fn detections_bit_identical_across_thread_counts() {
        // The determinism contract: the crawl stage draws all randomness
        // serially, classification fans out pure closures, and detections
        // are re-ordered by observation index — so a fixed-seed batch run
        // yields byte-identical detections at any thread count.
        let run = || {
            let mut world = World::new(44);
            let config = CampaignConfig {
                scale: 0.003,
                days: 3,
                benign_fraction: 0.2,
                seed: 44,
            };
            campaign::run(&config, &mut world);
            let pipeline = Pipeline::new(trained_model());
            pipeline.run_batch(&mut world, SimTime::from_days(3)).0
        };
        let serial = freephish_par::with_thread_override(1, run);
        let parallel = freephish_par::with_thread_override(8, run);
        assert_eq!(serial.len(), parallel.len());
        assert!(!serial.is_empty());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.url, p.url);
            assert_eq!(s.observed_at, p.observed_at);
            assert_eq!(s.score.to_bits(), p.score.to_bits());
        }
    }

    #[test]
    fn metrics_include_worker_pool_gauges() {
        let mut world = World::new(45);
        let config = CampaignConfig {
            scale: 0.003,
            days: 2,
            benign_fraction: 0.0,
            seed: 45,
        };
        campaign::run(&config, &mut world);
        let pipeline = Pipeline::new(trained_model());
        pipeline.run_batch(&mut world, SimTime::from_days(2));
        let snap = pipeline.metrics();
        let jobs = snap.counter("par_jobs_total", &[]) + snap.counter("par_serial_jobs_total", &[]);
        assert!(
            jobs > 0,
            "pipeline metrics should merge the freephish-par registry"
        );
    }

    #[test]
    fn observed_at_is_on_poll_grid() {
        let mut world = World::new(43);
        let config = CampaignConfig {
            scale: 0.003,
            days: 3,
            benign_fraction: 0.0,
            seed: 43,
        };
        campaign::run(&config, &mut world);
        let pipeline = Pipeline::new(trained_model());
        let (detections, _) = pipeline.run_batch(&mut world, SimTime::from_days(3));
        assert!(!detections.is_empty());
        for d in &detections {
            assert_eq!(d.observed_at.as_secs() % POLL_SECS, 0);
        }
    }
}
