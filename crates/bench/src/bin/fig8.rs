//! Figure 8: percentage of URLs with at most k engine detections per day
//! over the first seven days, per population and platform (the paper's
//! four panels).

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::analysis::vt_daily_at_most;
use freephish_fwbsim::history::Platform;

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e8);

    println!("\nFigure 8 — fraction of URLs at <=k detections, day 1..7\n");
    let mut json_rows = Vec::new();
    for (panel, fwb_pop, platform) in [
        ("FWB via Twitter", true, Platform::Twitter),
        ("FWB via Facebook", true, Platform::Facebook),
        ("Self-hosted via Twitter", false, Platform::Twitter),
        ("Self-hosted via Facebook", false, Platform::Facebook),
    ] {
        println!("Panel: {panel}");
        let mut t = TableWriter::new(&["k", "d1", "d2", "d3", "d4", "d5", "d6", "d7"]);
        for k in [2usize, 4, 6, 9] {
            let series = vt_daily_at_most(&m.observations, fwb_pop, platform, k);
            let mut row = vec![format!("<={k}")];
            row.extend(series.iter().map(|&(_, f)| format!("{:.0}%", f * 100.0)));
            t.row(row);
            json_rows.push(serde_json::json!({
                "panel": panel,
                "k": k,
                "series": series.iter().map(|&(d, f)| serde_json::json!([d, f])).collect::<Vec<_>>(),
            }));
        }
        t.print();
        println!();
    }
    println!("Paper shape: ~75% of FWB Twitter URLs still have only the 2 seed");
    println!("detections on day 1, and ~41% remain at <=4 after a week; the");
    println!("self-hosted panels drain much faster.");

    write_json(
        "fig8",
        &serde_json::json!({ "experiment": "fig8", "scale": scale, "series": json_rows }),
    );
}
