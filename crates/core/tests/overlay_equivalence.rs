//! Overlay read-path equivalence: the two-level mmap-baseline + live
//! delta stack must be observationally *bit-identical* to plain journal
//! replay, on both serving engines, through overwrites, manual adds,
//! restarts and in-process re-bakes.
//!
//! The contract under test: a baked index is nothing but a cache of a
//! journal prefix, so for every URL — baked-only, overwritten after the
//! bake, appended after the bake, manually added, or never seen — a
//! checker mounted on `bake + suffix replay` returns exactly the verdict
//! a checker that replayed the whole journal returns, down to the f64
//! bits.

use freephish_core::journal::{CheckpointEvent, RunJournal, RunMeta, VerdictEvent};
use freephish_core::verdictstore::{bake_index, EventedStoreChecker, StoreBacking, StoreChecker};
use freephish_fwbsim::history::Platform;
use freephish_serve::UrlChecker;
use freephish_store::testutil::TempDir;
use freephish_webgen::FwbKind;
use std::path::Path;

fn meta() -> RunMeta {
    RunMeta {
        seed: 17,
        days: 1,
        scale: 0.01,
        benign_fraction: 0.0,
        threshold: 0.5,
        end_secs: 86_400,
    }
}

fn verdict(n: u64, score: f64) -> VerdictEvent {
    VerdictEvent {
        url: format!("https://v{n}.weebly.com/"),
        fwb: FwbKind::Weebly,
        platform: Platform::Twitter,
        post: n,
        observed_at_secs: n * 60,
        score,
    }
}

fn checkpoint(journal: &mut RunJournal, tick: u64) {
    journal
        .checkpoint(CheckpointEvent {
            tick_secs: tick * 60,
            scanned: tick,
            observed: tick,
            detections_total: tick,
        })
        .unwrap();
}

/// Observational fingerprint of one lookup: block decision + exact bits.
fn observe(c: &dyn UrlChecker, url: &str) -> (bool, u64) {
    match c.check(url) {
        freephish_serve::Verdict::Phishing(s) => (true, s.to_bits()),
        freephish_serve::Verdict::Safe(s) => (false, s.to_bits()),
    }
}

/// Every URL class the overlay must agree on with pure replay.
fn probe_urls() -> Vec<String> {
    let mut urls: Vec<String> = (0..60)
        .map(|n| format!("https://v{n}.weebly.com/"))
        .collect();
    urls.push("https://never-journaled.wixsite.com/home".to_string());
    urls.push(String::new());
    urls
}

fn assert_equivalent(overlaid: &dyn UrlChecker, replayed: &dyn UrlChecker, ctx: &str) {
    for url in probe_urls() {
        assert_eq!(
            observe(overlaid, &url),
            observe(replayed, &url),
            "{ctx}: overlay and replay diverged on {url:?}"
        );
    }
}

/// Write the pre-bake journal: 40 verdicts with distinct score bits.
fn seed_journal(dir: &Path) -> RunJournal {
    let mut journal = RunJournal::create(dir, &meta()).unwrap();
    for n in 0..40 {
        journal
            .append_verdict(verdict(n, 0.5 + n as f64 * 1e-9))
            .unwrap();
    }
    checkpoint(&mut journal, 1);
    journal
}

/// Post-bake suffix: 10 fresh URLs plus overwrites of 10 baked ones with
/// different (bit-distinguishable) scores.
fn append_suffix(journal: &mut RunJournal) {
    for n in 40..50 {
        journal
            .append_verdict(verdict(n, 0.6 + n as f64 * 1e-9))
            .unwrap();
    }
    for n in (0..20).step_by(2) {
        journal
            .append_verdict(verdict(n, 0.75 + n as f64 * 1e-9))
            .unwrap();
    }
    checkpoint(journal, 2);
}

#[test]
fn threaded_overlay_matches_pure_replay() {
    let dir = TempDir::new("overlay-eq-threaded");
    let mut journal = seed_journal(dir.path());
    let bake = dir.path().join("baked.mapidx");
    bake_index(dir.path(), &bake).unwrap();
    append_suffix(&mut journal);

    let overlaid = StoreChecker::open_with_base(dir.path(), Some(&bake)).unwrap();
    overlaid.reload().unwrap();
    let replayed = StoreChecker::open(dir.path()).unwrap();
    replayed.reload().unwrap();

    // The overlaid checker replayed only the suffix…
    assert!(
        overlaid.len() >= replayed.len(),
        "overlay len is an upper bound (baked entries + live map)"
    );
    // …but observationally it is the full history.
    assert_equivalent(&overlaid, &replayed, "threaded, post-suffix");

    // An overwritten URL serves the *suffix* score, not the baked one.
    let (hit, bits) = observe(&overlaid, "https://v2.weebly.com/");
    assert!(hit);
    assert_eq!(bits, (0.75 + 2.0 * 1e-9f64).to_bits());
}

#[test]
fn evented_overlay_matches_pure_replay() {
    let dir = TempDir::new("overlay-eq-evented");
    let mut journal = seed_journal(dir.path());
    let bake = dir.path().join("baked.mapidx");
    bake_index(dir.path(), &bake).unwrap();
    append_suffix(&mut journal);

    let overlaid = EventedStoreChecker::open_with_base(dir.path(), Some(&bake)).unwrap();
    let mut publisher = overlaid.publisher();
    publisher.poll().unwrap();
    let replayed = EventedStoreChecker::open(dir.path()).unwrap();
    let mut replay_pub = replayed.publisher();
    replay_pub.poll().unwrap();

    // The resumed publisher ingested only the post-cursor suffix into
    // the delta; the baked prefix is served from the mmap.
    assert_eq!(overlaid.overlay().base_len(), 40);
    assert!((overlaid.overlay().delta().len() as u64) < 40 + 20);
    assert_equivalent(&overlaid, &replayed, "evented, post-suffix");

    // Batch reads agree with batch reads, in order.
    let urls = probe_urls();
    let a: Vec<_> = overlaid.check_many(&urls);
    let b: Vec<_> = replayed.check_many(&urls);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            format!("{x:?}"),
            format!("{y:?}"),
            "check_many diverged at {}",
            urls[i]
        );
    }
}

#[test]
fn manual_adds_shadow_the_base_and_survive_reopen_on_both_engines() {
    for evented in [false, true] {
        let dir = TempDir::new("overlay-eq-adds");
        let _journal = seed_journal(dir.path());
        let bake = dir.path().join("baked.mapidx");
        bake_index(dir.path(), &bake).unwrap();

        let shadowed = "https://v3.weebly.com/";
        let open = |dir: &Path| -> Box<dyn UrlChecker> {
            if evented {
                let c = EventedStoreChecker::open_with_base(dir, Some(&bake)).unwrap();
                let mut publisher = c.publisher();
                publisher.poll().unwrap();
                Box::new(c)
            } else {
                let c = StoreChecker::open_with_base(dir, Some(&bake)).unwrap();
                c.reload().unwrap();
                Box::new(c)
            }
        };

        {
            let checker = open(dir.path());
            let (hit, bits) = observe(checker.as_ref(), shadowed);
            assert!(hit, "baked entry served (evented={evented})");
            assert_eq!(bits, (0.5 + 3.0 * 1e-9f64).to_bits());
            // A durable manual ADD shadows the baked score immediately.
            checker.add(shadowed, 0.97).unwrap();
            assert_eq!(
                observe(checker.as_ref(), shadowed),
                (true, 0.97f64.to_bits())
            );
        }

        // …and again after a cold reopen: the sidecar replays into the
        // delta, which wins over the mmap baseline.
        let checker = open(dir.path());
        assert_eq!(
            observe(checker.as_ref(), shadowed),
            (true, 0.97f64.to_bits()),
            "sidecar ADD must shadow the base across restart (evented={evented})"
        );
    }
}

#[test]
fn journaled_adds_keep_shadowing_across_an_in_process_rebake() {
    let dir = TempDir::new("overlay-eq-rebake");
    let mut journal = seed_journal(dir.path());
    let bake = dir.path().join("gen1.mapidx");
    bake_index(dir.path(), &bake).unwrap();
    append_suffix(&mut journal);

    let mut backing = StoreBacking::open_with(dir.path(), true, Vec::new(), Some(&bake)).unwrap();
    backing.poll().unwrap();
    let checker = backing.checker();
    let overwritten = "https://v4.weebly.com/";
    let want = (true, (0.75 + 4.0 * 1e-9f64).to_bits());
    assert_eq!(observe(checker.as_ref(), overwritten), want);
    let gen_before = checker.generation();

    // Re-bake in process: gen2 covers the whole journal including the
    // overwrites; the swap must not change a single observable verdict.
    let gen2 = dir.path().join("gen2.mapidx");
    let summary = backing.rebake(&gen2).unwrap();
    assert_eq!(summary.entries, 50, "gen2 bakes the deduped full history");
    assert!(
        checker.generation() > gen_before,
        "base swap must advance the generation for cache invalidation"
    );
    let replayed = StoreChecker::open(dir.path()).unwrap();
    replayed.reload().unwrap();
    assert_equivalent(checker.as_ref(), &replayed, "evented, post-rebake");
    assert_eq!(observe(checker.as_ref(), overwritten), want);

    // Writes after the re-bake keep landing and keep shadowing.
    journal.append_verdict(verdict(4, 0.999_999_25)).unwrap();
    checkpoint(&mut journal, 3);
    backing.poll().unwrap();
    assert_eq!(
        observe(backing.checker().as_ref(), overwritten),
        (true, 0.999_999_25f64.to_bits()),
        "post-rebake journal writes must shadow the new base"
    );

    // The threaded engine refuses in-process re-bakes loudly.
    let threaded = StoreBacking::open(dir.path(), false, Vec::new()).unwrap();
    let err = threaded
        .rebake(&dir.path().join("nope.mapidx"))
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
}
