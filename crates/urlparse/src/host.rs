//! Host names, label structure and suffix classification.
//!
//! The paper's central structural observation is that FWB phishing URLs are
//! *subdomains of the builder's own registrable domain*
//! (`victim-login.weebly.com`), so blocklist heuristics keyed on registrable
//! domains, domain age or certificate transparency see only the (benign,
//! ancient) FWB domain. This module provides the registrable-domain split
//! those analyses need, over a compact built-in public-suffix subset.

use crate::parse::ParseError;
use std::fmt;

/// Multi-label public suffixes we recognise beyond plain single-label TLDs.
/// A compact subset of the Public Suffix List sufficient for the study's URL
/// population (the full PSL is data, not logic; swapping it in is a one-line
/// change).
const MULTI_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "com.au", "net.au", "co.jp", "co.in", "com.mx",
    "com.ar", "co.za", "com.tr", "com.cn", "web.app",
];

/// Classification of a registrable domain's top-level suffix, used by the
/// "premium TLD" characterization (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuffixClass {
    /// `.com` — the premium TLD users trust most.
    Com,
    /// Other long-established premium suffixes (`.org`, `.net`, `.edu`, `.gov`).
    OtherPremium,
    /// Cheap, frequently-abused suffixes (`.xyz`, `.top`, `.live`, ...).
    Cheap,
    /// Country-code or anything else.
    Other,
}

/// A parsed host: either a DNS name (lower-case labels) or an IPv4 literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Host {
    /// DNS name, stored lower-cased, without a trailing dot.
    Domain(String),
    /// IPv4 literal. Phishing URLs hosted on bare IPs are a classic signal.
    Ipv4([u8; 4]),
}

impl Host {
    /// Parse and validate a host component.
    pub fn parse(raw: &str) -> Result<Host, ParseError> {
        let raw = raw.trim().trim_end_matches('.');
        if raw.is_empty() {
            return Err(ParseError::MissingHost);
        }
        if let Some(ip) = parse_ipv4(raw) {
            return Ok(Host::Ipv4(ip));
        }
        // An all-numeric dotted host that failed IPv4 parsing (out-of-range
        // octets, wrong arity) is not a usable DNS name either.
        if raw
            .split('.')
            .all(|l| !l.is_empty() && l.bytes().all(|b| b.is_ascii_digit()))
        {
            return Err(ParseError::InvalidHost(raw.to_string()));
        }
        let lower = raw.to_ascii_lowercase();
        for label in lower.split('.') {
            if label.is_empty()
                || label.len() > 63
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
                || label.starts_with('-')
                || label.ends_with('-')
            {
                return Err(ParseError::InvalidHost(raw.to_string()));
            }
        }
        Ok(Host::Domain(lower))
    }

    /// True for IPv4-literal hosts.
    pub fn is_ip(&self) -> bool {
        matches!(self, Host::Ipv4(_))
    }

    /// The stored DNS name (lower-case, no trailing dot) without
    /// allocating. `None` for IP hosts.
    pub fn domain_str(&self) -> Option<&str> {
        match self {
            Host::Domain(d) => Some(d.as_str()),
            Host::Ipv4(_) => None,
        }
    }

    /// DNS labels, left to right (`["login", "weebly", "com"]`). Empty for
    /// IP hosts.
    pub fn labels(&self) -> Vec<&str> {
        match self {
            Host::Domain(d) => d.split('.').collect(),
            Host::Ipv4(_) => Vec::new(),
        }
    }

    /// The public suffix ("com", "co.uk", ...). `None` for IPs or
    /// single-label hosts.
    pub fn public_suffix(&self) -> Option<String> {
        let d = match self {
            Host::Domain(d) => d,
            Host::Ipv4(_) => return None,
        };
        let labels: Vec<&str> = d.split('.').collect();
        if labels.len() < 2 {
            return None;
        }
        let last2 = labels[labels.len() - 2..].join(".");
        if MULTI_SUFFIXES.contains(&last2.as_str()) {
            Some(last2)
        } else {
            Some(labels[labels.len() - 1].to_string())
        }
    }

    /// The registrable domain: public suffix plus one label
    /// (`weebly.com`, `example.co.uk`). `None` when the host *is* a bare
    /// suffix or an IP.
    pub fn registrable_domain(&self) -> Option<String> {
        let d = match self {
            Host::Domain(d) => d,
            Host::Ipv4(_) => return None,
        };
        let suffix = self.public_suffix()?;
        let suffix_labels = suffix.split('.').count();
        let labels: Vec<&str> = d.split('.').collect();
        if labels.len() <= suffix_labels {
            return None;
        }
        Some(labels[labels.len() - suffix_labels - 1..].join("."))
    }

    /// The subdomain part left of the registrable domain
    /// (`login.secure` for `login.secure.weebly.com`). `None` when there is
    /// no subdomain.
    pub fn subdomain(&self) -> Option<String> {
        let d = match self {
            Host::Domain(d) => d,
            Host::Ipv4(_) => return None,
        };
        let reg = self.registrable_domain()?;
        if d.len() > reg.len() {
            Some(d[..d.len() - reg.len() - 1].to_string())
        } else {
            None
        }
    }

    /// True when this host is a subdomain of `parent` (or equal to it).
    pub fn is_under(&self, parent: &str) -> bool {
        match self {
            Host::Domain(d) => {
                let parent = parent.to_ascii_lowercase();
                d == &parent || d.ends_with(&format!(".{parent}"))
            }
            Host::Ipv4(_) => false,
        }
    }

    /// Classify the public suffix for the premium-TLD analysis.
    pub fn suffix_class(&self) -> SuffixClass {
        match self.public_suffix().as_deref() {
            Some("com") => SuffixClass::Com,
            Some("org") | Some("net") | Some("edu") | Some("gov") => SuffixClass::OtherPremium,
            Some("xyz") | Some("top") | Some("live") | Some("icu") | Some("click")
            | Some("buzz") | Some("rest") | Some("cam") | Some("work") | Some("link")
            | Some("shop") | Some("store") => SuffixClass::Cheap,
            _ => SuffixClass::Other,
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Domain(d) => f.write_str(d),
            Host::Ipv4([a, b, c, d]) => write!(f, "{a}.{b}.{c}.{d}"),
        }
    }
}

fn parse_ipv4(s: &str) -> Option<[u8; 4]> {
    let mut out = [0u8; 4];
    let mut parts = s.split('.');
    for slot in &mut out {
        let p = parts.next()?;
        if p.is_empty() || p.len() > 3 || !p.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        *slot = p.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(s: &str) -> Host {
        Host::parse(s).unwrap()
    }

    #[test]
    fn registrable_domain_simple() {
        assert_eq!(
            host("victim-login.weebly.com").registrable_domain(),
            Some("weebly.com".to_string())
        );
        assert_eq!(
            host("weebly.com").registrable_domain(),
            Some("weebly.com".to_string())
        );
        assert_eq!(host("com").registrable_domain(), None);
    }

    #[test]
    fn registrable_domain_multi_suffix() {
        assert_eq!(
            host("shop.example.co.uk").registrable_domain(),
            Some("example.co.uk".to_string())
        );
        assert_eq!(host("co.uk").registrable_domain(), None);
        assert_eq!(
            host("a.b.web.app").registrable_domain(),
            Some("b.web.app".to_string())
        );
    }

    #[test]
    fn subdomain_extraction() {
        assert_eq!(
            host("login.secure.weebly.com").subdomain(),
            Some("login.secure".to_string())
        );
        assert_eq!(host("weebly.com").subdomain(), None);
    }

    #[test]
    fn is_under() {
        assert!(host("x.weebly.com").is_under("weebly.com"));
        assert!(host("weebly.com").is_under("weebly.com"));
        assert!(!host("notweebly.com").is_under("weebly.com"));
        assert!(!host("weebly.com.evil.net").is_under("weebly.com"));
    }

    #[test]
    fn ipv4_parsing() {
        assert_eq!(host("10.0.0.1"), Host::Ipv4([10, 0, 0, 1]));
        assert!(host("10.0.0.1").is_ip());
        assert_eq!(host("10.0.0.1").registrable_domain(), None);
        // 256 is out of range -> treated as a (invalid) domain, not an IP.
        assert!(Host::parse("256.0.0.1").is_err());
    }

    #[test]
    fn invalid_hosts_rejected() {
        assert!(Host::parse("").is_err());
        assert!(Host::parse("bad_host.com").is_err());
        assert!(Host::parse("-leading.com").is_err());
        assert!(Host::parse("trailing-.com").is_err());
        assert!(Host::parse("double..dot.com").is_err());
        assert!(Host::parse(&format!("{}.com", "a".repeat(64))).is_err());
    }

    #[test]
    fn trailing_dot_tolerated() {
        assert_eq!(host("weebly.com.").to_string(), "weebly.com");
    }

    #[test]
    fn suffix_classes() {
        assert_eq!(host("a.weebly.com").suffix_class(), SuffixClass::Com);
        assert_eq!(
            host("a.example.org").suffix_class(),
            SuffixClass::OtherPremium
        );
        assert_eq!(host("a.example.xyz").suffix_class(), SuffixClass::Cheap);
        assert_eq!(host("a.example.fr").suffix_class(), SuffixClass::Other);
        assert_eq!(host("1.2.3.4").suffix_class(), SuffixClass::Other);
    }

    #[test]
    fn labels() {
        assert_eq!(host("a.b.c").labels(), vec!["a", "b", "c"]);
        assert!(host("1.2.3.4").labels().is_empty());
    }
}
