//! Text similarity: Levenshtein edit distance and the paper's Appendix-A
//! website code-similarity measure.
//!
//! Section 3 of the paper quantifies how similar FWB *phishing* pages are to
//! *benign* pages built on the same service (Table 1): because both start
//! from the builder's templates, their HTML overlaps heavily, defeating
//! code-similarity-based detectors. The measure (Appendix A):
//!
//! 1. extract the tag elements of each website;
//! 2. for each tag `T` of website A, find the minimum Levenshtein distance
//!    to any tag of website B ("the most similar tag");
//! 3. `sim(A→B)` = median over A's tags of that per-tag similarity;
//! 4. symmetrise: `sim(A,B)` = mean of `sim(A→B)` and `sim(B→A)`.
//!
//! Distances are converted to percentage similarities per tag pair as
//! `100 · (1 − d / max(|T|, |T_B|))` so the headline numbers are comparable
//! with the paper's Table 1.
//!
//! Hot-path machinery: the [`myers`] module is the bit-parallel (64-bit
//! block) Levenshtein kernel with reusable scratch buffers that
//! [`distance`]/[`distance_bounded`] run on (the seed Wagner–Fischer
//! recurrence survives as the test/bench reference), and
//! [`site_similarity_pairs`] sweeps batches of site pairs across the
//! `freephish-par` worker pool deterministically.

pub mod levenshtein;
pub mod myers;
pub mod sitesim;

pub use levenshtein::{
    distance, distance_bounded, distance_bounded_with, distance_with, normalized_similarity,
    wagner_fischer, wagner_fischer_bounded, with_scratch, MyersScratch,
};
pub use sitesim::{site_similarity, site_similarity_pairs, tag_similarity_one_way};
