//! The two-layer StackModel of Li et al. 2019, as used (and augmented) by
//! FreePhish.
//!
//! Layer 1 trains three gradient-boosting variants (GBDT, XGBoost-style,
//! LightGBM-style). Following the paper's K-fold protocol, each base model
//! produces *out-of-fold* predictions for every training row — each row is
//! predicted by a model that never saw it — so the second layer trains on
//! honest probabilities. A majority-vote feature over the binarised base
//! predictions is appended. Layer 2 is a final GBDT over
//! `[original features ‖ base probabilities ‖ vote]`.
//!
//! At inference time the base models (retrained on the full training set)
//! produce the same augmented row for the final model.

use crate::dataset::Dataset;
use crate::gbdt::{Gbdt, GbdtConfig};
use freephish_simclock::Rng64;

/// StackModel hyper-parameters.
#[derive(Debug, Clone)]
pub struct StackModelConfig {
    /// Configurations of the three (or more) base learners.
    pub base_configs: Vec<GbdtConfig>,
    /// The second-layer learner.
    pub meta_config: GbdtConfig,
    /// Folds used to produce out-of-fold base predictions.
    pub k_folds: usize,
}

impl Default for StackModelConfig {
    fn default() -> Self {
        StackModelConfig {
            base_configs: vec![
                GbdtConfig::classic(),
                GbdtConfig::xgboost_style(),
                GbdtConfig::lightgbm_style(),
            ],
            meta_config: GbdtConfig::classic(),
            k_folds: 5,
        }
    }
}

impl StackModelConfig {
    /// A fast configuration for tests.
    pub fn tiny() -> Self {
        StackModelConfig {
            base_configs: vec![GbdtConfig::tiny(), GbdtConfig::tiny()],
            meta_config: GbdtConfig::tiny(),
            k_folds: 3,
        }
    }
}

/// A fitted StackModel.
#[derive(Debug, Clone)]
pub struct StackModel {
    base_models: Vec<Gbdt>,
    meta_model: Gbdt,
}

impl StackModel {
    /// Train the full stack. Deterministic given the RNG state.
    pub fn train(config: &StackModelConfig, data: &Dataset, rng: &mut Rng64) -> StackModel {
        assert!(
            data.len() >= config.k_folds * 2,
            "dataset too small to stack"
        );
        let n = data.len();
        let n_base = config.base_configs.len();
        let folds = data.kfold_indices(config.k_folds, rng);

        // Out-of-fold probabilities, one column per base model.
        let mut oof = vec![vec![0.0f64; n_base]; n];
        for (b, base_cfg) in config.base_configs.iter().enumerate() {
            for held_out in &folds {
                let train_idx: Vec<usize> = folds
                    .iter()
                    .filter(|f| !std::ptr::eq(*f, held_out))
                    .flatten()
                    .copied()
                    .collect();
                let sub = data.subset(&train_idx);
                let mut fold_rng = rng.fork(b as u64);
                let model = Gbdt::train(base_cfg, &sub, &mut fold_rng);
                for &i in held_out {
                    oof[i][b] = model.predict_proba(data.row(i));
                }
            }
        }

        // Majority-vote column over binarised base predictions.
        let extra: Vec<Vec<f64>> = oof
            .iter()
            .map(|probs| {
                let mut row = probs.clone();
                let votes = probs.iter().filter(|&&p| p >= 0.5).count();
                row.push(f64::from(votes * 2 > probs.len()));
                row
            })
            .collect();
        let names: Vec<String> = (0..n_base)
            .map(|b| format!("base{b}_proba"))
            .chain(std::iter::once("base_vote".to_string()))
            .collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let meta_data = data.with_extra_features(&name_refs, &extra);

        // Retrain base models on the full training set for inference.
        let base_models: Vec<Gbdt> = config
            .base_configs
            .iter()
            .enumerate()
            .map(|(b, cfg)| {
                let mut m_rng = rng.fork(100 + b as u64);
                Gbdt::train(cfg, data, &mut m_rng)
            })
            .collect();

        let mut meta_rng = rng.fork(999);
        let meta_model = Gbdt::train(&config.meta_config, &meta_data, &mut meta_rng);

        StackModel {
            base_models,
            meta_model,
        }
    }

    /// Build the augmented row: original features plus base probabilities
    /// plus the majority vote.
    fn augment(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        let probs: Vec<f64> = self
            .base_models
            .iter()
            .map(|m| m.predict_proba(row))
            .collect();
        let votes = probs.iter().filter(|&&p| p >= 0.5).count();
        out.extend_from_slice(&probs);
        out.push(f64::from(votes * 2 > probs.len()));
        out
    }

    /// Probability of the positive (phishing) class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        self.meta_model.predict_proba(&self.augment(row))
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Probabilities over a whole dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_proba(data.row(i)))
            .collect()
    }

    /// Number of base models.
    pub fn n_base_models(&self) -> usize {
        self.base_models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryMetrics;

    fn rings(n: usize, seed: u64) -> Dataset {
        // Inner disc = class 1, outer ring = class 0 — nonlinear boundary.
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for _ in 0..n {
            let inner = rng.chance(0.5);
            let r = if inner {
                rng.range_f64(0.0, 1.0)
            } else {
                rng.range_f64(1.6, 2.8)
            };
            let theta = rng.range_f64(0.0, std::f64::consts::TAU);
            d.push(vec![r * theta.cos(), r * theta.sin()], u8::from(inner));
        }
        d
    }

    #[test]
    fn stack_learns_nonlinear_boundary() {
        let mut rng = Rng64::new(5);
        let data = rings(600, 1);
        let (train, test) = data.split(0.7, &mut rng);
        let model = StackModel::train(&StackModelConfig::tiny(), &train, &mut rng);
        let m = BinaryMetrics::from_scores(test.labels(), &model.predict_all(&test));
        assert!(m.accuracy > 0.9, "accuracy={}", m.accuracy);
        assert_eq!(model.n_base_models(), 2);
    }

    #[test]
    fn stack_not_worse_than_single_base() {
        let mut rng = Rng64::new(6);
        let data = rings(600, 2);
        let (train, test) = data.split(0.7, &mut rng);
        let mut r1 = Rng64::new(7);
        let stack = StackModel::train(&StackModelConfig::tiny(), &train, &mut r1);
        let mut r2 = Rng64::new(7);
        let single = Gbdt::train(&GbdtConfig::tiny(), &train, &mut r2);
        let ms = BinaryMetrics::from_scores(test.labels(), &stack.predict_all(&test));
        let mb = BinaryMetrics::from_scores(test.labels(), &single.predict_all(&test));
        assert!(
            ms.f1 >= mb.f1 - 0.03,
            "stack f1 {} vs base f1 {}",
            ms.f1,
            mb.f1
        );
    }

    #[test]
    fn deterministic() {
        let data = rings(200, 3);
        let mut r1 = Rng64::new(8);
        let mut r2 = Rng64::new(8);
        let m1 = StackModel::train(&StackModelConfig::tiny(), &data, &mut r1);
        let m2 = StackModel::train(&StackModelConfig::tiny(), &data, &mut r2);
        for i in 0..20 {
            assert_eq!(m1.predict_proba(data.row(i)), m2.predict_proba(data.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_dataset_rejected() {
        let mut d = Dataset::new(vec!["x".into()]);
        d.push(vec![1.0], 1);
        d.push(vec![0.0], 0);
        let mut rng = Rng64::new(9);
        StackModel::train(&StackModelConfig::tiny(), &d, &mut rng);
    }

    #[test]
    fn proba_in_unit_interval() {
        let data = rings(200, 4);
        let mut rng = Rng64::new(10);
        let model = StackModel::train(&StackModelConfig::tiny(), &data, &mut rng);
        for i in 0..data.len() {
            let p = model.predict_proba(data.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
