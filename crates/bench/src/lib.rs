//! Shared harness for the experiment binaries: one binary per table and
//! figure of the paper (see DESIGN.md §4 for the index).
//!
//! Every binary follows the same pattern: build the simulated world, drive
//! the campaign through the real FreePhish pipeline, *measure* with the
//! analysis module, and print the paper-shaped table plus a JSON record
//! (written to `target/experiments/`) for EXPERIMENTS.md tooling.
//!
//! The workload scale is controlled by `FREEPHISH_SCALE` (1.0 = the paper's
//! full 31,405 + 31,405 URLs; default 1.0). Set e.g. `FREEPHISH_SCALE=0.1`
//! for a quick pass.

pub mod harness;
pub mod render;

pub use harness::{full_measurement, scale_from_env, Measurement};
pub use render::{fmt_duration_opt, fmt_pct, TableWriter};
