//! Binary-classification metrics: confusion matrix, accuracy/precision/
//! recall/F1 (the columns of the paper's Table 2) and AUC.

/// Counts of the four confusion-matrix cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives: phishing predicted phishing.
    pub tp: usize,
    /// False positives: benign predicted phishing.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives: phishing predicted benign.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Build from parallel slices of truth labels (0/1) and predicted
    /// probabilities, thresholded at `threshold`.
    pub fn from_scores(labels: &[u8], scores: &[f64], threshold: f64) -> Self {
        assert_eq!(labels.len(), scores.len());
        let mut m = ConfusionMatrix::default();
        for (&y, &s) in labels.iter().zip(scores) {
            let pred = s >= threshold;
            match (y == 1, pred) {
                (true, true) => m.tp += 1,
                (true, false) => m.fn_ += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Total examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// (tp + tn) / total; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// tp / (tp + fp); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// tp / (tp + fn); 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The four headline metrics bundled, as reported per model in Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Positive predictive value.
    pub precision: f64,
    /// True positive rate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Compute all four from labels and scores at the 0.5 threshold.
    pub fn from_scores(labels: &[u8], scores: &[f64]) -> Self {
        let m = ConfusionMatrix::from_scores(labels, scores, 0.5);
        BinaryMetrics {
            accuracy: m.accuracy(),
            precision: m.precision(),
            recall: m.recall(),
            f1: m.f1(),
        }
    }
}

/// Area under the ROC curve by the rank-sum (Mann–Whitney) formulation,
/// with tie correction. Returns 0.5 when either class is absent.
pub fn auc(labels: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len());
    let n_pos = labels.iter().filter(|&&l| l == 1).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending; ties share the average rank.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l == 1)
        .map(|(_, &r)| r)
        .sum();
    (pos_rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Calibrate a confident-negative cutoff: the largest threshold `t` such
/// that declaring every score `< t` negative misses at most a `max_fnr`
/// fraction of the positives in this sample.
///
/// This is how a cheap pre-filter tier is tuned: scores below the returned
/// cutoff are served as "safe" without escalation, and the cutoff is pushed
/// as high as the tolerated false-negative budget allows so the filter
/// absorbs the maximum share of traffic. Returns 0.0 when the sample holds
/// no positives (nothing to protect — every score may pass).
pub fn threshold_at_fnr(labels: &[u8], scores: &[f64], max_fnr: f64) -> f64 {
    assert_eq!(labels.len(), scores.len());
    let mut pos: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(&l, _)| l == 1)
        .map(|(_, &s)| s)
        .collect();
    if pos.is_empty() {
        return 0.0;
    }
    pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // With cutoff t = pos[k], the positives lost are those strictly below
    // t: at most k of them. The largest admissible k keeps k/n ≤ max_fnr.
    let allowed = (max_fnr.clamp(0.0, 1.0) * pos.len() as f64).floor() as usize;
    if allowed >= pos.len() {
        // Every positive may be sacrificed: any cutoff passes.
        return f64::INFINITY;
    }
    pos[allowed]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let labels = [1, 1, 0, 0];
        let scores = [0.9, 0.8, 0.1, 0.2];
        let m = BinaryMetrics::from_scores(&labels, &scores);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(auc(&labels, &scores), 1.0);
    }

    #[test]
    fn inverted_classifier() {
        let labels = [1, 1, 0, 0];
        let scores = [0.1, 0.2, 0.9, 0.8];
        let m = BinaryMetrics::from_scores(&labels, &scores);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(auc(&labels, &scores), 0.0);
    }

    #[test]
    fn known_confusion_matrix() {
        // tp=2 fp=1 tn=1 fn=1
        let labels = [1, 1, 1, 0, 0];
        let scores = [0.9, 0.8, 0.2, 0.7, 0.1];
        let m = ConfusionMatrix::from_scores(&labels, &scores, 0.5);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        // Single-class AUC falls back to 0.5.
        assert_eq!(auc(&[1, 1], &[0.3, 0.9]), 0.5);
        assert_eq!(auc(&[0, 0], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn auc_with_ties() {
        // Two positives and two negatives all scoring the same: AUC 0.5.
        let labels = [1, 0, 1, 0];
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert!((auc(&labels, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_threshold_free() {
        // AUC is invariant to monotone transforms of the scores.
        let labels = [1, 0, 1, 0, 1];
        let s1 = [0.9, 0.3, 0.8, 0.4, 0.7];
        let s2: Vec<f64> = s1.iter().map(|x| x * 100.0 - 3.0).collect();
        assert!((auc(&labels, &s1) - auc(&labels, &s2)).abs() < 1e-12);
    }

    #[test]
    fn threshold_at_fnr_respects_the_budget() {
        let labels = [1, 1, 1, 1, 0, 0, 0, 0];
        let scores = [0.9, 0.8, 0.7, 0.05, 0.4, 0.3, 0.2, 0.1];
        // Zero budget: the cutoff must sit at the lowest positive score,
        // so no positive scores strictly below it.
        let t0 = threshold_at_fnr(&labels, &scores, 0.0);
        assert_eq!(t0, 0.05);
        let m = ConfusionMatrix::from_scores(&labels, &scores, t0);
        assert_eq!(m.fn_, 0);
        // A 25% budget may sacrifice exactly the one outlier positive,
        // lifting the cutoff to the next positive and absorbing every
        // negative below it.
        let t1 = threshold_at_fnr(&labels, &scores, 0.25);
        assert_eq!(t1, 0.7);
        let m = ConfusionMatrix::from_scores(&labels, &scores, t1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 4);
    }

    #[test]
    fn threshold_at_fnr_degenerate_inputs() {
        // No positives: everything may pass.
        assert_eq!(threshold_at_fnr(&[0, 0], &[0.9, 0.1], 0.01), 0.0);
        // Full budget: unbounded cutoff.
        assert_eq!(threshold_at_fnr(&[1, 1], &[0.9, 0.1], 1.0), f64::INFINITY);
    }

    #[test]
    fn threshold_moves_tradeoff() {
        let labels = [1, 1, 0, 0];
        let scores = [0.9, 0.6, 0.55, 0.1];
        let strict = ConfusionMatrix::from_scores(&labels, &scores, 0.8);
        let loose = ConfusionMatrix::from_scores(&labels, &scores, 0.5);
        assert!(strict.precision() >= loose.precision());
        assert!(strict.recall() <= loose.recall());
    }
}
