//! Gradient-boosted decision trees for binary classification with logistic
//! loss, plus presets mirroring the three StackModel base learners.
//!
//! The presets differ the way the real libraries characteristically differ:
//!
//! * [`GbdtConfig::classic`] — first-generation GBDT: level-wise trees, no
//!   explicit regularisation (λ≈0, γ=0), moderate depth;
//! * [`GbdtConfig::xgboost_style`] — second-order gains with L2 leaf
//!   regularisation and a split-gain floor (λ, γ > 0), row subsampling;
//! * [`GbdtConfig::lightgbm_style`] — histogram bins are coarser and growth
//!   is best-first leaf-wise with a leaf budget.
//!
//! All three share the histogram tree engine in [`crate::tree`]; the knobs
//! above are what gives them different bias/variance behaviour on the
//! phishing feature sets.

use crate::dataset::Dataset;
use crate::flat::{FlatForest, FlatForestBuilder};
use crate::tree::{BinnedMatrix, RegTree, TreeConfig};
use freephish_simclock::Rng64;

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Histogram resolution.
    pub max_bins: usize,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f64,
}

impl GbdtConfig {
    /// Classic GBDT: level-wise, unregularised.
    pub fn classic() -> Self {
        GbdtConfig {
            n_trees: 80,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 4,
                max_leaves: 0,
                min_leaf: 10,
                lambda: 1e-6,
                gamma: 0.0,
                leaf_wise: false,
            },
            max_bins: 255,
            subsample: 1.0,
        }
    }

    /// XGBoost-style: second-order regularised, subsampled.
    pub fn xgboost_style() -> Self {
        GbdtConfig {
            n_trees: 100,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 5,
                max_leaves: 0,
                min_leaf: 5,
                lambda: 1.0,
                gamma: 0.1,
                leaf_wise: false,
            },
            max_bins: 255,
            subsample: 0.8,
        }
    }

    /// LightGBM-style: coarse histograms, leaf-wise growth.
    pub fn lightgbm_style() -> Self {
        GbdtConfig {
            n_trees: 100,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 64,
                max_leaves: 31,
                min_leaf: 5,
                lambda: 1.0,
                gamma: 0.0,
                leaf_wise: true,
            },
            max_bins: 63,
            subsample: 0.8,
        }
    }

    /// A small/fast configuration for tests.
    pub fn tiny() -> Self {
        GbdtConfig {
            n_trees: 20,
            learning_rate: 0.3,
            tree: TreeConfig {
                max_depth: 3,
                max_leaves: 0,
                min_leaf: 2,
                lambda: 1.0,
                gamma: 0.0,
                leaf_wise: false,
            },
            max_bins: 64,
            subsample: 1.0,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A fitted gradient-boosting classifier.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<RegTree>,
    base_score: f64,
    learning_rate: f64,
    /// Inference layout compiled from `trees` (shrinkage folded into the
    /// leaves, base score as bias). Bit-identical to the boxed path.
    flat: FlatForest,
}

impl Gbdt {
    /// Train on a dataset. Deterministic given the RNG state.
    pub fn train(config: &GbdtConfig, data: &Dataset, rng: &mut Rng64) -> Gbdt {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let binned = BinnedMatrix::build(data.rows(), config.max_bins);

        // Base score: log-odds of the prior.
        let p = data.positive_rate().clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p / (1.0 - p)).ln();

        let mut scores = vec![base_score; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        let mut trees = Vec::with_capacity(config.n_trees);

        for _round in 0..config.n_trees {
            for (i, &score) in scores.iter().enumerate() {
                let pi = sigmoid(score);
                grad[i] = pi - data.label(i) as f64;
                hess[i] = (pi * (1.0 - pi)).max(1e-12);
            }
            let rows: Vec<usize> = if config.subsample < 1.0 {
                let k = ((n as f64) * config.subsample).round().max(1.0) as usize;
                rng.sample_indices(n, k.min(n))
            } else {
                (0..n).collect()
            };
            let tree = RegTree::fit(&binned, &grad, &hess, &rows, &config.tree);
            // Update all rows (not just the sample) with the shrunk output.
            for (i, score) in scores.iter_mut().enumerate() {
                *score += config.learning_rate * tree.predict_row(data.row(i));
            }
            trees.push(tree);
        }
        let flat = Self::compile(&trees, base_score, config.learning_rate);
        Gbdt {
            trees,
            base_score,
            learning_rate: config.learning_rate,
            flat,
        }
    }

    /// Compile the boxed trees into the flat inference layout: base score
    /// becomes the bias, shrinkage is folded into every leaf (same single
    /// multiply the boxed loop performs, done once at compile time).
    fn compile(trees: &[RegTree], base_score: f64, learning_rate: f64) -> FlatForest {
        let mut b = FlatForestBuilder::new(base_score);
        for t in trees {
            b.push_tree(t, None, |v| learning_rate * v);
        }
        b.build()
    }

    /// Raw (log-odds) score for a feature row.
    pub fn raw_score(&self, row: &[f64]) -> f64 {
        self.flat.predict_row(row)
    }

    /// Raw score through the boxed `RegTree` walk — the pre-flattening
    /// reference path, kept for equivalence tests and benchmarks.
    pub fn raw_score_boxed(&self, row: &[f64]) -> f64 {
        let mut s = self.base_score;
        for t in &self.trees {
            s += self.learning_rate * t.predict_row(row);
        }
        s
    }

    /// Predicted probability of the positive (phishing) class.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(self.raw_score(row))
    }

    /// Probability through the boxed reference path.
    pub fn predict_proba_boxed(&self, row: &[f64]) -> f64 {
        sigmoid(self.raw_score_boxed(row))
    }

    /// Probabilities for many rows via the batched flat traversal.
    pub fn predict_proba_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        let mut out = self.flat.predict_batch(rows);
        for s in &mut out {
            *s = sigmoid(*s);
        }
        out
    }

    /// The compiled flat inference layout.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// Probabilities for a whole dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict_proba(data.row(i)))
            .collect()
    }

    /// Hard 0/1 prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance: how many splits across the ensemble
    /// test each feature.
    pub fn feature_split_counts(&self, n_features: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_features];
        for t in &self.trees {
            for f in t.used_features() {
                counts[f] += 1;
            }
        }
        counts
    }

    /// Mean training log-loss of a dataset under this model (used by tests
    /// to assert boosting actually reduces loss).
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        let mut total = 0.0;
        for i in 0..data.len() {
            let p = self.predict_proba(data.row(i)).clamp(1e-12, 1.0 - 1e-12);
            let y = data.label(i) as f64;
            total -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
        }
        total / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinaryMetrics;

    /// Linearly separable blob data.
    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for _ in 0..n {
            let label = rng.chance(0.5);
            let (cx, cy) = if label { (2.0, 2.0) } else { (-2.0, -2.0) };
            d.push(
                vec![rng.normal_ms(cx, 1.0), rng.normal_ms(cy, 1.0)],
                u8::from(label),
            );
        }
        d
    }

    /// Noisy XOR data — requires tree interactions.
    fn xor(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for _ in 0..n {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            let label = u8::from(a ^ b);
            d.push(
                vec![
                    f64::from(a) + rng.normal_ms(0.0, 0.2),
                    f64::from(b) + rng.normal_ms(0.0, 0.2),
                ],
                label,
            );
        }
        d
    }

    #[test]
    fn separable_data_high_accuracy() {
        let mut rng = Rng64::new(7);
        let data = blobs(600, 1);
        let (train, test) = data.split(0.7, &mut rng);
        let model = Gbdt::train(&GbdtConfig::tiny(), &train, &mut rng);
        let m = BinaryMetrics::from_scores(test.labels(), &model.predict_all(&test));
        assert!(m.accuracy > 0.95, "accuracy={}", m.accuracy);
    }

    #[test]
    fn xor_learned_by_all_presets() {
        for (name, cfg) in [
            ("classic", GbdtConfig::classic()),
            ("xgb", GbdtConfig::xgboost_style()),
            ("lgbm", GbdtConfig::lightgbm_style()),
        ] {
            let mut rng = Rng64::new(11);
            let data = xor(800, 3);
            let (train, test) = data.split(0.7, &mut rng);
            let model = Gbdt::train(&cfg, &train, &mut rng);
            let m = BinaryMetrics::from_scores(test.labels(), &model.predict_all(&test));
            assert!(m.accuracy > 0.9, "{name}: accuracy={}", m.accuracy);
        }
    }

    #[test]
    fn boosting_reduces_training_loss() {
        let data = blobs(300, 5);
        let mut rng = Rng64::new(13);
        let short = Gbdt::train(
            &GbdtConfig {
                n_trees: 2,
                ..GbdtConfig::tiny()
            },
            &data,
            &mut rng,
        );
        let mut rng = Rng64::new(13);
        let long = Gbdt::train(
            &GbdtConfig {
                n_trees: 30,
                ..GbdtConfig::tiny()
            },
            &data,
            &mut rng,
        );
        assert!(long.log_loss(&data) < short.log_loss(&data));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(200, 9);
        let mut r1 = Rng64::new(21);
        let mut r2 = Rng64::new(21);
        let m1 = Gbdt::train(&GbdtConfig::tiny(), &data, &mut r1);
        let m2 = Gbdt::train(&GbdtConfig::tiny(), &data, &mut r2);
        for i in 0..data.len() {
            assert_eq!(m1.predict_proba(data.row(i)), m2.predict_proba(data.row(i)));
        }
    }

    #[test]
    fn base_score_matches_prior_with_no_splits() {
        // One-class-dominant data with constant features: every tree is a
        // stump refining the prior towards the majority class.
        let mut d = Dataset::new(vec!["c".into()]);
        for i in 0..100 {
            d.push(vec![1.0], u8::from(i < 90));
        }
        let mut rng = Rng64::new(3);
        let model = Gbdt::train(&GbdtConfig::tiny(), &d, &mut rng);
        let p = model.predict_proba(&[1.0]);
        assert!(p > 0.8, "p={p}");
    }

    #[test]
    fn predict_is_thresholded_proba() {
        let data = blobs(200, 17);
        let mut rng = Rng64::new(19);
        let model = Gbdt::train(&GbdtConfig::tiny(), &data, &mut rng);
        for i in 0..20 {
            let row = data.row(i);
            assert_eq!(
                model.predict(row),
                u8::from(model.predict_proba(row) >= 0.5)
            );
        }
    }
}
