#!/usr/bin/env bash
# Performance record: build the release perfbench binary and regenerate
# BENCH_PIPELINE.json at the repository root.
#
# The record compares, on this host:
#   * the Table-1-shaped site-similarity sweep — seed Wagner–Fischer kernel
#     vs the Myers bit-parallel kernel, serial and through freephish-par;
#   * the classification hot path — wire-speed snapshot scoring (span
#     tokens -> PageFacts -> flat forests) vs the retained legacy path,
#     plus per-stage figures (urls_classified_per_sec,
#     html_tokenize_mb_per_sec, forest_predict_rows_per_sec,
#     url_features_per_sec);
#   * one full pipeline tick at FREEPHISH_THREADS=1 vs the host default,
#     plus the seed's bare poll+crawl+score loop;
#   * the classifier train phase at one thread vs the host default;
#   * the persistence layer — buffered vs per-record-fsync append
#     throughput and cold WAL recovery (clean and torn-tail), recorded
#     under the store_append_throughput and store_recovery keys;
#   * the serving layer — loadgen drives the threaded and evented verdict
#     engines with concurrent connections (line CHECK and binary CHECKN),
#     merged in under the serve_throughput and serve_latency keys; during
#     the CHECKN phase the ops plane is mounted and scraped mid-run,
#     adding the serve_p999, serve_worker_utilization and
#     ops_scrape_latency keys; a miss phase (--miss-rate) then drives the
#     tiered resolver with never-seen URLs and records the
#     serve_miss_classify_per_sec and serve_tier_hit_rates keys plus a
#     kill-mid-load restart proof under serve_miss_classify;
#   * the distributed cluster — loadgen --cluster spawns freephish-extd
#     follower processes replicating from an in-process primary WAL and
#     scatters CHECKN through the consistent-hash router: a rate-capped
#     1/2/4/8-node scaling sweep (cluster_scaling), a replication-lag
#     scrape off a follower's /varz (cluster_replication_lag), and a
#     kill-a-follower/resume-from-cursor/zero-lost-verdicts proof
#     (cluster_failover).
#
# Knobs: FREEPHISH_BENCH_REPS (best-of reps, default 3),
#        FREEPHISH_BENCH_OUT (output path, default BENCH_PIPELINE.json),
#        FREEPHISH_LOADGEN_CONNS / _SECS / _BATCH (loadgen shape),
#        FREEPHISH_CLUSTER_RATE / _CONNS (cluster phase shape).
# Run from the repository root: ./scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release -p freephish-bench --bin perfbench =="
cargo build --release -p freephish-bench --bin perfbench

echo "== perfbench =="
./target/release/perfbench

echo "== cargo build --release -p freephish-bench --bin loadgen =="
cargo build --release -p freephish-bench --bin loadgen

echo "== loadgen =="
./target/release/loadgen

# The cluster phase spawns follower daemons from the freephish-extd
# binary next to loadgen in target/release.
echo "== cargo build --release -p freephish-core --bin freephish-extd =="
cargo build --release -p freephish-core --bin freephish-extd

echo "== loadgen --cluster =="
./target/release/loadgen --cluster

OUT="${FREEPHISH_BENCH_OUT:-BENCH_PIPELINE.json}"
for key in serve_throughput serve_latency serve_p999 serve_worker_utilization ops_scrape_latency \
           serve_miss_classify_per_sec serve_tier_hit_rates \
           cluster_scaling cluster_replication_lag cluster_failover \
           urls_classified_per_sec html_tokenize_mb_per_sec forest_predict_rows_per_sec url_features_per_sec; do
  if ! grep -q "\"$key\"" "$OUT"; then
    echo "bench.sh: ERROR: \"$key\" missing from $OUT" >&2
    exit 1
  fi
done

echo "== bench.sh: wrote $OUT =="
