//! Property tests for the URL parser.

use freephish_urlparse::{extract_urls, Host, Url};
use proptest::prelude::*;

/// Strategy producing syntactically valid DNS labels.
fn label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,10}(-[a-z0-9]{1,10}){0,2}"
}

fn hostname() -> impl Strategy<Value = String> {
    (
        label(),
        label(),
        prop_oneof!["com", "net", "io", "me", "app"],
    )
        .prop_map(|(a, b, tld)| format!("{a}.{b}.{tld}"))
}

proptest! {
    /// parse(serialise(parse(x))) is a fixed point: round-tripping the
    /// canonical form must be lossless.
    #[test]
    fn round_trip_is_fixed_point(
        host in hostname(),
        https in any::<bool>(),
        path in "(/[a-z0-9]{1,8}){0,3}",
        query in proptest::option::of("[a-z]{1,5}=[a-z0-9]{1,5}"),
    ) {
        let scheme = if https { "https" } else { "http" };
        let mut s = format!("{scheme}://{host}{path}");
        if let Some(q) = &query {
            s.push('?');
            s.push_str(q);
        }
        let u1 = Url::parse(&s).expect("constructed URL must parse");
        let u2 = Url::parse(&u1.as_string()).expect("canonical form must parse");
        prop_assert_eq!(u1.as_string(), u2.as_string());
        prop_assert_eq!(u1, u2);
    }

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = Url::parse(&s);
    }

    /// Host parsing never panics and any accepted domain host satisfies the
    /// label grammar.
    #[test]
    fn host_never_panics(s in "\\PC{0,100}") {
        if let Ok(Host::Domain(d)) = Host::parse(&s) {
            for l in d.split('.') {
                prop_assert!(!l.is_empty() && l.len() <= 63);
                prop_assert!(l.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
            }
        }
    }

    /// registrable_domain is always a suffix of the host and contains the
    /// public suffix.
    #[test]
    fn registrable_domain_is_suffix(host in hostname()) {
        let h = Host::parse(&host).unwrap();
        let reg = h.registrable_domain().expect("3-label host has registrable domain");
        prop_assert!(host.ends_with(&reg));
        let ps = h.public_suffix().unwrap();
        prop_assert!(reg.ends_with(&ps));
    }

    /// Every URL found by extract_urls parses.
    #[test]
    fn extracted_urls_parse(
        pre in "[a-zA-Z ]{0,20}",
        host in hostname(),
        post in "[a-zA-Z ]{0,20}",
    ) {
        let text = format!("{pre} https://{host}/page {post}");
        let found = extract_urls(&text);
        prop_assert!(!found.is_empty());
        for f in found {
            prop_assert!(Url::parse(&f).is_ok(), "failed to parse extracted {f}");
        }
    }

    /// extract_urls never panics on arbitrary unicode text.
    #[test]
    fn extract_never_panics(s in "\\PC{0,300}") {
        let _ = extract_urls(&s);
    }
}
