//! Query helpers over a parsed [`Document`]: exactly the accessors the
//! FreePhish feature extractor and the Appendix-A similarity computation
//! need.

use crate::dom::{Document, Node, NodeId};

/// Credential vocabulary looked for in text-input names/placeholders/ids
/// (shared with the single-pass extractor in [`crate::facts`]).
pub(crate) const SENSITIVE_NAMES: &[&str] = &[
    "pass", "pwd", "ssn", "card", "cvv", "account", "user", "email", "phone", "pin", "social",
    "routing", "address", "dob", "login",
];

/// A borrowed view of an element node.
#[derive(Debug, Clone, Copy)]
pub struct ElementRef<'a> {
    /// Id of this element in the document arena.
    pub id: NodeId,
    /// Tag name, lower-cased.
    pub tag: &'a str,
    /// Attributes in source order.
    pub attrs: &'a [crate::token::Attr],
}

impl<'a> ElementRef<'a> {
    /// Value of the first attribute named `name` (lower-case), if present.
    pub fn attr(&self, name: &str) -> Option<&'a str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// True if the element's inline `style` hides it
    /// (`display:none` / `visibility:hidden`) — the banner-obfuscation
    /// signal from Section 4.2 of the paper.
    pub fn is_hidden_by_style(&self) -> bool {
        match self.attr("style") {
            Some(style) => {
                let s: String = style.to_ascii_lowercase().split_whitespace().collect();
                s.contains("display:none") || s.contains("visibility:hidden")
            }
            None => false,
        }
    }

    /// The `class` attribute split into class names.
    pub fn classes(&self) -> Vec<&'a str> {
        self.attr("class")
            .map(|c| c.split_whitespace().collect())
            .unwrap_or_default()
    }
}

impl Document {
    /// All elements, in document order. (Arena indices are assigned in
    /// token order, which is pre-order document order, so a plain index scan
    /// suffices.)
    pub fn elements(&self) -> Vec<ElementRef<'_>> {
        let mut out = Vec::new();
        for id in self.all_ids() {
            if let Node::Element { tag, attrs, .. } = self.node(id) {
                out.push(ElementRef {
                    id,
                    tag: tag.as_str(),
                    attrs: attrs.as_slice(),
                });
            }
        }
        out
    }

    /// Elements with the given (lower-case) tag name.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<ElementRef<'_>> {
        self.elements()
            .into_iter()
            .filter(|e| e.tag == tag)
            .collect()
    }

    /// The `<title>` text, if any.
    pub fn title(&self) -> Option<String> {
        let title = self.elements_by_tag("title").into_iter().next()?;
        let text = self.text_of(title.id);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(trimmed.to_string())
        }
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_of(&self, id: NodeId) -> String {
        let mut out = String::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            match self.node(cur) {
                Node::Text(t) => {
                    if !out.is_empty() && !out.ends_with(' ') {
                        out.push(' ');
                    }
                    out.push_str(t.trim());
                }
                Node::Element { children, tag, .. } => {
                    // Script/style text is not user-visible.
                    if tag != "script" && tag != "style" {
                        for &c in children.iter().rev() {
                            stack.push(c);
                        }
                    }
                }
                Node::Comment(_) => {}
            }
        }
        out
    }

    /// All user-visible text in the document.
    pub fn visible_text(&self) -> String {
        let mut parts = Vec::new();
        for &r in self.roots() {
            let t = self.text_of(r);
            if !t.is_empty() {
                parts.push(t);
            }
        }
        parts.join(" ")
    }

    /// All `href` values of `<a>` elements.
    pub fn links(&self) -> Vec<&str> {
        self.elements_by_tag("a")
            .into_iter()
            .filter_map(|e| e.attr("href"))
            .collect()
    }

    /// All `<form>` elements.
    pub fn forms(&self) -> Vec<ElementRef<'_>> {
        self.elements_by_tag("form")
    }

    /// All `<input>` elements.
    pub fn inputs(&self) -> Vec<ElementRef<'_>> {
        self.elements_by_tag("input")
    }

    /// All `<iframe>` elements.
    pub fn iframes(&self) -> Vec<ElementRef<'_>> {
        self.elements_by_tag("iframe")
    }

    /// True when the page asks search engines not to index it:
    /// `<meta name="robots" content="...noindex...">` — the
    /// discovery-evasion signal from Section 3.
    pub fn has_noindex_meta(&self) -> bool {
        self.elements_by_tag("meta").iter().any(|m| {
            let name_ok = m
                .attr("name")
                .map(|n| {
                    let n = n.to_ascii_lowercase();
                    n == "robots" || n == "googlebot"
                })
                .unwrap_or(false);
            let content_noindex = m
                .attr("content")
                .map(|c| c.to_ascii_lowercase().contains("noindex"))
                .unwrap_or(false);
            name_ok && content_noindex
        })
    }

    /// Inputs that collect sensitive data: passwords, emails, telephone
    /// numbers, plus text inputs whose name/placeholder mention credential
    /// vocabulary (SSN, card, account...).
    pub fn credential_inputs(&self) -> Vec<ElementRef<'_>> {
        self.inputs()
            .into_iter()
            .filter(|i| {
                let ty = i.attr("type").unwrap_or("text").to_ascii_lowercase();
                if matches!(ty.as_str(), "password" | "email" | "tel") {
                    return true;
                }
                if ty != "text" && !ty.is_empty() {
                    return false;
                }
                let hay = format!(
                    "{} {} {}",
                    i.attr("name").unwrap_or(""),
                    i.attr("placeholder").unwrap_or(""),
                    i.attr("id").unwrap_or("")
                )
                .to_ascii_lowercase();
                SENSITIVE_NAMES.iter().any(|s| hay.contains(s))
            })
            .collect()
    }

    /// True when any form contains a password input — the paper's
    /// "login form" feature.
    pub fn has_login_form(&self) -> bool {
        // Find password inputs and check they sit under a form; tolerant
        // pages sometimes omit the form, so a bare password input counts too.
        self.inputs().iter().any(|i| {
            i.attr("type")
                .map(|t| t.eq_ignore_ascii_case("password"))
                .unwrap_or(false)
        })
    }

    /// Raw "tag element" strings (each element re-serialised without its
    /// children) in document order — the unit of comparison of the paper's
    /// Appendix A similarity algorithm.
    pub fn tag_elements(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(|_, node| {
            if let Node::Element { tag, attrs, .. } = node {
                let mut s = format!("<{tag}");
                for a in attrs {
                    if a.value.is_empty() {
                        s.push_str(&format!(" {}", a.name));
                    } else {
                        s.push_str(&format!(" {}=\"{}\"", a.name, a.value));
                    }
                }
                s.push('>');
                out.push(s);
            }
        });
        out
    }

    /// Links that leave `own_host`'s registrable domain, and links that stay
    /// inside (or are relative). Returns `(internal, external)` counts.
    pub fn link_partition(&self, own_registrable_domain: &str) -> (usize, usize) {
        let mut internal = 0;
        let mut external = 0;
        for href in self.links() {
            if href.starts_with("http://") || href.starts_with("https://") {
                match freephish_urlparse_lite_host(href) {
                    Some(h)
                        if h == own_registrable_domain
                            || h.ends_with(&format!(".{own_registrable_domain}")) =>
                    {
                        internal += 1
                    }
                    Some(_) => external += 1,
                    None => external += 1,
                }
            } else if href.starts_with('#') || href.is_empty() || href == "javascript:void(0)" {
                // Empty/fragment links counted separately via empty_links().
            } else {
                internal += 1; // relative link
            }
        }
        (internal, external)
    }

    /// Count of empty links (`href=""`, `href="#"`, `javascript:void(0)`) —
    /// a StackModel feature: phishing pages are full of dead navigation.
    pub fn empty_links(&self) -> usize {
        self.links()
            .iter()
            .filter(|h| {
                h.is_empty()
                    || **h == "#"
                    || h.starts_with("javascript:void")
                    || h.starts_with("javascript:;")
            })
            .count()
    }
}

/// Minimal host extraction for absolute URLs inside href values (full
/// parsing lives in `freephish-urlparse`; this avoids a dependency cycle and
/// is only used for internal/external link counting).
pub(crate) fn freephish_urlparse_lite_host(url: &str) -> Option<String> {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))?;
    let end = rest.find(['/', '?', '#', ':']).unwrap_or(rest.len());
    let host = &rest[..end];
    if host.is_empty() {
        None
    } else {
        Some(host.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn title_and_text() {
        let doc = parse("<html><head><title> My Bank </title></head><body>Sign in</body></html>");
        assert_eq!(doc.title().as_deref(), Some("My Bank"));
        assert!(doc.visible_text().contains("Sign in"));
    }

    #[test]
    fn script_text_not_visible() {
        let doc = parse("<body><script>var hidden = 1;</script>shown</body>");
        let t = doc.visible_text();
        assert!(t.contains("shown"));
        assert!(!t.contains("hidden"));
    }

    #[test]
    fn links_and_partition() {
        let doc = parse(
            r##"<a href="https://evil.weebly.com/next">n</a>
               <a href="/local">l</a>
               <a href="https://other.com/x">x</a>
               <a href="#">dead</a>"##,
        );
        assert_eq!(doc.links().len(), 4);
        let (int, ext) = doc.link_partition("weebly.com");
        assert_eq!((int, ext), (2, 1));
        assert_eq!(doc.empty_links(), 1);
    }

    #[test]
    fn login_form_detection() {
        let with = parse(r#"<form><input type="text"><input type="password"></form>"#);
        assert!(with.has_login_form());
        let without = parse(r#"<form><input type="text" name="search"></form>"#);
        assert!(!without.has_login_form());
    }

    #[test]
    fn credential_inputs_by_type_and_name() {
        let doc = parse(
            r#"<input type="password">
               <input type="email">
               <input type="text" name="ssn_number">
               <input type="text" placeholder="Card number">
               <input type="checkbox" name="remember">
               <input type="text" name="favourite_colour">"#,
        );
        assert_eq!(doc.credential_inputs().len(), 4);
    }

    #[test]
    fn noindex_meta_detection() {
        let yes = parse(r#"<head><meta name="robots" content="noindex, nofollow"></head>"#);
        assert!(yes.has_noindex_meta());
        let wrong_name = parse(r#"<meta name="viewport" content="noindex">"#);
        assert!(!wrong_name.has_noindex_meta());
        let no = parse(r#"<meta name="robots" content="index, follow">"#);
        assert!(!no.has_noindex_meta());
    }

    #[test]
    fn hidden_style_detection() {
        let doc = parse(
            r#"<div id="banner" style="visibility: hidden">FWB banner</div>
               <div style="display: none">x</div>
               <div style="color: red">visible</div>"#,
        );
        let divs = doc.elements_by_tag("div");
        assert!(divs[0].is_hidden_by_style());
        assert!(divs[1].is_hidden_by_style());
        assert!(!divs[2].is_hidden_by_style());
    }

    #[test]
    fn tag_elements_serialisation() {
        let doc = parse(r#"<div class="a"><p>t</p></div>"#);
        let tags = doc.tag_elements();
        assert_eq!(
            tags,
            vec![r#"<div class="a">"#.to_string(), "<p>".to_string()]
        );
    }

    #[test]
    fn iframes_listed() {
        let doc = parse(r#"<iframe src="https://evil.com/f"></iframe>"#);
        assert_eq!(doc.iframes().len(), 1);
        assert_eq!(doc.iframes()[0].attr("src"), Some("https://evil.com/f"));
    }

    #[test]
    fn classes_split() {
        let doc = parse(r#"<div class="a b  c"></div>"#);
        assert_eq!(doc.elements_by_tag("div")[0].classes(), vec!["a", "b", "c"]);
    }
}
