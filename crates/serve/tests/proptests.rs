//! Property tests over the binary frame codec: round trips for arbitrary
//! requests and replies, torn-frame waiting at every cut point, rejection
//! of oversized frames, and decoder totality on arbitrary bytes.

use bytes::BytesMut;
use freephish_serve::proto::{self, MAX_FRAME_PAYLOAD};
use freephish_serve::{
    decode_bin_reply, decode_bin_request, encode_bin_reply, encode_bin_request, BinReply,
    BinRequest, Verdict, MAX_BATCH,
};
use proptest::prelude::*;

fn arb_url() -> impl Strategy<Value = String> {
    "[a-z0-9./:?=-]{1,80}"
}

fn arb_verdict() -> impl Strategy<Value = Verdict> {
    (any::<bool>(), 0.0f64..1.0).prop_map(|(phish, score)| {
        if phish {
            Verdict::Phishing(score)
        } else {
            Verdict::Safe(score)
        }
    })
}

fn arb_bin_request() -> impl Strategy<Value = BinRequest> {
    prop_oneof![
        arb_url().prop_map(BinRequest::Check),
        proptest::collection::vec(arb_url(), 0..20).prop_map(BinRequest::CheckN),
        (arb_url(), 0.0f64..1.0).prop_map(|(u, s)| BinRequest::Add(u, s)),
        Just(BinRequest::Stats),
    ]
}

fn arb_bin_reply() -> impl Strategy<Value = BinReply> {
    prop_oneof![
        arb_verdict().prop_map(BinReply::Verdict),
        proptest::collection::vec(arb_verdict(), 0..20).prop_map(BinReply::VerdictN),
        any::<u64>().prop_map(BinReply::Ok),
        "[ -~]{0,60}".prop_map(BinReply::Stats),
        "[ -~]{0,60}".prop_map(BinReply::Error),
        Just(BinReply::Busy),
    ]
}

proptest! {
    /// Every encodable request decodes back to itself, even when several
    /// frames are pipelined into one buffer.
    #[test]
    fn request_frames_round_trip(reqs in proptest::collection::vec(arb_bin_request(), 1..8)) {
        let mut buf = BytesMut::new();
        for r in &reqs {
            encode_bin_request(&mut buf, r).unwrap();
        }
        for r in &reqs {
            let got = decode_bin_request(&mut buf).unwrap().unwrap();
            prop_assert_eq!(&got, r);
        }
        prop_assert!(buf.is_empty());
    }

    /// Every reply decodes back to itself (scores travel as exact f64 bits).
    #[test]
    fn reply_frames_round_trip(replies in proptest::collection::vec(arb_bin_reply(), 1..8)) {
        let mut buf = BytesMut::new();
        for r in &replies {
            encode_bin_reply(&mut buf, r);
        }
        for r in &replies {
            let got = decode_bin_reply(&mut buf).unwrap().unwrap();
            prop_assert_eq!(&got, r);
        }
        prop_assert!(buf.is_empty());
    }

    /// A frame cut at any byte boundary is torn, not an error, and the
    /// decoder consumes nothing while waiting.
    #[test]
    fn torn_request_frames_wait(req in arb_bin_request(), frac in 0.0f64..1.0) {
        let mut full = BytesMut::new();
        encode_bin_request(&mut full, &req).unwrap();
        let cut = ((full.len() as f64) * frac) as usize;
        if cut < full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            prop_assert_eq!(decode_bin_request(&mut partial), Ok(None));
            prop_assert_eq!(partial.len(), cut);
        }
    }

    /// The request decoder never panics on arbitrary bytes; on a buffer
    /// that does not start with the magic byte it errors (line-protocol
    /// bytes can never be misread as a frame).
    #[test]
    fn request_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::from(&data[..]);
        let result = decode_bin_request(&mut buf);
        if let Some(&first) = data.first() {
            if first != proto::MAGIC {
                prop_assert!(result.is_err());
            }
        } else {
            prop_assert_eq!(result, Ok(None));
        }
    }

    /// The reply decoder never panics on arbitrary bytes.
    #[test]
    fn reply_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::from(&data[..]);
        let _ = decode_bin_reply(&mut buf);
    }

    /// Frames declaring an oversized payload are rejected regardless of
    /// opcode, before any payload bytes arrive.
    #[test]
    fn oversized_declared_payload_rejected(opcode in any::<u8>(), extra in 1u32..1024) {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[proto::MAGIC, opcode]);
        buf.extend_from_slice(&((MAX_FRAME_PAYLOAD as u32) + extra).to_le_bytes());
        prop_assert!(decode_bin_request(&mut buf).is_err());
    }

    /// Batches over MAX_BATCH are refused at encode time and, if forged
    /// on the wire, at decode time.
    #[test]
    fn over_batch_rejected(count in (MAX_BATCH as u16 + 1)..=u16::MAX) {
        let urls: Vec<String> = (0..8).map(|i| format!("u{i}")).collect();
        let mut forged = BytesMut::new();
        // Re-encode a small legal batch, then forge the count field up.
        encode_bin_request(&mut forged, &BinRequest::CheckN(urls)).unwrap();
        let count_bytes = count.to_le_bytes();
        forged[6] = count_bytes[0];
        forged[7] = count_bytes[1];
        prop_assert!(decode_bin_request(&mut forged).is_err());
    }
}
