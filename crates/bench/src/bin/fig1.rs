//! Figure 1: distribution of FWB phishing attacks shared on Twitter and
//! Facebook, Jan 2020 – Aug 2022, plus the per-quarter top-80% domain set
//! (the "attackers shift to newer services" finding).

use freephish_bench::harness::write_json;
use freephish_bench::TableWriter;
use freephish_fwbsim::history::{self, HistoryConfig};
use freephish_simclock::Rng64;

fn main() {
    let mut rng = Rng64::new(2020);
    let records = history::generate(&HistoryConfig::default(), &mut rng);
    let series = history::quarterly_series(&records);

    println!("Figure 1 — FWB phishing attacks shared per quarter");
    println!("(historical D1 population: {} URLs)\n", records.len());
    let mut t = TableWriter::new(&["Quarter", "Twitter", "Facebook", "Total", "Top-80% FWBs"]);
    for (q, (label, tw, fb)) in series.iter().enumerate() {
        let top = history::top_domains_80pct(&records, q);
        let top_names: Vec<String> = top.iter().map(|k| k.to_string()).collect();
        t.row(vec![
            label.to_string(),
            tw.to_string(),
            fb.to_string(),
            (tw + fb).to_string(),
            top_names.join(", "),
        ]);
    }
    t.print();

    let tw_total: usize = series.iter().map(|(_, t, _)| t).sum();
    let fb_total: usize = series.iter().map(|(_, _, f)| f).sum();
    println!("\nTotals: Twitter {tw_total} (paper: 16.3K), Facebook {fb_total} (paper: 8.9K)");
    println!(
        "Trend: first quarter {} vs last quarter {} — {}x growth",
        series[0].1 + series[0].2,
        series.last().unwrap().1 + series.last().unwrap().2,
        (series.last().unwrap().1 + series.last().unwrap().2) / (series[0].1 + series[0].2).max(1),
    );

    write_json(
        "fig1",
        &serde_json::json!({
            "experiment": "fig1",
            "series": series.iter().map(|(l, t, f)| serde_json::json!({
                "quarter": l, "twitter": t, "facebook": f
            })).collect::<Vec<_>>(),
            "twitter_total": tw_total,
            "facebook_total": fb_total,
        }),
    );
}
