//! Little-endian byte codec helpers for typed record payloads.
//!
//! The store itself moves opaque `&[u8]` payloads; consumers (the pipeline
//! run journal, the verdict store) encode their typed events with these
//! helpers so every field has one canonical, bit-exact representation —
//! `f64`s travel as raw bits, never through decimal formatting, which is
//! what lets a resumed run reproduce byte-identical output.

/// Append-only payload writer over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// A fresh writer.
    pub fn new() -> PayloadWriter {
        PayloadWriter { buf: Vec::new() }
    }

    /// A writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> PayloadWriter {
        PayloadWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// One raw byte (record tags, enum discriminants).
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` as its raw bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// A length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decode error: the payload ended early or a field was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for std::io::Error {
    fn from(e: DecodeError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Cursor-style payload reader over a byte slice.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "need {n} bytes at offset {}, payload has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// A little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("non-utf8 string".into()))
    }

    /// Length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was consumed exactly.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError(format!("{} trailing bytes", self.remaining())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut w = PayloadWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_0001)); // a NaN payload
        w.put_str("https://a.weebly.com/ünïcode");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(r.get_str().unwrap(), "https://a.weebly.com/ünïcode");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncated_payload_errors_cleanly() {
        let mut w = PayloadWriter::new();
        w.put_str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = PayloadReader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = PayloadWriter::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(r.expect_end().is_err());
    }
}
