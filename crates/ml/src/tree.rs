//! Histogram-based regression trees with second-order split gains.
//!
//! This is the shared engine under all three boosting variants. Features
//! are quantised into at most 256 bins (XGBoost's "approx" / LightGBM's
//! histogram strategy); split gain uses the standard second-order formula
//!
//! ```text
//! gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) − γ
//! ```
//!
//! and leaf weights are `−G/(H+λ)`. Growth is either level-wise (classic
//! GBDT / XGBoost) or best-first leaf-wise (LightGBM's signature).

/// Tree-growth hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth for level-wise growth (root = depth 0).
    pub max_depth: usize,
    /// Maximum leaf count for leaf-wise growth.
    pub max_leaves: usize,
    /// Minimum examples per leaf.
    pub min_leaf: usize,
    /// L2 regularisation on leaf weights (XGBoost's λ).
    pub lambda: f64,
    /// Minimum gain to split (XGBoost's γ).
    pub gamma: f64,
    /// Leaf-wise (best-first) growth instead of level-wise.
    pub leaf_wise: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            max_leaves: 31,
            min_leaf: 5,
            lambda: 1.0,
            gamma: 0.0,
            leaf_wise: false,
        }
    }
}

/// Feature matrix quantised to per-feature bins.
///
/// `edges[f]` holds ascending thresholds; a value `x` falls in bin
/// `edges[f].partition_point(|e| e < x)`, so `bin(x) <= b  ⇔  x <= edges[f][b]`
/// for any edge index `b` — which is exactly the predicate a split needs.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// Column-major bins: `bins[f][row]`.
    bins: Vec<Vec<u8>>,
    /// Ascending candidate thresholds per feature.
    edges: Vec<Vec<f64>>,
    n_rows: usize,
}

impl BinnedMatrix {
    /// Quantise `rows` (row-major) into at most `max_bins` bins per feature
    /// using (approximate) quantile edges. `max_bins` is clamped to 2..=256.
    pub fn build(rows: &[Vec<f64>], max_bins: usize) -> Self {
        let max_bins = max_bins.clamp(2, 256);
        let n_rows = rows.len();
        let n_features = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut edges = Vec::with_capacity(n_features);
        let mut bins = Vec::with_capacity(n_features);
        for f in 0..n_features {
            let mut col: Vec<f64> = rows.iter().map(|r| r[f]).collect();
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Quantile edges, deduplicated.
            let mut e: Vec<f64> = Vec::new();
            for k in 1..max_bins {
                let pos = k * n_rows / max_bins;
                if pos < n_rows {
                    let v = col[pos.saturating_sub(1)];
                    if e.last().map(|&last| v > last).unwrap_or(true) {
                        e.push(v);
                    }
                }
            }
            // An edge at (or above) the column maximum separates nothing:
            // drop it so constant features end up with a single bin.
            if let Some(&max) = col.last() {
                while e.last().map(|&last| last >= max).unwrap_or(false) {
                    e.pop();
                }
            }
            let b: Vec<u8> = rows
                .iter()
                .map(|r| e.partition_point(|&edge| edge < r[f]) as u8)
                .collect();
            edges.push(e);
            bins.push(b);
        }
        BinnedMatrix {
            bins,
            edges,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.bins.len()
    }

    /// Number of bins for feature `f` (edges + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// Bin of row `row` for feature `f`.
    pub fn bin(&self, f: usize, row: usize) -> u8 {
        self.bins[f][row]
    }

    /// Threshold corresponding to splitting feature `f` at bin `b`
    /// (rows with `value <= threshold` go left).
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }
}

/// One tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Terminal node carrying the leaf weight.
    Leaf {
        /// The weight added to the raw score.
        value: f64,
    },
    /// Internal split: rows with `features[feature] <= threshold` go left.
    Split {
        /// Feature index.
        feature: usize,
        /// Raw-value threshold.
        threshold: f64,
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegTree {
    nodes: Vec<Node>,
}

struct SplitCandidate {
    gain: f64,
    feature: usize,
    bin: usize,
}

/// Work item during growth: a prospective leaf.
struct Pending {
    node_slot: usize,
    rows: Vec<usize>,
    depth: usize,
    grad_sum: f64,
    hess_sum: f64,
}

impl RegTree {
    /// Fit a tree to the (gradient, hessian) targets over `rows`.
    pub fn fit(
        m: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        cfg: &TreeConfig,
    ) -> RegTree {
        assert_eq!(grad.len(), hess.len());
        let mut nodes: Vec<Node> = vec![Node::Leaf { value: 0.0 }];
        let g0: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h0: f64 = rows.iter().map(|&r| hess[r]).sum();
        let root = Pending {
            node_slot: 0,
            rows: rows.to_vec(),
            depth: 0,
            grad_sum: g0,
            hess_sum: h0,
        };

        if cfg.leaf_wise {
            Self::grow_leafwise(m, grad, hess, cfg, &mut nodes, root);
        } else {
            Self::grow_levelwise(m, grad, hess, cfg, &mut nodes, root);
        }
        RegTree { nodes }
    }

    fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
        -g / (h + lambda)
    }

    /// Best split for a node, or None when nothing clears min_leaf/γ.
    fn best_split(
        m: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        g_total: f64,
        h_total: f64,
        cfg: &TreeConfig,
    ) -> Option<SplitCandidate> {
        if rows.len() < 2 * cfg.min_leaf {
            return None;
        }
        let parent_score = g_total * g_total / (h_total + cfg.lambda);
        let mut best: Option<SplitCandidate> = None;
        for f in 0..m.n_features() {
            let nb = m.n_bins(f);
            if nb < 2 {
                continue;
            }
            // Histogram of (G, H, count) per bin.
            let mut hg = vec![0.0f64; nb];
            let mut hh = vec![0.0f64; nb];
            let mut hc = vec![0usize; nb];
            for &r in rows {
                let b = m.bin(f, r) as usize;
                hg[b] += grad[r];
                hh[b] += hess[r];
                hc[b] += 1;
            }
            // Prefix scan over split points (split after bin b: edges index b).
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut cl = 0usize;
            for b in 0..nb - 1 {
                gl += hg[b];
                hl += hh[b];
                cl += hc[b];
                let cr = rows.len() - cl;
                if cl < cfg.min_leaf || cr < cfg.min_leaf {
                    continue;
                }
                let gr = g_total - gl;
                let hr = h_total - hl;
                let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda)
                    - parent_score
                    - cfg.gamma;
                if gain > 1e-12 && best.as_ref().map(|s| gain > s.gain).unwrap_or(true) {
                    best = Some(SplitCandidate {
                        gain,
                        feature: f,
                        bin: b,
                    });
                }
            }
        }
        best
    }

    /// Apply a split: turn the pending leaf into a Split node and return the
    /// two child Pending items.
    fn apply_split(
        m: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        nodes: &mut Vec<Node>,
        p: Pending,
        s: &SplitCandidate,
    ) -> (Pending, Pending) {
        let (mut lrows, mut rrows) = (Vec::new(), Vec::new());
        let (mut gl, mut hl) = (0.0, 0.0);
        for &r in &p.rows {
            if (m.bin(s.feature, r) as usize) <= s.bin {
                gl += grad[r];
                hl += hess[r];
                lrows.push(r);
            } else {
                rrows.push(r);
            }
        }
        let left_slot = nodes.len();
        nodes.push(Node::Leaf { value: 0.0 });
        let right_slot = nodes.len();
        nodes.push(Node::Leaf { value: 0.0 });
        nodes[p.node_slot] = Node::Split {
            feature: s.feature,
            threshold: m.threshold(s.feature, s.bin),
            left: left_slot,
            right: right_slot,
        };
        let left = Pending {
            node_slot: left_slot,
            rows: lrows,
            depth: p.depth + 1,
            grad_sum: gl,
            hess_sum: hl,
        };
        let right = Pending {
            node_slot: right_slot,
            rows: rrows,
            depth: p.depth + 1,
            grad_sum: p.grad_sum - gl,
            hess_sum: p.hess_sum - hl,
        };
        (left, right)
    }

    fn finalize_leaf(nodes: &mut [Node], p: &Pending, lambda: f64) {
        nodes[p.node_slot] = Node::Leaf {
            value: Self::leaf_value(p.grad_sum, p.hess_sum, lambda),
        };
    }

    fn grow_levelwise(
        m: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        cfg: &TreeConfig,
        nodes: &mut Vec<Node>,
        root: Pending,
    ) {
        let mut stack = vec![root];
        while let Some(p) = stack.pop() {
            if p.depth >= cfg.max_depth {
                Self::finalize_leaf(nodes, &p, cfg.lambda);
                continue;
            }
            match Self::best_split(m, grad, hess, &p.rows, p.grad_sum, p.hess_sum, cfg) {
                Some(s) => {
                    let (l, r) = Self::apply_split(m, grad, hess, nodes, p, &s);
                    stack.push(l);
                    stack.push(r);
                }
                None => Self::finalize_leaf(nodes, &p, cfg.lambda),
            }
        }
    }

    fn grow_leafwise(
        m: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        cfg: &TreeConfig,
        nodes: &mut Vec<Node>,
        root: Pending,
    ) {
        // Best-first: repeatedly split the pending leaf with the largest
        // gain until max_leaves is reached or no leaf can split.
        let mut leaves = 1usize;
        let mut frontier: Vec<(Pending, Option<SplitCandidate>)> = Vec::new();
        let root_split =
            Self::best_split(m, grad, hess, &root.rows, root.grad_sum, root.hess_sum, cfg);
        frontier.push((root, root_split));

        while leaves < cfg.max_leaves {
            // Pick the splittable frontier entry with the best gain.
            let best_idx = frontier
                .iter()
                .enumerate()
                .filter_map(|(i, (_, s))| s.as_ref().map(|s| (i, s.gain)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(i, _)| i);
            let Some(i) = best_idx else { break };
            let (p, s) = frontier.swap_remove(i);
            let s = s.expect("selected entry has a split");
            let (l, r) = Self::apply_split(m, grad, hess, nodes, p, &s);
            leaves += 1;
            // Depth guard also applies in leaf-wise mode (LightGBM default
            // max_depth=-1, but bounding keeps worst cases tame).
            for child in [l, r] {
                let split = if child.depth >= cfg.max_depth.max(64) {
                    None
                } else {
                    Self::best_split(
                        m,
                        grad,
                        hess,
                        &child.rows,
                        child.grad_sum,
                        child.hess_sum,
                        cfg,
                    )
                };
                frontier.push((child, split));
            }
        }
        for (p, _) in frontier {
            Self::finalize_leaf(nodes, &p, cfg.lambda);
        }
    }

    /// Predict the raw-score contribution for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The node arena (index 0 is the root) — read by the flat-forest
    /// compiler in [`crate::flat`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Features used by this tree's splits (for importance reporting).
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 1 if x0 > 0.5 else 0 — a single split should nail it.
    fn step_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64, 0.0]).collect();
        // Gradients of logistic loss at score 0 (p = 0.5): g = p - y.
        let grad: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 0.5 - 1.0 } else { 0.5 })
            .collect();
        let hess = vec![0.25; n];
        (rows, grad, hess)
    }

    #[test]
    fn binning_round_trips_thresholds() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let m = BinnedMatrix::build(&rows, 16);
        // bin(x) <= b  ⇔  x <= threshold(b): verify over all edges and rows.
        for b in 0..m.n_bins(0) - 1 {
            let t = m.threshold(0, b);
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(
                    (m.bin(0, r) as usize) <= b,
                    row[0] <= t,
                    "row {r} bin {} edge {b} thresh {t}",
                    m.bin(0, r)
                );
            }
        }
    }

    #[test]
    fn constant_feature_gets_no_bins() {
        let rows: Vec<Vec<f64>> = (0..50).map(|_| vec![7.0]).collect();
        let m = BinnedMatrix::build(&rows, 16);
        assert_eq!(m.n_bins(0), 1);
    }

    #[test]
    fn single_split_learned() {
        let (rows, grad, hess) = step_data(200);
        let m = BinnedMatrix::build(&rows, 64);
        let idx: Vec<usize> = (0..rows.len()).collect();
        let cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &cfg);
        // One split, two leaves; left negative class, right positive.
        assert_eq!(tree.n_leaves(), 2);
        let low = tree.predict_row(&[0.2, 0.0]);
        let high = tree.predict_row(&[0.9, 0.0]);
        assert!(low < 0.0, "low={low}");
        assert!(high > 0.0, "high={high}");
        assert_eq!(tree.used_features(), vec![0]);
    }

    #[test]
    fn min_leaf_respected() {
        let (rows, grad, hess) = step_data(20);
        let m = BinnedMatrix::build(&rows, 64);
        let idx: Vec<usize> = (0..rows.len()).collect();
        let cfg = TreeConfig {
            min_leaf: 15, // cannot split 20 rows into two >= 15
            ..TreeConfig::default()
        };
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &cfg);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let (rows, grad, hess) = step_data(100);
        let m = BinnedMatrix::build(&rows, 64);
        let idx: Vec<usize> = (0..rows.len()).collect();
        let strict = TreeConfig {
            gamma: 1e9,
            ..TreeConfig::default()
        };
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &strict);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn leafwise_respects_max_leaves() {
        // Rich 2-feature target so many splits are available.
        let n = 300;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 17) as f64, (i % 23) as f64])
            .collect();
        let grad: Vec<f64> = (0..n)
            .map(|i| {
                if (i % 17 + i % 23) % 2 == 0 {
                    -0.5
                } else {
                    0.5
                }
            })
            .collect();
        let hess = vec![0.25; n];
        let m = BinnedMatrix::build(&rows, 64);
        let idx: Vec<usize> = (0..n).collect();
        let cfg = TreeConfig {
            leaf_wise: true,
            max_leaves: 8,
            min_leaf: 1,
            max_depth: 64,
            ..TreeConfig::default()
        };
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &cfg);
        assert!(tree.n_leaves() <= 8);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn pure_node_not_split() {
        // All gradients equal: no gain anywhere.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let grad = vec![0.5; 50];
        let hess = vec![0.25; 50];
        let m = BinnedMatrix::build(&rows, 16);
        let idx: Vec<usize> = (0..50).collect();
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &TreeConfig::default());
        assert_eq!(tree.n_leaves(), 1);
        // Leaf value is -G/(H+λ) = -(25)/(12.5+1).
        let v = tree.predict_row(&[3.0]);
        assert!((v - (-25.0 / 13.5)).abs() < 1e-9);
    }

    #[test]
    fn deeper_trees_fit_and() {
        // AND of two binary features needs depth 2. (A perfectly balanced
        // XOR has *zero* first-order gain at the root — a known blind spot
        // of greedy trees — so AND is the right depth-2 target here.)
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let grad: Vec<f64> = rows
            .iter()
            .map(|r| {
                let y = ((r[0] as i32) & (r[1] as i32)) as f64;
                0.5 - y
            })
            .collect();
        let hess = vec![0.25; rows.len()];
        let m = BinnedMatrix::build(&rows, 4);
        let idx: Vec<usize> = (0..rows.len()).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            min_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = RegTree::fit(&m, &grad, &hess, &idx, &cfg);
        assert!(tree.predict_row(&[1.0, 1.0]) > 0.0);
        assert!(tree.predict_row(&[0.0, 1.0]) < 0.0);
        assert!(tree.predict_row(&[1.0, 0.0]) < 0.0);
        assert!(tree.predict_row(&[0.0, 0.0]) < 0.0);
    }
}
