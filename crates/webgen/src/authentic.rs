//! Authentic brand login pages — the reference gallery a
//! VisualPhishNet-style detector is trained against.
//!
//! The real VisualPhishNet ships with screenshots of the *genuine* login
//! pages of protected brands. Those pages are built by each brand's own
//! design system, not by an FWB template — which is precisely why
//! template-built FWB spoofs often sit far from the gallery in embedding
//! space and slip through (the Table 2 recall gap). This module generates
//! that gallery: one deterministic page per brand, with a brand-specific
//! class vocabulary and layout.

use crate::brands::Brand;
use freephish_simclock::Rng64;

/// Render the genuine login page of `brand`. Deterministic per brand.
pub fn authentic_login_page(brand: &Brand) -> String {
    // Layout parameters derived deterministically from the brand token so
    // each brand has its own stable design.
    let mut rng = Rng64::new(
        brand
            .token
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)),
    );
    let p = brand.token;
    let nav_items = 3 + rng.index(4);
    let promo_blocks = 1 + rng.index(3);
    let mut out = String::with_capacity(2048);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n");
    out.push_str("<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>Log in to {}</title>\n", brand.name));
    out.push_str(&format!(
        "<link rel=\"stylesheet\" href=\"https://{}/assets/{p}-design-system.css\">\n",
        brand.domain
    ));
    out.push_str("</head>\n");
    out.push_str(&format!("<body class=\"{p}-app\">\n"));
    out.push_str(&format!(
        "<header class=\"{p}-masthead\"><img class=\"{p}-logo\" src=\"https://{}/assets/logo.svg\" alt=\"{} logo\"><nav class=\"{p}-topnav\">",
        brand.domain, brand.name
    ));
    for i in 0..nav_items {
        out.push_str(&format!(
            "<a class=\"{p}-topnav-item\" href=\"/n{i}\">Item {i}</a>"
        ));
    }
    out.push_str("</nav></header>\n");
    out.push_str(&format!(
        "<main class=\"{p}-login-shell\"><h1 class=\"{p}-heading\">Log in to {}</h1>\n",
        brand.name
    ));
    out.push_str(&format!(
        "<form class=\"{p}-login-card\" action=\"https://{}/session\" method=\"post\">\
         <input class=\"{p}-field\" type=\"email\" name=\"email\" placeholder=\"Email\">\
         <input class=\"{p}-field\" type=\"password\" name=\"password\" placeholder=\"Password\">\
         <button class=\"{p}-cta\" type=\"submit\">Log in</button>\
         <a class=\"{p}-aux\" href=\"https://{}/recover\">Forgot password?</a></form>\n",
        brand.domain, brand.domain
    ));
    for i in 0..promo_blocks {
        out.push_str(&format!(
            "<aside class=\"{p}-promo-{i}\"><h2>{}</h2><p>Official {} services.</p></aside>\n",
            brand.name, brand.name
        ));
    }
    out.push_str("</main>\n");
    out.push_str(&format!(
        "<footer class=\"{p}-global-footer\"><a href=\"https://{}/privacy\">Privacy</a>\
         <a href=\"https://{}/terms\">Terms</a></footer>\n",
        brand.domain, brand.domain
    ));
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brands::BRANDS;

    #[test]
    fn deterministic_per_brand() {
        let a = authentic_login_page(&BRANDS[4]);
        let b = authentic_login_page(&BRANDS[4]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_across_brands() {
        assert_ne!(
            authentic_login_page(&BRANDS[0]),
            authentic_login_page(&BRANDS[1])
        );
    }

    #[test]
    fn has_login_form_on_brand_domain() {
        let html = authentic_login_page(&BRANDS[4]); // PayPal
        assert!(html.contains("type=\"password\""));
        assert!(html.contains("paypal.com"));
        assert!(html.contains("Log in to PayPal"));
    }

    #[test]
    fn uses_brand_class_vocabulary_not_fwb() {
        let html = authentic_login_page(&BRANDS[2]); // Netflix
        assert!(html.contains("netflix-login-card"));
        assert!(!html.contains("wsite-"));
    }
}
