//! SWAR (SIMD-within-a-register) byte classification over u64 words.
//!
//! The lexical URL features are all "count bytes of class X" scans. The
//! scalar versions walk `char`s and test each against a symbol list; these
//! kernels load 8 bytes at a time into a `u64` and classify all of them
//! with a handful of ALU ops — std only, no `unsafe`, no platform
//! intrinsics.
//!
//! All masks here are *exact per byte* (safe to `count_ones`), which rules
//! out the classic `(x - LO) & !x & HI` zero detector: its borrow can leak
//! into the byte above a zero and over-count. The carry-free variants used
//! instead:
//!
//! * zero byte:  `HI & !(x | ((x | HI) - LO))` — `x | HI` keeps every byte
//!   ≥ 0x80, so the subtraction never borrows across byte lanes;
//! * byte < n (n ≤ 0x80, high bit clear): `HI & !((x & !HI) + (0x80-n)·LO) & !x`
//!   — lane sums stay ≤ 0xFF, so no carries either;
//! * UTF-8 continuation (`10xxxxxx`): `x & !(x << 1) & HI` — bit 6 shifted
//!   onto bit 7 within the same lane.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Exact per-byte mask (high bit of each lane) of zero bytes in `x`.
#[inline]
fn zero_mask(x: u64) -> u64 {
    HI & !(x | ((x | HI).wrapping_sub(LO)))
}

/// Exact per-byte mask of bytes equal to the byte splatted in `splat`.
#[inline]
fn eq_mask(x: u64, splat: u64) -> u64 {
    zero_mask(x ^ splat)
}

/// Exact per-byte mask of ASCII digits `0x30..=0x39`.
#[inline]
fn digit_mask(x: u64) -> u64 {
    // XOR with 0x30 maps '0'..'9' to 0x00..0x09 (bits 4-5 cleared, low
    // nibble preserved); then test byte < 0x0A with the high bit clear.
    let y = x ^ (0x30 * LO);
    HI & !((y & !HI).wrapping_add((0x80 - 0x0A) * LO)) & !y
}

/// Exact per-byte mask of UTF-8 continuation bytes (`0b10xxxxxx`).
#[inline]
fn continuation_mask(x: u64) -> u64 {
    x & !(x << 1) & HI
}

#[inline]
fn words(b: &[u8]) -> (impl Iterator<Item = u64> + '_, &[u8]) {
    let chunks = b.chunks_exact(8);
    let rem = chunks.remainder();
    (
        chunks.map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        rem,
    )
}

/// Count occurrences of a single byte.
pub fn count_byte(s: &str, target: u8) -> usize {
    let splat = u64::from(target) * LO;
    let (ws, rem) = words(s.as_bytes());
    let mut n: u32 = ws.map(|w| eq_mask(w, splat).count_ones()).sum();
    n += rem.iter().filter(|&&b| b == target).count() as u32;
    n as usize
}

/// Count bytes belonging to any byte in `set` (each input byte can match at
/// most one set member, so the OR of the equality masks popcounts exactly).
pub fn count_any(s: &str, set: &[u8]) -> usize {
    let splats: Vec<u64> = set.iter().map(|&b| u64::from(b) * LO).collect();
    let (ws, rem) = words(s.as_bytes());
    let mut n: u32 = ws
        .map(|w| {
            splats
                .iter()
                .fold(0u64, |m, &sp| m | eq_mask(w, sp))
                .count_ones()
        })
        .sum();
    n += rem.iter().filter(|b| set.contains(b)).count() as u32;
    n as usize
}

/// Count ASCII digit bytes (in valid UTF-8 this equals the count of digit
/// characters — digits are always single bytes).
pub fn digit_count(s: &str) -> usize {
    let (ws, rem) = words(s.as_bytes());
    let mut n: u32 = ws.map(|w| digit_mask(w).count_ones()).sum();
    n += rem.iter().filter(|b| b.is_ascii_digit()).count() as u32;
    n as usize
}

/// Count of `char`s (Unicode scalar values): total bytes minus UTF-8
/// continuation bytes.
pub fn char_count(s: &str) -> usize {
    let (ws, rem) = words(s.as_bytes());
    let cont: u32 = ws.map(|w| continuation_mask(w).count_ones()).sum::<u32>()
        + rem.iter().filter(|&&b| (b & 0xC0) == 0x80).count() as u32;
    s.len() - cont as usize
}

/// Fraction of characters that are ASCII digits (0 for the empty string) —
/// the SWAR twin of the scalar `digit_ratio`.
pub fn digit_ratio(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    digit_count(s) as f64 / char_count(s) as f64
}

/// Exact per-byte mask of ASCII space and control bytes (byte < 0x21,
/// high bit clear).
#[inline]
fn space_control_mask(x: u64) -> u64 {
    HI & !((x & !HI).wrapping_add((0x80 - 0x21) * LO)) & !x
}

/// True when `s` contains an ASCII control byte or space — bytes no URL
/// arriving over the wire protocols can legally carry. Serving-path
/// admission uses this as a one-pass rejection before paying for a full
/// parse on garbage input.
pub fn has_space_or_control(s: &str) -> bool {
    let (mut ws, rem) = words(s.as_bytes());
    ws.any(|w| space_control_mask(w) != 0) || rem.iter().any(|&b| b < 0x21)
}

/// Bag-of-bytes fingerprint: bit `b & 63` is set for every byte `b` of `s`.
///
/// Byte values 64 apart collide onto the same bit, so a set bit only means
/// "some byte in this bucket occurs" — but a *clear* bit proves every byte
/// of its bucket is absent. That one-sided guarantee is what the brand
/// matcher's prefilters rely on: `byte_bag(needle) & !byte_bag(hay) != 0`
/// proves `needle` has a byte `hay` lacks, so `needle` cannot be a
/// substring of (or equal to) `hay`, and every distinct missing bit costs
/// at least one edit (an insert or substitution introduces one byte value).
pub fn byte_bag(s: &str) -> u64 {
    s.bytes().fold(0u64, |m, b| m | 1u64 << (b & 63))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: &[&str] = &[
        "",
        "a",
        "1234567",
        "12345678",
        "123456789",
        "https://paypal-secure.weebly.com/login?u=1&p=2",
        "~~~@@@%%%$$$!!!***===&&&",
        "abc\u{0}def\u{1}ghi",
        "héllo wörld — ünïcode ☃ 99",
        "\u{7f}\u{80}\u{ff}",
        "0/0.0:0@0",
        "a0b1c2d3e4f5g6h7i8j9",
    ];

    #[test]
    fn count_byte_matches_scalar() {
        for s in SAMPLES {
            for t in [b'.', b'-', b'0', b'@', 0u8, 0xFF] {
                let scalar = s.bytes().filter(|&b| b == t).count();
                assert_eq!(count_byte(s, t), scalar, "s={s:?} t={t:#x}");
            }
        }
    }

    #[test]
    fn count_any_matches_scalar() {
        let set = [b'@', b'~', b'%', b'$', b'!', b'*', b'=', b'&'];
        for s in SAMPLES {
            let scalar = s.bytes().filter(|b| set.contains(b)).count();
            assert_eq!(count_any(s, &set), scalar, "s={s:?}");
        }
    }

    #[test]
    fn digit_count_matches_scalar() {
        for s in SAMPLES {
            let scalar = s.chars().filter(|c| c.is_ascii_digit()).count();
            assert_eq!(digit_count(s), scalar, "s={s:?}");
        }
    }

    #[test]
    fn char_count_matches_scalar() {
        for s in SAMPLES {
            assert_eq!(char_count(s), s.chars().count(), "s={s:?}");
        }
    }

    #[test]
    fn zero_byte_after_zero_not_overcounted() {
        // The classic zero detector over-counts a 0x01 lane following a
        // zero lane; the carry-free mask must not.
        let s = "\u{0}\u{1}\u{0}\u{1}\u{0}\u{1}\u{0}\u{1}";
        assert_eq!(count_byte(s, 0), 4);
        assert_eq!(count_byte(s, 1), 4);
    }

    #[test]
    fn byte_bag_clear_bit_proves_absence() {
        for s in SAMPLES {
            let bag = byte_bag(s);
            for b in 0u8..=255 {
                if bag & (1u64 << (b & 63)) == 0 {
                    assert!(!s.as_bytes().contains(&b), "s={s:?} b={b:#x}");
                }
            }
            // Every present byte sets its bucket bit.
            for &b in s.as_bytes() {
                assert!(bag & (1u64 << (b & 63)) != 0, "s={s:?} b={b:#x}");
            }
        }
    }

    #[test]
    fn has_space_or_control_matches_scalar() {
        for s in SAMPLES {
            let scalar = s.bytes().any(|b| b < 0x21);
            assert_eq!(has_space_or_control(s), scalar, "s={s:?}");
        }
        // High-bit bytes are not control bytes.
        assert!(!has_space_or_control("\u{80}\u{ff}\u{7f}"));
        // A lone space or tab in any lane position trips the mask.
        for i in 0..12 {
            let mut s = "x".repeat(12);
            s.replace_range(i..i + 1, " ");
            assert!(has_space_or_control(&s), "space at {i}");
        }
    }

    #[test]
    fn digit_mask_rejects_high_bit_lookalikes() {
        // 0xB0..0xB9 are '0'..'9' with the high bit set — not digits.
        let bytes: Vec<u8> = vec![0xC2, 0xB0, 0xC2, 0xB9, b'5', b'a', 0xC2, 0xB5];
        let s = std::str::from_utf8(&bytes).unwrap();
        assert_eq!(digit_count(s), 1);
    }
}
