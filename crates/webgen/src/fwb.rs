//! The 17 Free Website Building services the paper studies, with the
//! attributes Section 3 identifies as attacker-relevant: URL shape, free
//! `.com` TLD, the shared SSL certificate, the injected banner, template
//! rigidity, domain age and abuse-handling behaviour.
//!
//! These descriptors are the single source of truth for every other crate:
//! `webgen` renders pages from the template vocabulary, `fwbsim` hosts and
//! takes down sites using the responsiveness parameters, and the experiment
//! binaries group results by [`FwbKind`].

use std::fmt;

/// One of the 17 studied FWB services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FwbKind {
    /// weebly.com
    Weebly,
    /// 000webhostapp.com
    Webhost000,
    /// blogspot.com
    Blogspot,
    /// wixsite.com
    Wix,
    /// sites.google.com/view/...
    GoogleSites,
    /// github.io
    GithubIo,
    /// web.app (Firebase hosting)
    Firebase,
    /// square.site (Squareup)
    Squareup,
    /// forms.zohopublic.com
    ZohoForms,
    /// wordpress.com
    Wordpress,
    /// docs.google.com/forms/...
    GoogleForms,
    /// sharepoint.com tenants
    Sharepoint,
    /// yolasite.com
    Yolasite,
    /// godaddysites.com
    GoDaddySites,
    /// mailchi.mp (Mailchimp landing pages)
    Mailchimp,
    /// glitch.me
    GlitchMe,
    /// hpage.com
    Hpage,
}

/// How a hosted site's URL is formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrlShape {
    /// `https://<site>.<suffix>/...` (e.g. `victim.weebly.com`).
    Subdomain,
    /// `https://<host><prefix><site>` (e.g.
    /// `sites.google.com/view/victim`).
    PathBased,
}

/// Static description of one FWB service.
#[derive(Debug, Clone, Copy)]
pub struct FwbDescriptor {
    /// Which service this is.
    pub kind: FwbKind,
    /// Human-readable name as the paper prints it.
    pub display_name: &'static str,
    /// Host suffix for subdomain URLs, or the fixed host for path URLs.
    pub host: &'static str,
    /// Path prefix for [`UrlShape::PathBased`] services, `""` otherwise.
    pub path_prefix: &'static str,
    /// URL shape.
    pub url_shape: UrlShape,
    /// Whether free sites get a `.com` registrable domain (14 of 17 do).
    pub offers_com_tld: bool,
    /// Organisation on the shared SSL certificate all hosted sites inherit.
    pub ssl_org: &'static str,
    /// Age of the FWB's registrable domain, in days (Section 3: median FWB
    /// phishing "domain age" is 13.7 *years* because WHOIS sees the FWB).
    pub domain_age_days: u64,
    /// Fraction of the page skeleton fixed by the builder's templates;
    /// drives the Table 1 phishing↔benign code similarity per service.
    pub template_rigidity: f64,
    /// Whether free sites carry a service banner (header/footer ad).
    pub has_banner: bool,
    /// CSS class vocabulary prefix used by the service's generated markup.
    pub class_prefix: &'static str,
    /// Number of phishing URLs attributed to this service in the paper's
    /// six-month measurement (Table 4's "URLs" column; sums to 31,405).
    pub paper_url_count: u64,
}

/// All 17 descriptors, in Table 4 order.
pub const ALL_FWBS: &[FwbDescriptor] = &[
    FwbDescriptor {
        kind: FwbKind::Weebly,
        display_name: "Weebly",
        host: "weebly.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Square, Inc.",
        domain_age_days: 6800,
        template_rigidity: 0.90,
        has_banner: true,
        class_prefix: "wsite",
        paper_url_count: 7031,
    },
    FwbDescriptor {
        kind: FwbKind::Webhost000,
        display_name: "000webhost",
        host: "000webhostapp.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Hostinger, UAB",
        domain_age_days: 3600,
        template_rigidity: 0.79,
        has_banner: true,
        class_prefix: "wh",
        paper_url_count: 5934,
    },
    FwbDescriptor {
        kind: FwbKind::Blogspot,
        display_name: "Blogspot",
        host: "blogspot.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Google Trust Services LLC",
        domain_age_days: 9100,
        template_rigidity: 0.71,
        has_banner: true,
        class_prefix: "blogger",
        paper_url_count: 3156,
    },
    FwbDescriptor {
        kind: FwbKind::Wix,
        display_name: "Wix.com",
        host: "wixsite.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Wix.com Ltd.",
        domain_age_days: 4700,
        template_rigidity: 0.73,
        has_banner: true,
        class_prefix: "wix",
        paper_url_count: 2338,
    },
    FwbDescriptor {
        kind: FwbKind::GoogleSites,
        display_name: "Google Sites",
        host: "sites.google.com",
        path_prefix: "/view/",
        url_shape: UrlShape::PathBased,
        offers_com_tld: true,
        ssl_org: "Google Trust Services LLC",
        domain_age_days: 10200,
        template_rigidity: 0.82,
        has_banner: true,
        class_prefix: "gsites",
        paper_url_count: 2247,
    },
    FwbDescriptor {
        kind: FwbKind::GithubIo,
        display_name: "github.io",
        host: "github.io",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: false,
        ssl_org: "GitHub, Inc.",
        domain_age_days: 4300,
        // Pages are user-authored from scratch: barely any shared skeleton.
        template_rigidity: 0.25,
        has_banner: false,
        class_prefix: "gh",
        paper_url_count: 942,
    },
    FwbDescriptor {
        kind: FwbKind::Firebase,
        display_name: "Firebase",
        host: "web.app",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: false,
        ssl_org: "Google Trust Services LLC",
        domain_age_days: 2500,
        template_rigidity: 0.42,
        has_banner: false,
        class_prefix: "fb-hosting",
        paper_url_count: 1416,
    },
    FwbDescriptor {
        kind: FwbKind::Squareup,
        display_name: "Squareup",
        host: "square.site",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Square, Inc.",
        domain_age_days: 2900,
        template_rigidity: 0.71,
        has_banner: true,
        class_prefix: "sq",
        paper_url_count: 1736,
    },
    FwbDescriptor {
        kind: FwbKind::ZohoForms,
        display_name: "Zoho Forms",
        host: "forms.zohopublic.com",
        path_prefix: "/form/",
        url_shape: UrlShape::PathBased,
        offers_com_tld: true,
        ssl_org: "Zoho Corporation",
        domain_age_days: 5200,
        template_rigidity: 0.80,
        has_banner: true,
        class_prefix: "zf",
        paper_url_count: 498,
    },
    FwbDescriptor {
        kind: FwbKind::Wordpress,
        display_name: "Wordpress",
        host: "wordpress.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Automattic, Inc.",
        domain_age_days: 7300,
        template_rigidity: 0.66,
        has_banner: true,
        class_prefix: "wp",
        paper_url_count: 786,
    },
    FwbDescriptor {
        kind: FwbKind::GoogleForms,
        display_name: "Google Forms",
        host: "docs.google.com",
        path_prefix: "/forms/d/e/",
        url_shape: UrlShape::PathBased,
        offers_com_tld: true,
        ssl_org: "Google Trust Services LLC",
        domain_age_days: 9500,
        template_rigidity: 0.83,
        has_banner: true,
        class_prefix: "freebird",
        paper_url_count: 1397,
    },
    FwbDescriptor {
        kind: FwbKind::Sharepoint,
        display_name: "Sharepoint",
        host: "sharepoint.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Microsoft Corporation",
        domain_age_days: 8400,
        template_rigidity: 0.79,
        has_banner: false,
        class_prefix: "sp",
        paper_url_count: 2181,
    },
    FwbDescriptor {
        kind: FwbKind::Yolasite,
        display_name: "Yolasite",
        host: "yolasite.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "Yola, Inc.",
        domain_age_days: 5600,
        template_rigidity: 0.72,
        has_banner: true,
        class_prefix: "yola",
        paper_url_count: 601,
    },
    FwbDescriptor {
        kind: FwbKind::GoDaddySites,
        display_name: "GoDaddySites",
        host: "godaddysites.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "GoDaddy.com, LLC",
        domain_age_days: 2200,
        template_rigidity: 0.75,
        has_banner: true,
        class_prefix: "gd",
        paper_url_count: 418,
    },
    FwbDescriptor {
        kind: FwbKind::Mailchimp,
        display_name: "MailChimp",
        host: "mailchi.mp",
        path_prefix: "/",
        url_shape: UrlShape::PathBased,
        offers_com_tld: true,
        ssl_org: "The Rocket Science Group LLC",
        domain_age_days: 3100,
        template_rigidity: 0.78,
        has_banner: true,
        class_prefix: "mc",
        paper_url_count: 183,
    },
    FwbDescriptor {
        kind: FwbKind::GlitchMe,
        display_name: "glitch.me",
        host: "glitch.me",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: false,
        ssl_org: "Fastly, Inc.",
        domain_age_days: 2700,
        template_rigidity: 0.35,
        has_banner: false,
        class_prefix: "glitch",
        paper_url_count: 480,
    },
    FwbDescriptor {
        kind: FwbKind::Hpage,
        display_name: "hpage",
        host: "hpage.com",
        path_prefix: "",
        url_shape: UrlShape::Subdomain,
        offers_com_tld: true,
        ssl_org: "hPage GmbH",
        domain_age_days: 5900,
        template_rigidity: 0.70,
        has_banner: true,
        class_prefix: "hp",
        paper_url_count: 61,
    },
];

impl FwbKind {
    /// Look up this service's descriptor.
    pub fn descriptor(self) -> &'static FwbDescriptor {
        ALL_FWBS
            .iter()
            .find(|d| d.kind == self)
            .expect("every FwbKind has a descriptor")
    }

    /// All kinds, in Table 4 order.
    pub fn all() -> impl Iterator<Item = FwbKind> {
        ALL_FWBS.iter().map(|d| d.kind)
    }

    /// Build the URL for a site named `site` on this service.
    ///
    /// ```
    /// use freephish_webgen::FwbKind;
    /// assert_eq!(
    ///     FwbKind::GoogleSites.site_url("oofifhdfhehdy"),
    ///     "https://sites.google.com/view/oofifhdfhehdy"
    /// );
    /// ```
    pub fn site_url(self, site: &str) -> String {
        let d = self.descriptor();
        match d.url_shape {
            UrlShape::Subdomain => format!("https://{site}.{}/", d.host),
            UrlShape::PathBased => format!("https://{}{}{site}", d.host, d.path_prefix),
        }
    }

    /// Identify which FWB (if any) serves a URL. The inverse of
    /// [`FwbKind::site_url`], usable on any URL string: this is the check
    /// the streaming module runs on every post.
    ///
    /// ```
    /// use freephish_webgen::FwbKind;
    /// assert_eq!(
    ///     FwbKind::classify_url("https://evil.weebly.com/login"),
    ///     Some(FwbKind::Weebly)
    /// );
    /// assert_eq!(FwbKind::classify_url("https://example.com/"), None);
    /// ```
    pub fn classify_url(url: &str) -> Option<FwbKind> {
        let rest = url
            .strip_prefix("https://")
            .or_else(|| url.strip_prefix("http://"))
            .unwrap_or(url);
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        let host = host.to_ascii_lowercase();
        for d in ALL_FWBS {
            match d.url_shape {
                UrlShape::Subdomain => {
                    if host.ends_with(&format!(".{}", d.host)) {
                        return Some(d.kind);
                    }
                }
                UrlShape::PathBased => {
                    if host == d.host
                        && path.starts_with(d.path_prefix)
                        && path.len() > d.path_prefix.len()
                    {
                        return Some(d.kind);
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for FwbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.descriptor().display_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_services() {
        assert_eq!(ALL_FWBS.len(), 17);
        assert_eq!(FwbKind::all().count(), 17);
    }

    #[test]
    fn paper_url_counts_sum_to_total() {
        let total: u64 = ALL_FWBS.iter().map(|d| d.paper_url_count).sum();
        assert_eq!(total, 31_405, "Table 4 total must match the paper");
    }

    #[test]
    fn fourteen_offer_com() {
        let n = ALL_FWBS.iter().filter(|d| d.offers_com_tld).count();
        assert_eq!(n, 14, "the paper: 14 of 17 FWBs provide a .com TLD");
    }

    #[test]
    fn descriptor_round_trip() {
        for d in ALL_FWBS {
            assert_eq!(d.kind.descriptor().display_name, d.display_name);
        }
    }

    #[test]
    fn subdomain_url_shape() {
        assert_eq!(
            FwbKind::Weebly.site_url("evil-login"),
            "https://evil-login.weebly.com/"
        );
    }

    #[test]
    fn pathbased_url_shape() {
        assert_eq!(
            FwbKind::GoogleSites.site_url("oofifhdfhehdy"),
            "https://sites.google.com/view/oofifhdfhehdy"
        );
    }

    #[test]
    fn classify_url_inverse_of_site_url() {
        for kind in FwbKind::all() {
            let url = kind.site_url("example-site-1");
            assert_eq!(FwbKind::classify_url(&url), Some(kind), "url={url}");
        }
    }

    #[test]
    fn classify_rejects_non_fwb() {
        assert_eq!(FwbKind::classify_url("https://example.com/a"), None);
        assert_eq!(FwbKind::classify_url("https://weebly.com/"), None); // apex, not a site
        assert_eq!(FwbKind::classify_url("https://sites.google.com/"), None);
        assert_eq!(
            FwbKind::classify_url("https://sites.google.com/view/"),
            None
        );
    }

    #[test]
    fn rigidity_orders_like_table1() {
        // Table 1: Weebly most similar, github.io least.
        let weebly = FwbKind::Weebly.descriptor().template_rigidity;
        let gh = FwbKind::GithubIo.descriptor().template_rigidity;
        for d in ALL_FWBS {
            assert!(d.template_rigidity <= weebly + 1e-9 || d.kind == FwbKind::Weebly);
            assert!(d.template_rigidity >= gh - 1e-9 || d.kind == FwbKind::GithubIo);
        }
    }

    #[test]
    fn google_properties_share_ssl_org() {
        // Figure 3's observation: Google Sites shares Google's certificate.
        assert_eq!(
            FwbKind::GoogleSites.descriptor().ssl_org,
            FwbKind::Blogspot.descriptor().ssl_org
        );
    }
}
