//! A from-scratch, panic-free HTML parser sized for feature extraction.
//!
//! FreePhish's pre-processing module extracts HTML-based features from every
//! crawled website: link structure, form and input fields, iframes, meta
//! tags (notably `<meta name="robots" content="noindex">`), inline styles
//! that hide FWB banners, and raw tag elements for the Appendix-A code
//! similarity computation. That workload needs a tolerant tokenizer and a
//! lightweight DOM — not a full HTML5 spec implementation — so this crate
//! provides exactly that, with the smoltcp virtues: simple, robust,
//! deterministic, documented.
//!
//! Guarantees:
//! * parsing never panics, for any input (property-tested);
//! * unclosed/misnested tags degrade gracefully (auto-close at EOF, ignore
//!   stray closers);
//! * `<script>`/`<style>` contents are treated as raw text.

pub mod dom;
pub mod facts;
pub mod legacy;
pub mod query;
pub mod sdom;
pub mod span;
pub mod token;

pub use dom::{Document, Node, NodeId};
pub use facts::PageFacts;
pub use sdom::{SpanDocument, SpanNode};
pub use span::{tokenize_spans, SpanAttr, SpanToken};
pub use token::{decode_entities, tokenize, Attr, Token};

/// Parse an HTML document. Infallible: any byte soup yields *some* tree.
///
/// ```
/// let doc = freephish_htmlparse::parse(
///     r#"<title>Sign in</title><form><input type="password"></form>"#,
/// );
/// assert_eq!(doc.title().as_deref(), Some("Sign in"));
/// assert!(doc.has_login_form());
/// ```
pub fn parse(html: &str) -> Document {
    dom::Document::parse(html)
}

/// Cheap sniff: does this body plausibly hold markup worth feature
/// extraction? The classify-on-miss fetch path uses this to negative-cache
/// non-HTML responses (JSON blobs, plain text, empty bodies) instead of
/// running the tokenizer and model over them.
///
/// Deliberately permissive — [`parse`] is infallible, so a false positive
/// only costs one wasted classification. A leading UTF-8 BOM and
/// whitespace are skipped; the body must then open a tag (`<`) and close
/// one (`>`) somewhere after it.
pub fn looks_like_html(body: &str) -> bool {
    let rest = body.trim_start_matches('\u{feff}').trim_start();
    match rest.strip_prefix('<') {
        Some(tail) => tail.contains('>'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_small_page() {
        let doc = parse(
            r#"<html><head><title>Hi</title></head>
               <body><p class="x">hello <b>world</b></p></body></html>"#,
        );
        assert_eq!(doc.title().as_deref(), Some("Hi"));
        assert_eq!(doc.elements_by_tag("p").len(), 1);
        assert!(doc.visible_text().contains("hello"));
        assert!(doc.visible_text().contains("world"));
    }

    #[test]
    fn looks_like_html_accepts_markup_and_rejects_blobs() {
        assert!(looks_like_html("<!doctype html><html></html>"));
        assert!(looks_like_html("  \n\t<div>x</div>"));
        assert!(looks_like_html("\u{feff}<html>"));
        assert!(!looks_like_html(""));
        assert!(!looks_like_html("   "));
        assert!(!looks_like_html("{\"error\": \"not found\"}"));
        assert!(!looks_like_html("plain text page"));
        assert!(!looks_like_html("<unterminated"));
    }
}
