//! Zero-copy HTML tokenizer: spans borrowed from the source document.
//!
//! This is the hot-path twin of the owned tokenizer in [`crate::token`].
//! Tokens reference the source string wherever possible: tag and attribute
//! names borrow when already lower-case, text and attribute values borrow
//! when entity decoding would not change a byte, and comments always borrow.
//! The owned [`crate::token::tokenize`] API is a thin adapter over this
//! iterator, so both produce exactly the same stream (property-tested
//! against the retained [`crate::legacy`] implementation).
//!
//! Raw-text elements (`script`, `style`) are matched with an in-place
//! case-insensitive scan instead of lower-casing the remaining document,
//! which turns the legacy tokenizer's accidental O(n²) on script-heavy
//! pages into a single pass.

use crate::token::decode_entities;
use std::borrow::Cow;

/// One attribute on an open tag: name lower-cased, value entity-decoded.
/// Both borrow from the source unless folding/decoding changed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAttr<'a> {
    /// Attribute name, lower-cased.
    pub name: Cow<'a, str>,
    /// Attribute value; empty for valueless attributes.
    pub value: Cow<'a, str>,
}

impl SpanAttr<'_> {
    /// The value as a plain `&str`.
    pub fn value_str(&self) -> &str {
        self.value.as_ref()
    }
}

/// One borrowed token of the HTML stream. Mirrors [`crate::token::Token`]
/// field for field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanToken<'a> {
    /// `<tag attr=...>`.
    Open {
        /// Tag name, lower-cased.
        tag: Cow<'a, str>,
        /// Attributes in document order.
        attrs: Vec<SpanAttr<'a>>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    Close {
        /// Tag name, lower-cased.
        tag: Cow<'a, str>,
    },
    /// A run of character data (entity-decoded; raw inside script/style).
    Text(Cow<'a, str>),
    /// `<!-- ... -->` contents, always borrowed.
    Comment(&'a str),
}

/// Elements whose content is raw text until the matching close tag.
pub(crate) const RAW_TEXT: &[&str] = &["script", "style"];

/// Lower-case `s`, borrowing when it already is.
pub(crate) fn lower_cow(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// First case-insensitive occurrence of `needle_lower` (must be ASCII
/// lower-case) in `hay`, as a byte offset. Scans in place — no allocation.
fn find_ci(hay: &str, needle_lower: &str) -> Option<usize> {
    let h = hay.as_bytes();
    let n = needle_lower.as_bytes();
    if n.is_empty() {
        return Some(0);
    }
    if h.len() < n.len() {
        return None;
    }
    let first = n[0];
    (0..=h.len() - n.len()).find(|&k| {
        h[k].to_ascii_lowercase() == first
            && h[k + 1..k + n.len()]
                .iter()
                .zip(&n[1..])
                .all(|(a, b)| a.to_ascii_lowercase() == *b)
    })
}

/// Tokenize into borrowed span tokens. Never panics.
pub fn tokenize_spans(html: &str) -> SpanTokenizer<'_> {
    SpanTokenizer {
        html,
        i: 0,
        text_start: 0,
        pending: Vec::new(),
        pending_next: 0,
    }
}

/// Streaming tokenizer over a source document. Yields [`SpanToken`]s in
/// exactly the order (and with exactly the content) of the owned API.
#[derive(Debug, Clone)]
pub struct SpanTokenizer<'a> {
    html: &'a str,
    i: usize,
    text_start: usize,
    /// Tokens produced by one construct ahead of the caller (a raw-text
    /// element yields Open + Text + Close in one step). Drained FIFO.
    pending: Vec<SpanToken<'a>>,
    pending_next: usize,
}

impl<'a> SpanTokenizer<'a> {
    fn take_pending(&mut self) -> Option<SpanToken<'a>> {
        if self.pending_next < self.pending.len() {
            let t = std::mem::replace(&mut self.pending[self.pending_next], SpanToken::Comment(""));
            self.pending_next += 1;
            if self.pending_next == self.pending.len() {
                self.pending.clear();
                self.pending_next = 0;
            }
            Some(t)
        } else {
            None
        }
    }

    /// Parse the construct at `self.i` (which points at a construct-starting
    /// `<`), pushing its token(s) onto `pending` and advancing `i` and
    /// `text_start`.
    fn parse_construct(&mut self) {
        let html = self.html;
        let b = html.as_bytes();
        let i = self.i;

        // Comment?
        if html[i..].starts_with("<!--") {
            let body_start = i + 4;
            match html[body_start..].find("-->") {
                Some(end) => {
                    self.pending
                        .push(SpanToken::Comment(&html[body_start..body_start + end]));
                    self.i = body_start + end + 3;
                }
                None => {
                    self.pending.push(SpanToken::Comment(&html[body_start..]));
                    self.i = b.len();
                }
            }
            self.text_start = self.i;
            return;
        }

        // Doctype / processing instruction: skip to '>'.
        if matches!(b.get(i + 1), Some(b'!') | Some(b'?')) {
            match html[i..].find('>') {
                Some(end) => self.i = i + end + 1,
                None => self.i = b.len(),
            }
            self.text_start = self.i;
            return;
        }

        // Close tag?
        if b.get(i + 1) == Some(&b'/') {
            let name_start = i + 2;
            match html[name_start..].find('>').map(|e| name_start + e) {
                Some(e) => {
                    let trimmed = html[name_start..e].trim();
                    let name_end = trimmed
                        .char_indices()
                        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '-'))
                        .map(|(k, _)| k)
                        .unwrap_or(trimmed.len());
                    let name = &trimmed[..name_end];
                    if !name.is_empty() {
                        self.pending.push(SpanToken::Close {
                            tag: lower_cow(name),
                        });
                    }
                    self.i = e + 1;
                }
                None => self.i = b.len(),
            }
            self.text_start = self.i;
            return;
        }

        // Open tag.
        let (tag, attrs, self_closing, next) = parse_open_tag_spans(html, i);
        let is_raw = RAW_TEXT.contains(&tag.as_ref()) && !self_closing;
        let raw_tag = is_raw.then(|| tag.clone());
        self.pending.push(SpanToken::Open {
            tag,
            attrs,
            self_closing,
        });
        self.i = next;
        if let Some(tag) = raw_tag {
            // Swallow raw text until the matching close tag,
            // case-insensitively, without lower-casing the whole suffix.
            let mut close = String::with_capacity(2 + tag.len());
            close.push_str("</");
            close.push_str(tag.as_ref());
            let i = self.i;
            match find_ci(&html[i..], &close) {
                Some(offset) => {
                    if offset > 0 {
                        self.pending
                            .push(SpanToken::Text(Cow::Borrowed(&html[i..i + offset])));
                    }
                    let after = i + offset;
                    let gt = html[after..].find('>').map(|g| after + g + 1);
                    self.pending.push(SpanToken::Close { tag });
                    self.i = gt.unwrap_or(b.len());
                }
                None => {
                    if i < b.len() {
                        self.pending
                            .push(SpanToken::Text(Cow::Borrowed(&html[i..])));
                    }
                    self.i = b.len();
                }
            }
        }
        self.text_start = self.i;
    }
}

impl<'a> Iterator for SpanTokenizer<'a> {
    type Item = SpanToken<'a>;

    fn next(&mut self) -> Option<SpanToken<'a>> {
        if let Some(t) = self.take_pending() {
            return Some(t);
        }
        let b = self.html.as_bytes();
        while self.i < b.len() {
            if b[self.i] != b'<' {
                self.i += 1;
                continue;
            }
            // A '<' only starts a construct when followed by '!', '?', '/',
            // or a letter; otherwise it is literal text.
            let starts_construct =
                matches!(b.get(self.i + 1), Some(b'!') | Some(b'?') | Some(b'/'))
                    || b.get(self.i + 1)
                        .map(|c| c.is_ascii_alphabetic())
                        .unwrap_or(false);
            if !starts_construct {
                self.i += 1;
                continue;
            }
            let text = (self.i > self.text_start).then(|| &self.html[self.text_start..self.i]);
            self.parse_construct();
            if let Some(raw) = text {
                if !raw.chars().all(char::is_whitespace) {
                    return Some(SpanToken::Text(decode_entities(raw)));
                }
            }
            if let Some(t) = self.take_pending() {
                return Some(t);
            }
            // Construct produced no token (doctype, PI, empty close name):
            // keep scanning.
        }
        if self.text_start < b.len() {
            let raw = &self.html[self.text_start..];
            self.text_start = b.len();
            if !raw.chars().all(char::is_whitespace) {
                return Some(SpanToken::Text(decode_entities(raw)));
            }
        }
        None
    }
}

/// Parse an open tag starting at `html[start] == '<'`. Returns
/// (tag, attrs, self_closing, index-after-`>`). EOF-recovering, exactly
/// like the owned parser.
fn parse_open_tag_spans(
    html: &str,
    start: usize,
) -> (Cow<'_, str>, Vec<SpanAttr<'_>>, bool, usize) {
    let b = html.as_bytes();
    let mut i = start + 1;

    let name_start = i;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'-') {
        i += 1;
    }
    let tag = lower_cow(&html[name_start..i]);

    let mut attrs: Vec<SpanAttr<'_>> = Vec::new();
    let mut self_closing = false;
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            // Unterminated tag at EOF: recover with what we have.
            return (tag, attrs, self_closing, i);
        }
        match b[i] {
            b'>' => return (tag, attrs, self_closing, i + 1),
            b'/' => {
                self_closing = true;
                i += 1;
            }
            b'<' => {
                // Broken tag; re-synchronise by treating it as closed here.
                return (tag, attrs, self_closing, i);
            }
            _ => {
                let an_start = i;
                while i < b.len()
                    && !b[i].is_ascii_whitespace()
                    && b[i] != b'='
                    && b[i] != b'>'
                    && b[i] != b'/'
                {
                    i += 1;
                }
                let name = lower_cow(&html[an_start..i]);
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                let mut value = Cow::Borrowed("");
                if i < b.len() && b[i] == b'=' {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < b.len() && (b[i] == b'"' || b[i] == b'\'') {
                        let quote = b[i];
                        i += 1;
                        let v_start = i;
                        while i < b.len() && b[i] != quote {
                            i += 1;
                        }
                        value = decode_entities(&html[v_start..i.min(b.len())]);
                        if i < b.len() {
                            i += 1; // past closing quote
                        }
                    } else {
                        let v_start = i;
                        while i < b.len() && !b[i].is_ascii_whitespace() && b[i] != b'>' {
                            i += 1;
                        }
                        value = decode_entities(&html[v_start..i]);
                    }
                }
                if !name.is_empty() {
                    attrs.push(SpanAttr { name, value });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(html: &str) -> Vec<SpanToken<'_>> {
        tokenize_spans(html).collect()
    }

    #[test]
    fn borrows_when_already_clean() {
        let toks = collect(r#"<p class="x">hello</p>"#);
        match &toks[0] {
            SpanToken::Open { tag, attrs, .. } => {
                assert!(matches!(tag, Cow::Borrowed(_)));
                assert!(matches!(attrs[0].name, Cow::Borrowed(_)));
                assert!(matches!(attrs[0].value, Cow::Borrowed(_)));
            }
            other => panic!("expected open, got {other:?}"),
        }
        assert!(matches!(&toks[1], SpanToken::Text(Cow::Borrowed("hello"))));
    }

    #[test]
    fn allocates_only_when_folding_changes_bytes() {
        let toks = collect("<DIV>a &amp; b</DIV>");
        match &toks[0] {
            SpanToken::Open { tag, .. } => assert!(matches!(tag, Cow::Owned(_))),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&toks[1], SpanToken::Text(Cow::Owned(t)) if t == "a & b"));
    }

    #[test]
    fn raw_text_borrows_without_decoding() {
        let toks = collect("<script>a &amp; b</script>");
        assert!(matches!(
            &toks[1],
            SpanToken::Text(Cow::Borrowed("a &amp; b"))
        ));
    }

    #[test]
    fn raw_close_found_case_insensitively() {
        let toks = collect("<script>x</SCRIPT>after");
        assert!(matches!(&toks[2], SpanToken::Close { tag } if tag == "script"));
        assert!(matches!(&toks[3], SpanToken::Text(t) if t == "after"));
    }

    #[test]
    fn comments_always_borrow() {
        let toks = collect("<!-- C -->");
        assert!(matches!(&toks[0], SpanToken::Comment(" C ")));
    }

    #[test]
    fn find_ci_matches_lowercase_scan() {
        assert_eq!(find_ci("abcDEFg", "def"), Some(3));
        assert_eq!(find_ci("abc", "zz"), None);
        assert_eq!(find_ci("xx</ScRiPt>", "</script"), Some(2));
        assert_eq!(find_ci("", ""), Some(0));
    }
}
