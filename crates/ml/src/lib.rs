//! From-scratch machine learning substrate for the FreePhish classifier.
//!
//! The paper's classification module is a two-layer *stacking* model
//! (Li et al. 2019) whose base learners are three gradient-boosted
//! decision-tree variants — GBDT, XGBoost and LightGBM. Its baselines
//! include a URL-string model (URLNet) and two visual models
//! (VisualPhishNet, PhishIntention). None of those ecosystems exist as
//! offline Rust crates, so this crate implements the algorithm families
//! directly:
//!
//! * [`tree`] — histogram-based regression trees with second-order
//!   (gradient/hessian) split gains, level-wise or leaf-wise growth;
//! * [`gbdt`] — gradient boosting for binary classification with logistic
//!   loss, with presets mirroring the three variants' characteristic knobs
//!   ([`gbdt::GbdtConfig::classic`], [`gbdt::GbdtConfig::xgboost_style`],
//!   [`gbdt::GbdtConfig::lightgbm_style`]);
//! * [`stacking`] — the two-layer StackModel: K-fold out-of-fold base
//!   predictions plus a majority-vote feature feed a second-layer GBDT;
//! * [`flat`] — the flat packed-node inference layout every fitted
//!   ensemble is compiled into (branchless stepping, leaves pre-scaled,
//!   bit-identical to the boxed trees);
//! * [`forest`] — a random forest (the classifier the paper's Section 4
//!   overview names before Section 4.2 settles on stacking);
//! * [`logistic`] — n-gram logistic regression (the URLNet-style baseline);
//! * [`knn`] — nearest-neighbour search over dense vectors (the
//!   VisualPhishNet-style layout-signature baseline);
//! * [`dataset`] / [`metrics`] — the plumbing: feature matrices, splits,
//!   K-fold indices, confusion-matrix metrics and AUC.
//!
//! Everything is deterministic given a seed and has no dependencies beyond
//! the simulation kernel's RNG.

pub mod dataset;
pub mod flat;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod logistic;
pub mod metrics;
pub mod stacking;
pub mod tree;

pub use dataset::Dataset;
pub use flat::{FlatForest, FlatForestBuilder};
pub use forest::{ForestConfig, RandomForest};
pub use gbdt::{Gbdt, GbdtConfig};
pub use knn::Knn;
pub use logistic::LogisticRegression;
pub use metrics::{threshold_at_fnr, BinaryMetrics, ConfusionMatrix};
pub use stacking::{StackModel, StackModelConfig};
