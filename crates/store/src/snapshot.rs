//! Snapshot files: a durable point-in-time image of the consumer's state,
//! letting compaction delete every WAL segment the image already covers.
//!
//! A snapshot is `snap-<seq>.snap`: an 8-byte header (`FPSN` magic + the
//! covered segment index, little-endian) followed by one checksummed frame
//! whose payload is the consumer's serialized state. Snapshots are written
//! to a temporary file, fsynced, then renamed into place and the directory
//! fsynced — so a crash mid-snapshot leaves the previous snapshot (and the
//! segments it needs) untouched.

use crate::segment::{encode_frame_into, scan_buffer};
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FPSN";

/// File name of the snapshot covering segments `<= seq`.
pub fn snapshot_file_name(seq: u32) -> String {
    format!("snap-{seq:010}.snap")
}

/// Parse a snapshot file name back to its covered segment index.
pub fn parse_snapshot_name(name: &str) -> Option<u32> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Fsync a directory so renames/unlinks within it are durable.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Durably write the snapshot covering segments `<= seq`. Returns the
/// final path.
pub fn write_snapshot(dir: &Path, seq: u32, payload: &[u8]) -> std::io::Result<PathBuf> {
    let final_path = dir.join(snapshot_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(seq)));
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&seq.to_le_bytes());
    encode_frame_into(&mut bytes, payload);
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    fsync_dir(dir)?;
    Ok(final_path)
}

/// Load and validate a snapshot file. `Ok(None)` means the file exists but
/// is invalid (bad magic, bad checksum, trailing garbage) — recovery falls
/// back to an older snapshot or to a full WAL replay.
pub fn load_snapshot(path: &Path, expected_seq: u32) -> std::io::Result<Option<Vec<u8>>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 8
        || bytes[..4] != SNAPSHOT_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != expected_seq
    {
        return Ok(None);
    }
    let (mut frames, torn) = scan_buffer(&bytes[8..]);
    if torn.is_some() || frames.len() != 1 {
        return Ok(None);
    }
    Ok(Some(frames.remove(0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn names_round_trip() {
        assert_eq!(snapshot_file_name(42), "snap-0000000042.snap");
        assert_eq!(parse_snapshot_name("snap-0000000042.snap"), Some(42));
        assert_eq!(parse_snapshot_name("wal-0000000042.log"), None);
    }

    #[test]
    fn write_load_round_trip() {
        let dir = TempDir::new("snapshot-roundtrip");
        let path = write_snapshot(dir.path(), 5, b"state blob").unwrap();
        assert_eq!(load_snapshot(&path, 5).unwrap().unwrap(), b"state blob");
        // Wrong expected sequence: rejected.
        assert!(load_snapshot(&path, 6).unwrap().is_none());
    }

    #[test]
    fn corrupted_snapshot_rejected_not_propagated() {
        let dir = TempDir::new("snapshot-corrupt");
        let path = write_snapshot(dir.path(), 1, &vec![7u8; 256]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 17] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&path, 1).unwrap().is_none());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let dir = TempDir::new("snapshot-trunc");
        let path = write_snapshot(dir.path(), 2, b"0123456789").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(load_snapshot(&path, 2).unwrap().is_none());
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let dir = TempDir::new("snapshot-tmp");
        write_snapshot(dir.path(), 3, b"x").unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
    }
}
