//! Single-pass page-feature extraction over the zero-copy token stream.
//!
//! The feature extractor in `freephish-core` needs a dozen counts and flags
//! per page (links and their partition, forms, credential inputs, the
//! title, the noindex meta, the obfuscated-banner signal...). The query API
//! in [`crate::query`] computes each with its own pass over a built DOM —
//! a dozen arena scans plus one `Vec` per call. [`PageFacts::extract`]
//! computes *all* of them in one streaming pass over borrowed span tokens,
//! building no tree and allocating only for the title text and the handful
//! of tokens whose bytes fold.
//!
//! Equivalence contract: every field matches the corresponding
//! [`crate::dom::Document`] query bit for bit (property-tested against the
//! DOM path on arbitrary, including malformed, HTML).

use crate::dom::VOID;
use crate::query::{freephish_urlparse_lite_host, SENSITIVE_NAMES};
use crate::span::{tokenize_spans, SpanAttr, SpanToken};
use std::borrow::Cow;

/// Everything the FreePhish feature extractor needs from a page, computed
/// in one traversal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageFacts {
    /// `<a href=...>` count ([`Document::links`](crate::dom::Document) length).
    pub n_links: usize,
    /// Links staying inside `own_registrable_domain` (incl. relative).
    pub n_internal_links: usize,
    /// Links leaving `own_registrable_domain`.
    pub n_external_links: usize,
    /// Dead navigation: `href=""`, `"#"`, `javascript:void...`.
    pub n_empty_links: usize,
    /// Any `<input type="password">` present.
    pub has_login_form: bool,
    /// Inputs collecting sensitive data (password/email/tel types, plus
    /// text inputs with credential vocabulary in name/placeholder/id).
    pub n_credential_inputs: usize,
    /// Total DOM node count (elements + text runs + comments).
    pub dom_nodes: usize,
    /// `<form>` element count.
    pub n_forms: usize,
    /// `<iframe>` element count.
    pub n_iframes: usize,
    /// First `<title>` text, whitespace-normalised; `None` when absent or
    /// empty.
    pub title: Option<String>,
    /// `<meta name="robots|googlebot" content="...noindex...">` present.
    pub has_noindex: bool,
    /// A `class*="banner"` element hidden by inline style.
    pub banner_obfuscated: bool,
}

/// First attribute value by (lower-case) name, like `ElementRef::attr`.
fn attr<'b, 'a>(attrs: &'b [SpanAttr<'a>], name: &str) -> Option<&'b str> {
    attrs
        .iter()
        .find(|a| a.name == name)
        .map(|a| a.value.as_ref())
}

/// Mirror of `ElementRef::is_hidden_by_style`: lower-case the style, strip
/// all whitespace, look for the two hiding declarations.
fn hidden_by_style(style: &str) -> bool {
    let s: String = style
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    s.contains("display:none") || s.contains("visibility:hidden")
}

/// Lower-case `s` into the reusable buffer `buf` and return it as a slice.
fn lower_into<'b>(buf: &'b mut String, s: &str) -> &'b str {
    buf.clear();
    buf.extend(s.chars().map(|c| c.to_ascii_lowercase()));
    buf.as_str()
}

impl PageFacts {
    /// Extract all facts from `html` in a single pass.
    /// `own_registrable_domain` drives the internal/external link
    /// partition, exactly as `Document::link_partition` does.
    pub fn extract(html: &str, own_registrable_domain: &str) -> PageFacts {
        let mut facts = PageFacts::default();
        // Open-element stack mirroring `Document::from_tokens`: void and
        // self-closing elements are never pushed; close tags unwind to the
        // matching open ancestor or are ignored.
        let mut stack: Vec<Cow<'_, str>> = Vec::new();
        // Title capture: `Some(depth)` while inside the first <title>'s
        // subtree, where `depth` is the stack length just after pushing it.
        let mut title_depth: Option<usize> = None;
        let mut title_done = false;
        let mut title_buf = String::new();
        let mut scratch = String::new();

        for tok in tokenize_spans(html) {
            match tok {
                SpanToken::Open {
                    tag,
                    attrs,
                    self_closing,
                } => {
                    facts.dom_nodes += 1;
                    match tag.as_ref() {
                        "a" => {
                            if let Some(href) = attr(&attrs, "href") {
                                facts.n_links += 1;
                                Self::partition_link(&mut facts, href, own_registrable_domain);
                            }
                        }
                        "form" => facts.n_forms += 1,
                        "iframe" => facts.n_iframes += 1,
                        "input" => Self::inspect_input(&mut facts, &attrs, &mut scratch),
                        "meta" if !facts.has_noindex => {
                            let name_ok = attr(&attrs, "name")
                                .map(|n| {
                                    let n = lower_into(&mut scratch, n);
                                    n == "robots" || n == "googlebot"
                                })
                                .unwrap_or(false);
                            let content_noindex = name_ok
                                && attr(&attrs, "content")
                                    .map(|c| lower_into(&mut scratch, c).contains("noindex"))
                                    .unwrap_or(false);
                            facts.has_noindex = name_ok && content_noindex;
                        }
                        _ => {}
                    }
                    if !facts.banner_obfuscated
                        && attr(&attrs, "class")
                            .map(|c| c.contains("banner"))
                            .unwrap_or(false)
                        && attr(&attrs, "style").map(hidden_by_style).unwrap_or(false)
                    {
                        facts.banner_obfuscated = true;
                    }

                    let pushes = !self_closing && !VOID.contains(&tag.as_ref());
                    if tag.as_ref() == "title" && !title_done && title_depth.is_none() {
                        if pushes {
                            stack.push(tag);
                            title_depth = Some(stack.len());
                        } else {
                            // Self-closing <title/>: empty subtree.
                            title_done = true;
                        }
                    } else if pushes {
                        stack.push(tag);
                    }
                }
                SpanToken::Close { tag } => {
                    if let Some(pos) = stack.iter().rposition(|t| *t == tag) {
                        stack.truncate(pos);
                        if let Some(depth) = title_depth {
                            if stack.len() < depth {
                                // Left the title subtree: finalize.
                                title_depth = None;
                                title_done = true;
                            }
                        }
                    }
                }
                SpanToken::Text(t) => {
                    facts.dom_nodes += 1;
                    if let Some(depth) = title_depth {
                        // Script/style text inside the title subtree is not
                        // user-visible (mirrors Document::text_of).
                        let raw = stack[depth..].iter().any(|t| t == "script" || t == "style");
                        if !raw {
                            if !title_buf.is_empty() && !title_buf.ends_with(' ') {
                                title_buf.push(' ');
                            }
                            title_buf.push_str(t.trim());
                        }
                    }
                }
                SpanToken::Comment(_) => facts.dom_nodes += 1,
            }
        }

        let trimmed = title_buf.trim();
        if !trimmed.is_empty() {
            facts.title = Some(trimmed.to_string());
        }
        facts
    }

    /// Mirror of `Document::link_partition` + `Document::empty_links`,
    /// applied to one href.
    fn partition_link(facts: &mut PageFacts, href: &str, own: &str) {
        if href.is_empty()
            || href == "#"
            || href.starts_with("javascript:void")
            || href.starts_with("javascript:;")
        {
            facts.n_empty_links += 1;
        }
        if href.starts_with("http://") || href.starts_with("https://") {
            match freephish_urlparse_lite_host(href) {
                Some(h) if h == own || h.ends_with(&format!(".{own}")) => {
                    facts.n_internal_links += 1
                }
                _ => facts.n_external_links += 1,
            }
        } else if href.starts_with('#') || href.is_empty() || href == "javascript:void(0)" {
            // Fragment/empty links: neither internal nor external.
        } else {
            facts.n_internal_links += 1; // relative link
        }
    }

    /// Mirror of `Document::credential_inputs` (membership test) and
    /// `Document::has_login_form`, applied to one `<input>`.
    fn inspect_input(facts: &mut PageFacts, attrs: &[SpanAttr<'_>], scratch: &mut String) {
        let ty_raw = attr(attrs, "type");
        if ty_raw
            .map(|t| t.eq_ignore_ascii_case("password"))
            .unwrap_or(false)
        {
            facts.has_login_form = true;
        }
        let ty = lower_into(scratch, ty_raw.unwrap_or("text")).to_string();
        if matches!(ty.as_str(), "password" | "email" | "tel") {
            facts.n_credential_inputs += 1;
            return;
        }
        if ty != "text" && !ty.is_empty() {
            return;
        }
        // A sensitive word never contains a space, so checking each
        // attribute separately equals checking the space-joined haystack.
        let sensitive = ["name", "placeholder", "id"].iter().any(|a| {
            attr(attrs, a)
                .map(|v| {
                    let v = lower_into(scratch, v);
                    SENSITIVE_NAMES.iter().any(|s| v.contains(s))
                })
                .unwrap_or(false)
        });
        if sensitive {
            facts.n_credential_inputs += 1;
        }
    }

    /// The facts a [`crate::dom::Document`] yields through the query API —
    /// the multi-walk reference the single-pass extractor is tested
    /// against.
    pub fn from_document(doc: &crate::dom::Document, own_registrable_domain: &str) -> PageFacts {
        let (internal, external) = doc.link_partition(own_registrable_domain);
        PageFacts {
            n_links: doc.links().len(),
            n_internal_links: internal,
            n_external_links: external,
            n_empty_links: doc.empty_links(),
            has_login_form: doc.has_login_form(),
            n_credential_inputs: doc.credential_inputs().len(),
            dom_nodes: doc.len(),
            n_forms: doc.forms().len(),
            n_iframes: doc.iframes().len(),
            title: doc.title(),
            has_noindex: doc.has_noindex_meta(),
            banner_obfuscated: doc.elements().iter().any(|e| {
                e.attr("class")
                    .map(|c| c.contains("banner"))
                    .unwrap_or(false)
                    && e.is_hidden_by_style()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn check(html: &str, own: &str) {
        let fast = PageFacts::extract(html, own);
        let slow = PageFacts::from_document(&Document::parse(html), own);
        assert_eq!(fast, slow, "html={html:?}");
    }

    #[test]
    fn matches_dom_on_representative_page() {
        check(
            r##"<html><head><title> My Bank </title>
               <meta name="ROBOTS" content="NOINDEX, nofollow"></head>
               <body><a href="https://evil.weebly.com/next">n</a>
               <a href="/local">l</a>
               <a href="https://other.com/x">x</a>
               <a href="#">dead</a>
               <form><input type="text" name="user"><input TYPE="PASSWORD"></form>
               <div class="wsite-banner" style="visibility: Hidden">b</div>
               <iframe src="x"></iframe>
               <script>var hidden = 1;</script>
               </body></html>"##,
            "weebly.com",
        );
    }

    #[test]
    fn matches_dom_on_malformed_pages() {
        for html in [
            "",
            "plain text only",
            "<div><p>a</div>b",
            "</div><p>x</p>",
            "<title>a<title>b</title>c</title>d",
            "<title/><title>second</title>",
            "<title><script>skip</script>keep</title>",
            "<a href=>empty</a><a href=\"#frag\">f</a>",
            "<input><input type=text placeholder='Card number'>",
            "<script>never closed",
            "<p>  \n\t </p>",
            "<title>  </title>",
        ] {
            check(html, "weebly.com");
        }
    }

    #[test]
    fn title_mirrors_first_element_only() {
        let f = PageFacts::extract("<title>first</title><title>second</title>", "x.com");
        assert_eq!(f.title.as_deref(), Some("first"));
    }

    #[test]
    fn unclosed_title_autocloses_at_eof() {
        check("<title>never closed", "x.com");
        let f = PageFacts::extract("<title>never closed", "x.com");
        assert_eq!(f.title.as_deref(), Some("never closed"));
    }
}
