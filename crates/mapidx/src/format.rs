//! The on-disk layout of a baked verdict index, shared by the writer and
//! the mmap loader.
//!
//! One file, four sections, every integer little-endian:
//!
//! ```text
//! [header: 88 bytes]
//!   0  magic           u64   "FPMAPIDX"
//!   8  version         u32   = 1
//!  12  reserved        u32   = 0
//!  16  entry_count     u64
//!  24  bucket_count    u64   >= 1
//!  32  keyheap_len     u64
//!  40  bake_snapshot_seq u32  (u32::MAX = none)
//!  44  bake_segment    u32   (u32::MAX = none)
//!  48  bake_offset     u64   (u64::MAX = no cursor recorded)
//!  56  body_sum        u64   checksum over records ∥ keyheap ∥ buckets
//!  64  total_len       u64   whole-file length
//!  72  reserved2       u64   = 0
//!  80  header_crc      u32   CRC32 of bytes 0..80
//!  84  pad             u32   = 0
//! [records: entry_count × 24 bytes]   key_hash u64 | key_off u32 | key_len u32 | score-bits u64
//! [keyheap: keyheap_len bytes]        concatenated key bytes
//! [buckets: (bucket_count + 1) × u32] prefix offsets into records
//! ```
//!
//! Records are sorted ascending by `(key_hash, key bytes)`. The bucket of
//! a hash is the multiply-shift range reduction `(hash × bucket_count)
//! >> 64`, which is monotone in the hash — so sorted records fall into
//! nondecreasing buckets and the bucket table is a plain prefix-sum:
//! bucket `b` covers `records[buckets[b] .. buckets[b + 1]]`.
//!
//! Integrity is two-level. The header carries its own CRC32; the three
//! body sections are folded through [`BodySum`], a 4-lane multiply-mix
//! digest that runs at memory bandwidth so verifying a multi-hundred-MB
//! index stays inside the millisecond restart budget. Neither is
//! cryptographic — the threat model is torn writes and bit rot, the same
//! one the WAL's CRC32 answers.

use freephish_store::crc32;
use freephish_store::tail::TailCursor;

/// File magic, "FPMAPIDX" read as a little-endian u64.
pub const MAGIC: u64 = u64::from_le_bytes(*b"FPMAPIDX");
/// Current format version.
pub const VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 88;
/// Fixed record width in bytes.
pub const RECORD_LEN: usize = 24;
/// Width of one bucket-table offset.
pub const BUCKET_ENTRY_LEN: usize = 4;

/// Sentinel meaning "no value" in the header's u32 cursor fields.
pub const NONE_U32: u32 = u32::MAX;
/// Sentinel meaning "no cursor recorded" in `bake_offset`.
pub const NONE_U64: u64 = u64::MAX;

/// Why a file was refused by the loader. The loader never panics on
/// untrusted bytes: every defect maps to one of these.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying I/O failure (open, stat, mmap).
    Io(std::io::Error),
    /// File shorter than the fixed header.
    TooSmall { len: u64 },
    /// First eight bytes are not the index magic.
    BadMagic(u64),
    /// Magic matched but the version is unknown.
    BadVersion(u32),
    /// Header CRC32 mismatch: the header itself is damaged.
    HeaderCrc { expected: u32, found: u32 },
    /// Header-declared geometry does not add up to the file's length
    /// (truncated file, or a header lying about its sections).
    LengthMismatch { expected: u64, found: u64 },
    /// Body checksum mismatch: a record, key, or bucket byte flipped.
    BodyChecksum { expected: u64, found: u64 },
    /// A structural invariant the header cannot express failed.
    Malformed(&'static str),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index i/o error: {e}"),
            IndexError::TooSmall { len } => {
                write!(
                    f,
                    "index file too small: {len} bytes < {HEADER_LEN}-byte header"
                )
            }
            IndexError::BadMagic(m) => write!(f, "not a mapidx file (magic {m:#018x})"),
            IndexError::BadVersion(v) => write!(f, "unsupported mapidx version {v}"),
            IndexError::HeaderCrc { expected, found } => {
                write!(
                    f,
                    "header CRC mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            IndexError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "file length {found} does not match header geometry {expected}"
                )
            }
            IndexError::BodyChecksum { expected, found } => {
                write!(
                    f,
                    "body checksum mismatch: expected {expected:#018x}, found {found:#018x}"
                )
            }
            IndexError::Malformed(what) => write!(f, "malformed index: {what}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> IndexError {
        IndexError::Io(e)
    }
}

/// FNV-1a 64-bit: the stable key hash. `DefaultHasher` is explicitly not
/// guaranteed stable across releases, and a file format must be.
#[inline]
pub fn key_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Multiply-shift range reduction: maps a hash into `0..bucket_count`,
/// monotone in the hash (so hash-sorted records fill buckets in order).
#[inline]
pub fn bucket_of(hash: u64, bucket_count: u64) -> u64 {
    ((hash as u128 * bucket_count as u128) >> 64) as u64
}

const LANE_PRIME: u64 = 0x9e37_79b9_7f4a_7c15;

/// Streaming 4-lane multiply-mix digest over the body sections. Four
/// independent accumulators absorb 32 bytes per step so the multiply
/// latency chains overlap; the finalizer folds the lanes and the total
/// length. Detects any single bit flip and all truncations (length is
/// absorbed), at memory-bandwidth speed.
pub struct BodySum {
    lanes: [u64; 4],
    buf: [u8; 32],
    buffered: usize,
    len: u64,
}

impl Default for BodySum {
    fn default() -> BodySum {
        BodySum::new()
    }
}

impl BodySum {
    pub fn new() -> BodySum {
        BodySum {
            lanes: [
                0x6a09_e667_f3bc_c908,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
                0xa54f_f53a_5f1d_36f1,
            ],
            buf: [0u8; 32],
            buffered: 0,
            len: 0,
        }
    }

    #[inline]
    fn absorb_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 32);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(LANE_PRIME);
        }
    }

    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.buffered > 0 {
            let need = 32 - self.buffered;
            let take = need.min(bytes.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&bytes[..take]);
            self.buffered += take;
            bytes = &bytes[take..];
            if self.buffered < 32 {
                return; // input exhausted without completing the block
            }
            let block = self.buf;
            self.absorb_block(&block);
            self.buffered = 0;
        }
        let mut chunks = bytes.chunks_exact(32);
        for block in &mut chunks {
            self.absorb_block(block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    pub fn finish(mut self) -> u64 {
        if self.buffered > 0 {
            // Zero-pad the tail; the absorbed length disambiguates it.
            for b in self.buf[self.buffered..].iter_mut() {
                *b = 0;
            }
            let block = self.buf;
            self.absorb_block(&block);
        }
        let mut h = self.len;
        for lane in self.lanes {
            h = (h ^ lane).wrapping_mul(LANE_PRIME);
            h ^= h >> 32;
        }
        h
    }
}

/// The decoded fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub entry_count: u64,
    pub bucket_count: u64,
    pub keyheap_len: u64,
    pub cursor: Option<TailCursor>,
    pub body_sum: u64,
    pub total_len: u64,
}

impl Header {
    /// Total file length this geometry implies.
    pub fn expected_len(&self) -> u64 {
        HEADER_LEN as u64
            + self.entry_count * RECORD_LEN as u64
            + self.keyheap_len
            + (self.bucket_count + 1) * BUCKET_ENTRY_LEN as u64
    }

    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[16..24].copy_from_slice(&self.entry_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.bucket_count.to_le_bytes());
        out[32..40].copy_from_slice(&self.keyheap_len.to_le_bytes());
        let (snap, seg, off) = match &self.cursor {
            Some(c) => (
                c.snapshot_seq.unwrap_or(NONE_U32),
                c.segment.unwrap_or(NONE_U32),
                c.offset,
            ),
            None => (NONE_U32, NONE_U32, NONE_U64),
        };
        out[40..44].copy_from_slice(&snap.to_le_bytes());
        out[44..48].copy_from_slice(&seg.to_le_bytes());
        out[48..56].copy_from_slice(&off.to_le_bytes());
        out[56..64].copy_from_slice(&self.body_sum.to_le_bytes());
        out[64..72].copy_from_slice(&self.total_len.to_le_bytes());
        let crc = crc32(&out[..80]);
        out[80..84].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and validate the fixed header (magic, version, CRC). The
    /// caller still has to check the geometry against the file length.
    pub fn decode(bytes: &[u8]) -> Result<Header, IndexError> {
        if bytes.len() < HEADER_LEN {
            return Err(IndexError::TooSmall {
                len: bytes.len() as u64,
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let magic = u64_at(0);
        if magic != MAGIC {
            return Err(IndexError::BadMagic(magic));
        }
        let version = u32_at(8);
        if version != VERSION {
            return Err(IndexError::BadVersion(version));
        }
        let expected = crc32(&bytes[..80]);
        let found = u32_at(80);
        if expected != found {
            return Err(IndexError::HeaderCrc { expected, found });
        }
        // The pad word sits outside the CRC'd range; pinning it to zero
        // keeps "any flipped header bit is detected" airtight.
        if u32_at(84) != 0 {
            return Err(IndexError::Malformed("nonzero header padding"));
        }
        let offset = u64_at(48);
        let cursor = if offset == NONE_U64 {
            None
        } else {
            let opt32 = |v: u32| (v != NONE_U32).then_some(v);
            Some(TailCursor {
                snapshot_seq: opt32(u32_at(40)),
                segment: opt32(u32_at(44)),
                offset,
            })
        };
        let header = Header {
            entry_count: u64_at(16),
            bucket_count: u64_at(24),
            keyheap_len: u64_at(32),
            cursor,
            body_sum: u64_at(56),
            total_len: u64_at(64),
        };
        if header.bucket_count == 0 {
            return Err(IndexError::Malformed("bucket_count is zero"));
        }
        if header.entry_count >= u32::MAX as u64 {
            return Err(IndexError::Malformed("entry_count exceeds u32 offsets"));
        }
        if header.bucket_count > 1 << 32 {
            return Err(IndexError::Malformed("bucket_count exceeds u32 offsets"));
        }
        Ok(header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_with_and_without_cursor() {
        for cursor in [
            None,
            Some(TailCursor {
                snapshot_seq: Some(3),
                segment: Some(7),
                offset: 4096,
            }),
            Some(TailCursor {
                snapshot_seq: None,
                segment: None,
                offset: 16,
            }),
        ] {
            let h = Header {
                entry_count: 42,
                bucket_count: 64,
                keyheap_len: 1234,
                cursor,
                body_sum: 0xdead_beef_cafe_f00d,
                total_len: 99_999,
            };
            let bytes = h.encode();
            assert_eq!(Header::decode(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn header_crc_catches_any_flipped_bit() {
        let h = Header {
            entry_count: 10,
            bucket_count: 16,
            keyheap_len: 100,
            cursor: None,
            body_sum: 1,
            total_len: 500,
        };
        let good = h.encode();
        for bit in 0..(80 * 8) {
            let mut bad = good;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Header::decode(&bad).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn body_sum_is_chunking_invariant() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut whole = BodySum::new();
        whole.update(&data);
        for step in [1usize, 3, 7, 31, 32, 33, 100] {
            let mut pieced = BodySum::new();
            for chunk in data.chunks(step) {
                pieced.update(chunk);
            }
            let mut again = BodySum::new();
            again.update(&data);
            assert_eq!(pieced.finish(), again.finish(), "step {step}");
        }
    }

    #[test]
    fn body_sum_detects_flips_and_truncation() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let sum = |bytes: &[u8]| {
            let mut s = BodySum::new();
            s.update(bytes);
            s.finish()
        };
        let base = sum(&data);
        for pos in [0usize, 1, 31, 32, 1000, 4095] {
            let mut bad = data.clone();
            bad[pos] ^= 0x40;
            assert_ne!(sum(&bad), base, "flip at {pos} went undetected");
        }
        assert_ne!(sum(&data[..data.len() - 1]), base);
        let mut padded = data.clone();
        padded.push(0);
        assert_ne!(sum(&padded), base, "zero-extension must change the sum");
    }

    #[test]
    fn bucket_of_is_monotone_and_in_range() {
        let bc = 37u64;
        let mut last = 0;
        for h in (0..u64::MAX - 1000).step_by(usize::MAX / 513) {
            let b = bucket_of(h, bc);
            assert!(b < bc);
            assert!(b >= last, "bucket assignment must be monotone in hash");
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX, bc), bc - 1);
    }
}
