//! Arena-based DOM-lite tree built from the token stream.
//!
//! Nodes live in a flat `Vec` and reference each other by [`NodeId`]; this
//! keeps the tree cache-friendly and avoids `Rc`/`RefCell` noise. Void
//! elements (`br`, `img`, `input`, `meta`, `link`, ...) never take children;
//! unclosed elements are auto-closed at EOF; stray close tags that match an
//! open ancestor unwind to it, otherwise they are ignored.

use crate::token::{tokenize, Attr, Token};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A DOM node.
#[derive(Debug, Clone)]
pub enum Node {
    /// An element with a lower-cased tag name, attributes and children.
    Element {
        /// Tag name, lower-cased.
        tag: String,
        /// Attributes in source order (names lower-cased).
        attrs: Vec<Attr>,
        /// Child node ids in document order.
        children: Vec<NodeId>,
    },
    /// A text run.
    Text(String),
    /// A comment (kept: phishers hide banner markup inside comments).
    Comment(String),
}

/// Elements that never have children.
pub(crate) const VOID: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// A parsed HTML document: an arena of nodes plus the root list.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl Document {
    /// Parse a document from HTML source. Infallible.
    pub fn parse(html: &str) -> Document {
        Document::from_tokens(tokenize(html))
    }

    /// Build a document from an owned token stream (shared by the default
    /// parse path and the [`crate::legacy`] reference parser).
    pub(crate) fn from_tokens(tokens: Vec<Token>) -> Document {
        let mut nodes: Vec<Node> = Vec::new();
        let mut roots: Vec<NodeId> = Vec::new();
        // Stack of open element ids.
        let mut stack: Vec<NodeId> = Vec::new();

        let attach =
            |nodes: &mut Vec<Node>, roots: &mut Vec<NodeId>, stack: &[NodeId], id: NodeId| {
                match stack.last() {
                    Some(&parent) => {
                        if let Node::Element { children, .. } = &mut nodes[parent.0] {
                            children.push(id);
                        }
                    }
                    None => roots.push(id),
                }
            };

        for tok in tokens {
            match tok {
                Token::Open {
                    tag,
                    attrs,
                    self_closing,
                } => {
                    let id = NodeId(nodes.len());
                    nodes.push(Node::Element {
                        tag: tag.clone(),
                        attrs,
                        children: Vec::new(),
                    });
                    attach(&mut nodes, &mut roots, &stack, id);
                    if !self_closing && !VOID.contains(&tag.as_str()) {
                        stack.push(id);
                    }
                }
                Token::Close { tag } => {
                    // Unwind to the matching open element, if any.
                    if let Some(pos) = stack.iter().rposition(
                        |&id| matches!(&nodes[id.0], Node::Element { tag: t, .. } if *t == tag),
                    ) {
                        stack.truncate(pos);
                    }
                    // Otherwise: stray close tag, ignored.
                }
                Token::Text(t) => {
                    let id = NodeId(nodes.len());
                    nodes.push(Node::Text(t));
                    attach(&mut nodes, &mut roots, &stack, id);
                }
                Token::Comment(c) => {
                    let id = NodeId(nodes.len());
                    nodes.push(Node::Comment(c));
                    attach(&mut nodes, &mut roots, &stack, id);
                }
            }
        }
        Document { nodes, roots }
    }

    /// The root node ids (usually one `<html>`, but fragments are fine).
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate all node ids in document order.
    pub fn all_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Depth-first walk from the roots, calling `f` on every node id.
    pub fn walk(&self, mut f: impl FnMut(NodeId, &Node)) {
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id.0];
            f(id, node);
            if let Node::Element { children, .. } = node {
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let doc = Document::parse("<div><p>a</p><p>b</p></div>");
        assert_eq!(doc.roots().len(), 1);
        let root = doc.node(doc.roots()[0]);
        match root {
            Node::Element { tag, children, .. } => {
                assert_eq!(tag, "div");
                assert_eq!(children.len(), 2);
            }
            _ => panic!("expected element"),
        }
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = Document::parse("<p><br>text</p>");
        // "text" must be a child of <p>, not of <br>.
        let p = doc.roots()[0];
        match doc.node(p) {
            Node::Element { children, .. } => {
                assert_eq!(children.len(), 2);
                assert!(matches!(doc.node(children[0]), Node::Element { tag, .. } if tag == "br"));
                assert!(matches!(doc.node(children[1]), Node::Text(t) if t == "text"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unclosed_elements_autoclose() {
        let doc = Document::parse("<div><p>a");
        assert_eq!(doc.roots().len(), 1);
        let mut texts = 0;
        doc.walk(|_, n| {
            if matches!(n, Node::Text(_)) {
                texts += 1;
            }
        });
        assert_eq!(texts, 1);
    }

    #[test]
    fn stray_close_ignored() {
        let doc = Document::parse("</div><p>x</p>");
        assert_eq!(doc.roots().len(), 1);
    }

    #[test]
    fn misnested_unwinds() {
        // </div> closes both <p> and <div>; the following text is a root.
        let doc = Document::parse("<div><p>a</div>b");
        assert_eq!(doc.roots().len(), 2);
        assert!(matches!(doc.node(doc.roots()[1]), Node::Text(t) if t == "b"));
    }

    #[test]
    fn comments_preserved_in_tree() {
        let doc = Document::parse("<div><!-- hidden banner --></div>");
        let mut saw = false;
        doc.walk(|_, n| {
            if let Node::Comment(c) = n {
                saw = c.contains("hidden banner");
            }
        });
        assert!(saw);
    }

    #[test]
    fn walk_is_document_order() {
        let doc = Document::parse("<a>1</a><b>2</b>");
        let mut order = Vec::new();
        doc.walk(|_, n| {
            if let Node::Element { tag, .. } = n {
                order.push(tag.clone());
            }
        });
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn empty_document() {
        let doc = Document::parse("");
        assert!(doc.is_empty());
        assert!(doc.roots().is_empty());
    }
}
