//! Figure 7: cumulative distribution of anti-phishing engine detections
//! (the VirusTotal aggregate, GSB/PhishTank/OpenPhish excluded) one week
//! after first appearance, for FWB vs self-hosted URLs per platform.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::analysis::vt_week_cdf;
use freephish_fwbsim::history::Platform;

const KS: [usize; 9] = [1, 2, 3, 4, 6, 9, 12, 16, 24];

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e7);

    println!("\nFigure 7 — CDF of engine detections after one week\n");
    let mut headers = vec!["Population".to_string()];
    headers.extend(KS.iter().map(|k| format!("<={k}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new(&header_refs);
    let mut json_rows = Vec::new();
    for (label, fwb_pop, platform) in [
        ("FWB (Twitter)", true, Some(Platform::Twitter)),
        ("FWB (Facebook)", true, Some(Platform::Facebook)),
        ("self-hosted (Twitter)", false, Some(Platform::Twitter)),
        ("self-hosted (Facebook)", false, Some(Platform::Facebook)),
    ] {
        let cdf = vt_week_cdf(&m.observations, fwb_pop, platform, &KS);
        let mut row = vec![label.to_string()];
        row.extend(cdf.iter().map(|&(_, f)| format!("{:.0}%", f * 100.0)));
        t.row(row);
        json_rows.push(serde_json::json!({
            "population": label,
            "cdf": cdf.iter().map(|&(k, f)| serde_json::json!([k, f])).collect::<Vec<_>>(),
        }));
    }
    t.print();
    println!("\nPaper shape: the FWB median sits around 4 detections after a week");
    println!("vs ~9 for self-hosted; both platforms' FWB curves track each other.");

    write_json(
        "fig7",
        &serde_json::json!({ "experiment": "fig7", "scale": scale, "series": json_rows }),
    );
}
