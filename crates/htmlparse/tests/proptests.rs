//! Property tests: the HTML pipeline must be total (never panic) and
//! structurally sane on arbitrary input.

use freephish_htmlparse::{legacy, parse, tokenize, Node, PageFacts};
use proptest::prelude::*;

/// HTML-shaped soup: denser in tags, attributes, entities, comments and
/// raw-text elements than plain `\PC` strings, so equivalence tests hit the
/// interesting tokenizer paths, while still frequently malformed.
fn htmlish() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        "\\PC{0,12}",
        "<[a-zA-Z]{1,6}( [a-zA-Z-]{1,5}(=('[^']{0,6}'|\"[^\"]{0,6}\"|[a-z&;#]{0,6}))?){0,3}/?>?",
        "</[a-zA-Z]{1,6} ?>?",
        Just("<!-- c -->".to_string()),
        Just("<!--unterminated".to_string()),
        Just("<!DOCTYPE html>".to_string()),
        Just("<script>if (a<b) &amp; x</script>".to_string()),
        Just("<SCRIPT>y</SCRIPT>".to_string()),
        Just("<style>p{color:red}".to_string()),
        Just("&amp; &lt; &unknown; &#39;".to_string()),
        Just("<a href=\"#\">".to_string()),
        Just("<a href=https://x.weebly.com/p>".to_string()),
        Just("<input type=PASSWORD name=user_pin>".to_string()),
        Just("<title>T</title>".to_string()),
        Just("<meta name=robots content=\"noindex\">".to_string()),
        Just("<div class=banner style=\"display: none\">".to_string()),
    ];
    proptest::collection::vec(piece, 0..24).prop_map(|v| v.concat())
}

proptest! {
    /// The tokenizer accepts any string without panicking.
    #[test]
    fn tokenizer_is_total(s in "\\PC{0,500}") {
        let _ = tokenize(&s);
    }

    /// The DOM builder accepts any string without panicking, and every
    /// child id referenced by an element is a valid arena index.
    #[test]
    fn dom_builder_is_total_and_consistent(s in "\\PC{0,500}") {
        let doc = parse(&s);
        let n = doc.len();
        doc.walk(|id, node| {
            assert!(id.0 < n);
            if let Node::Element { children, .. } = node {
                for c in children {
                    assert!(c.0 < n);
                }
            }
        });
    }

    /// Queries are total on arbitrary input.
    #[test]
    fn queries_are_total(s in "\\PC{0,500}") {
        let doc = parse(&s);
        let _ = doc.title();
        let _ = doc.visible_text();
        let _ = doc.links();
        let _ = doc.credential_inputs();
        let _ = doc.has_noindex_meta();
        let _ = doc.tag_elements();
        let _ = doc.link_partition("weebly.com");
        let _ = doc.empty_links();
    }

    /// Well-formed generated documents: element count seen by walk equals
    /// the number of open tags we emitted.
    #[test]
    fn generated_doc_element_count(tags in proptest::collection::vec("[a-z]{1,6}", 0..20)) {
        let mut html = String::new();
        for t in &tags {
            html.push_str(&format!("<{t}>x</{t}>"));
        }
        let doc = parse(&html);
        let mut count = 0;
        doc.walk(|_, n| if matches!(n, Node::Element { .. }) { count += 1 });
        prop_assert_eq!(count, tags.len());
    }

    /// Text content round-trips through a simple wrapper element (edge
    /// whitespace is trimmed; interior whitespace is preserved).
    #[test]
    fn text_round_trip(text in "[a-zA-Z0-9 .,]{1,80}") {
        prop_assume!(!text.trim().is_empty());
        let doc = parse(&format!("<p>{text}</p>"));
        prop_assert_eq!(doc.visible_text(), text.trim());
    }

    /// The zero-copy span tokenizer (through the owned adapter) produces
    /// exactly the legacy token stream on arbitrary input.
    #[test]
    fn span_tokenizer_equals_legacy_on_soup(s in "\\PC{0,500}") {
        prop_assert_eq!(tokenize(&s), legacy::tokenize(&s));
    }

    /// Same equivalence on HTML-shaped (often malformed) input, which hits
    /// the raw-text, entity and attribute paths far more often than soup.
    #[test]
    fn span_tokenizer_equals_legacy_on_htmlish(s in htmlish()) {
        prop_assert_eq!(tokenize(&s), legacy::tokenize(&s));
    }

    /// The single-pass fact extractor matches the build-a-DOM-and-query
    /// reference bit for bit on arbitrary input.
    #[test]
    fn page_facts_equal_dom_queries_on_soup(s in "\\PC{0,500}") {
        let fast = PageFacts::extract(&s, "weebly.com");
        let slow = PageFacts::from_document(&parse(&s), "weebly.com");
        prop_assert_eq!(fast, slow);
    }

    /// Same fact equivalence on HTML-shaped input.
    #[test]
    fn page_facts_equal_dom_queries_on_htmlish(s in htmlish()) {
        let fast = PageFacts::extract(&s, "weebly.com");
        let slow = PageFacts::from_document(&parse(&s), "weebly.com");
        prop_assert_eq!(fast, slow);
    }
}
