//! The replication wire protocol: length-prefixed frames shipping WAL
//! segments from a primary store to follower replicas.
//!
//! ```text
//! frame    := magic(0xFC) opcode(u8) len(u32 LE) payload(len bytes)
//! HELLO    (0x01): version(u16) flags(u8) snapshot_seq(u32) segment(u32)
//!                  offset(u64) — the follower's resume cursor
//! SNAPSHOT (0x81): seq(u32) first_segment(u32) body — bootstrap image;
//!                  the follower discards local segments and installs it
//! RESET    (0x82): first_segment(u32) — bootstrap without a snapshot;
//!                  the follower discards local state and starts fresh
//! SEGMENT  (0x83): index(u32) — the records that follow belong to this
//!                  segment (sent before the first record of every
//!                  segment, including a resumed one)
//! RECORD   (0x84): segment(u32) end_offset(u64) frame — one raw WAL
//!                  frame (len, crc32, payload) ending at `end_offset`
//!                  within `segment`
//! TIP      (0x85): segment(u32) offset(u64) — the primary's current
//!                  append position, for lag accounting and liveness
//! ERROR    (0x86): UTF-8 message; the connection is finished
//! ```
//!
//! The magic byte differs from the verdict wire's `0xFB` so a frame
//! aimed at the wrong port is rejected on its first byte. Torn frames
//! wait for more bytes ([`decode_repl`] returns `Ok(None)` without
//! consuming); structurally impossible frames — oversized payloads,
//! unknown opcodes, cursors whose fields contradict each other — are
//! hard errors that close the connection, exactly like the verdict
//! wire. Record payload integrity is separate from framing:
//! [`verify_record_frame`] re-checks the WAL CRC32 so a follower never
//! writes a byte the primary's checksum does not vouch for.

use bytes::BytesMut;
use freephish_store::crc32;
use freephish_store::segment::{FRAME_OVERHEAD, MAX_RECORD_LEN, SEGMENT_HEADER_LEN};

/// First byte of every replication frame.
pub const REPL_MAGIC: u8 = 0xFC;
/// Protocol version carried in `HELLO`.
pub const REPL_VERSION: u16 = 1;
/// Bytes of frame header: magic + opcode + u32 length.
pub const REPL_FRAME_HEADER: usize = 6;
/// Hard cap on a frame's declared payload: the largest WAL record plus
/// the record frame's own overhead and this protocol's field prefixes.
pub const MAX_REPL_PAYLOAD: usize = MAX_RECORD_LEN as usize + FRAME_OVERHEAD as usize + 16;

const OP_HELLO: u8 = 0x01;
const OP_SNAPSHOT: u8 = 0x81;
const OP_RESET: u8 = 0x82;
const OP_SEGMENT: u8 = 0x83;
const OP_RECORD: u8 = 0x84;
const OP_TIP: u8 = 0x85;
const OP_ERROR: u8 = 0x86;

const FLAG_HAS_SNAPSHOT: u8 = 0b01;
const FLAG_HAS_SEGMENT: u8 = 0b10;

/// A follower's durable position in the primary's WAL: everything up to
/// (`segment`, `offset`) — and, when set, the snapshot `snapshot_seq` —
/// has been applied locally. A fresh follower sends the empty cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplCursor {
    /// Newest snapshot applied locally, if any.
    pub snapshot_seq: Option<u32>,
    /// Last segment with locally applied bytes, if any.
    pub segment: Option<u32>,
    /// Bytes of that segment applied (including its 8-byte header);
    /// must be 0 when `segment` is `None`.
    pub offset: u64,
}

impl ReplCursor {
    /// The cursor of a follower with no local state.
    pub fn empty() -> ReplCursor {
        ReplCursor {
            snapshot_seq: None,
            segment: None,
            offset: 0,
        }
    }

    /// Structural validity: a segment cursor must point at or past the
    /// segment header, and a segment-less cursor has no offset. Forged
    /// or corrupted cursors that violate this are protocol errors.
    pub fn is_consistent(&self) -> bool {
        match self.segment {
            Some(_) => self.offset >= SEGMENT_HEADER_LEN,
            None => self.offset == 0,
        }
    }
}

/// One replication frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplFrame {
    /// Follower → primary: version + resume cursor.
    Hello(ReplCursor),
    /// Bootstrap image: install `body` as snapshot `seq`; live segments
    /// start at `first_segment`.
    Snapshot {
        /// Snapshot sequence number (names the file).
        seq: u32,
        /// First live segment after the snapshot.
        first_segment: u32,
        /// Raw snapshot payload.
        body: Vec<u8>,
    },
    /// Bootstrap without a snapshot: discard local state; live segments
    /// start at `first_segment`.
    Reset {
        /// First live segment.
        first_segment: u32,
    },
    /// The records that follow belong to segment `index`.
    Segment {
        /// Segment index.
        index: u32,
    },
    /// One raw WAL frame of `segment`, ending at `end_offset`.
    Record {
        /// Segment the record belongs to.
        segment: u32,
        /// Byte offset just past this record's frame (a valid
        /// truncation point, and the follower's next cursor offset).
        end_offset: u64,
        /// The raw WAL frame: `len(u32 LE) crc32(u32 LE) payload`.
        frame: Vec<u8>,
    },
    /// The primary's current append position.
    Tip {
        /// Segment of the primary's tail.
        segment: u32,
        /// Its current length in bytes.
        offset: u64,
    },
    /// Protocol failure; the peer closes after sending this.
    Error(String),
}

fn put_frame(buf: &mut BytesMut, opcode: u8, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_REPL_PAYLOAD);
    let mut header = [0u8; REPL_FRAME_HEADER];
    header[0] = REPL_MAGIC;
    header[1] = opcode;
    header[2..6].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(payload);
}

/// Append the frame encoding of `frame` to `buf`. Inconsistent cursors
/// and oversized payloads are refused at encode time so a conforming
/// peer can never emit what decode would reject.
pub fn encode_repl(buf: &mut BytesMut, frame: &ReplFrame) -> Result<(), String> {
    match frame {
        ReplFrame::Hello(cursor) => {
            if !cursor.is_consistent() {
                return Err(format!("inconsistent cursor: {cursor:?}"));
            }
            let mut payload = [0u8; 19];
            payload[..2].copy_from_slice(&REPL_VERSION.to_le_bytes());
            let mut flags = 0u8;
            if cursor.snapshot_seq.is_some() {
                flags |= FLAG_HAS_SNAPSHOT;
            }
            if cursor.segment.is_some() {
                flags |= FLAG_HAS_SEGMENT;
            }
            payload[2] = flags;
            payload[3..7].copy_from_slice(&cursor.snapshot_seq.unwrap_or(0).to_le_bytes());
            payload[7..11].copy_from_slice(&cursor.segment.unwrap_or(0).to_le_bytes());
            payload[11..19].copy_from_slice(&cursor.offset.to_le_bytes());
            put_frame(buf, OP_HELLO, &payload);
        }
        ReplFrame::Snapshot {
            seq,
            first_segment,
            body,
        } => {
            if body.len() + 8 > MAX_REPL_PAYLOAD {
                return Err(format!("snapshot body of {} exceeds frame cap", body.len()));
            }
            let mut payload = Vec::with_capacity(8 + body.len());
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.extend_from_slice(&first_segment.to_le_bytes());
            payload.extend_from_slice(body);
            put_frame(buf, OP_SNAPSHOT, &payload);
        }
        ReplFrame::Reset { first_segment } => {
            put_frame(buf, OP_RESET, &first_segment.to_le_bytes());
        }
        ReplFrame::Segment { index } => {
            put_frame(buf, OP_SEGMENT, &index.to_le_bytes());
        }
        ReplFrame::Record {
            segment,
            end_offset,
            frame,
        } => {
            if frame.len() < FRAME_OVERHEAD as usize {
                return Err(format!("record frame of {} bytes is torn", frame.len()));
            }
            if frame.len() + 12 > MAX_REPL_PAYLOAD {
                return Err(format!("record frame of {} exceeds frame cap", frame.len()));
            }
            if *end_offset < SEGMENT_HEADER_LEN + frame.len() as u64 {
                return Err(format!(
                    "end offset {end_offset} precedes the record itself"
                ));
            }
            let mut payload = Vec::with_capacity(12 + frame.len());
            payload.extend_from_slice(&segment.to_le_bytes());
            payload.extend_from_slice(&end_offset.to_le_bytes());
            payload.extend_from_slice(frame);
            put_frame(buf, OP_RECORD, &payload);
        }
        ReplFrame::Tip { segment, offset } => {
            let mut payload = [0u8; 12];
            payload[..4].copy_from_slice(&segment.to_le_bytes());
            payload[4..].copy_from_slice(&offset.to_le_bytes());
            put_frame(buf, OP_TIP, &payload);
        }
        ReplFrame::Error(msg) => {
            let truncated = &msg.as_bytes()[..msg.len().min(1024)];
            put_frame(buf, OP_ERROR, truncated);
        }
    }
    Ok(())
}

fn take_u32(payload: &mut BytesMut) -> Result<u32, String> {
    if payload.len() < 4 {
        return Err("truncated field in replication frame".to_string());
    }
    let raw = payload.split_to(4);
    Ok(u32::from_le_bytes(raw[..4].try_into().unwrap()))
}

fn take_u64(payload: &mut BytesMut) -> Result<u64, String> {
    if payload.len() < 8 {
        return Err("truncated field in replication frame".to_string());
    }
    let raw = payload.split_to(8);
    Ok(u64::from_le_bytes(raw[..8].try_into().unwrap()))
}

/// Split one complete frame's opcode + payload off the front of `buf`.
/// `Ok(None)` without consuming means the frame is torn; wait for more
/// bytes. Errors are unrecoverable and close the connection.
fn split_frame(buf: &mut BytesMut) -> Result<Option<(u8, BytesMut)>, String> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != REPL_MAGIC {
        return Err(format!("bad replication frame magic 0x{:02x}", buf[0]));
    }
    if buf.len() < REPL_FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if len > MAX_REPL_PAYLOAD {
        return Err(format!("frame payload of {len} exceeds {MAX_REPL_PAYLOAD}"));
    }
    if buf.len() < REPL_FRAME_HEADER + len {
        return Ok(None);
    }
    let opcode = buf[1];
    let _ = buf.split_to(REPL_FRAME_HEADER);
    Ok(Some((opcode, buf.split_to(len))))
}

/// Decode one complete replication frame off the front of `buf`, if
/// present.
pub fn decode_repl(buf: &mut BytesMut) -> Result<Option<ReplFrame>, String> {
    let Some((opcode, mut payload)) = split_frame(buf)? else {
        return Ok(None);
    };
    let frame = match opcode {
        OP_HELLO => {
            if payload.len() != 19 {
                return Err(format!("HELLO payload of {} bytes", payload.len()));
            }
            let version = u16::from_le_bytes([payload[0], payload[1]]);
            if version != REPL_VERSION {
                return Err(format!("unsupported replication version {version}"));
            }
            let flags = payload[2];
            if flags & !(FLAG_HAS_SNAPSHOT | FLAG_HAS_SEGMENT) != 0 {
                return Err(format!("unknown HELLO flags 0x{flags:02x}"));
            }
            let snapshot_seq = u32::from_le_bytes(payload[3..7].try_into().unwrap());
            let segment = u32::from_le_bytes(payload[7..11].try_into().unwrap());
            let offset = u64::from_le_bytes(payload[11..19].try_into().unwrap());
            let cursor = ReplCursor {
                snapshot_seq: (flags & FLAG_HAS_SNAPSHOT != 0).then_some(snapshot_seq),
                segment: (flags & FLAG_HAS_SEGMENT != 0).then_some(segment),
                offset,
            };
            if !cursor.is_consistent() {
                return Err(format!("forged cursor: {cursor:?}"));
            }
            ReplFrame::Hello(cursor)
        }
        OP_SNAPSHOT => {
            let seq = take_u32(&mut payload)?;
            let first_segment = take_u32(&mut payload)?;
            ReplFrame::Snapshot {
                seq,
                first_segment,
                body: payload.to_vec(),
            }
        }
        OP_RESET => {
            let first_segment = take_u32(&mut payload)?;
            if !payload.is_empty() {
                return Err("trailing bytes in RESET frame".to_string());
            }
            ReplFrame::Reset { first_segment }
        }
        OP_SEGMENT => {
            let index = take_u32(&mut payload)?;
            if !payload.is_empty() {
                return Err("trailing bytes in SEGMENT frame".to_string());
            }
            ReplFrame::Segment { index }
        }
        OP_RECORD => {
            let segment = take_u32(&mut payload)?;
            let end_offset = take_u64(&mut payload)?;
            if payload.len() < FRAME_OVERHEAD as usize {
                return Err(format!("record frame of {} bytes is torn", payload.len()));
            }
            if end_offset < SEGMENT_HEADER_LEN + payload.len() as u64 {
                return Err(format!("forged record end offset {end_offset}"));
            }
            ReplFrame::Record {
                segment,
                end_offset,
                frame: payload.to_vec(),
            }
        }
        OP_TIP => {
            let segment = take_u32(&mut payload)?;
            let offset = take_u64(&mut payload)?;
            if !payload.is_empty() {
                return Err("trailing bytes in TIP frame".to_string());
            }
            ReplFrame::Tip { segment, offset }
        }
        OP_ERROR => ReplFrame::Error(String::from_utf8_lossy(&payload).into_owned()),
        other => return Err(format!("unknown replication opcode 0x{other:02x}")),
    };
    Ok(Some(frame))
}

/// Verify a shipped WAL record frame end to end: the declared length
/// must match the bytes on hand and the CRC32 must vouch for the
/// payload. Returns the payload slice on success. This is the check
/// that makes a follower's copy exactly as trustworthy as the
/// primary's own recovery scan.
pub fn verify_record_frame(frame: &[u8]) -> Result<&[u8], String> {
    if frame.len() < FRAME_OVERHEAD as usize {
        return Err(format!("record frame of {} bytes is torn", frame.len()));
    }
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Err(format!("record length {len} exceeds {MAX_RECORD_LEN}"));
    }
    let payload = &frame[FRAME_OVERHEAD as usize..];
    if payload.len() != len as usize {
        return Err(format!(
            "record declares {len} payload bytes, frame carries {}",
            payload.len()
        ));
    }
    let want = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let got = crc32(payload);
    if got != want {
        return Err(format!(
            "record checksum mismatch: stored 0x{want:08x}, computed 0x{got:08x}"
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_store::segment::encode_frame_into;

    fn roundtrip(frame: ReplFrame) -> ReplFrame {
        let mut buf = BytesMut::new();
        encode_repl(&mut buf, &frame).expect("encode");
        let got = decode_repl(&mut buf).expect("decode").expect("complete");
        assert!(buf.is_empty(), "decode consumed the whole frame");
        got
    }

    #[test]
    fn frames_round_trip() {
        let mut wal = Vec::new();
        encode_frame_into(&mut wal, b"payload");
        for frame in [
            ReplFrame::Hello(ReplCursor::empty()),
            ReplFrame::Hello(ReplCursor {
                snapshot_seq: Some(3),
                segment: Some(7),
                offset: 99,
            }),
            ReplFrame::Snapshot {
                seq: 2,
                first_segment: 5,
                body: vec![1, 2, 3],
            },
            ReplFrame::Reset { first_segment: 0 },
            ReplFrame::Segment { index: 4 },
            ReplFrame::Record {
                segment: 4,
                end_offset: 8 + wal.len() as u64,
                frame: wal.clone(),
            },
            ReplFrame::Tip {
                segment: 9,
                offset: 4096,
            },
            ReplFrame::Error("boom".to_string()),
        ] {
            assert_eq!(roundtrip(frame.clone()), frame);
        }
    }

    #[test]
    fn torn_frames_wait_without_consuming() {
        let mut buf = BytesMut::new();
        encode_repl(&mut buf, &ReplFrame::Segment { index: 1 }).unwrap();
        let full = buf.clone();
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            let before = partial.len();
            assert_eq!(
                decode_repl(&mut partial).expect("torn is not an error"),
                None
            );
            assert_eq!(partial.len(), before, "torn decode must not consume");
        }
    }

    #[test]
    fn inconsistent_cursors_are_refused_both_ways() {
        let forged = ReplCursor {
            snapshot_seq: None,
            segment: Some(1),
            offset: 3, // inside the segment header: impossible
        };
        let mut buf = BytesMut::new();
        assert!(encode_repl(&mut buf, &ReplFrame::Hello(forged)).is_err());
        // Hand-build the same forged HELLO and check decode rejects it.
        let mut payload = [0u8; 19];
        payload[..2].copy_from_slice(&REPL_VERSION.to_le_bytes());
        payload[2] = FLAG_HAS_SEGMENT;
        payload[7..11].copy_from_slice(&1u32.to_le_bytes());
        payload[11..19].copy_from_slice(&3u64.to_le_bytes());
        let mut raw = BytesMut::new();
        put_frame(&mut raw, OP_HELLO, &payload);
        assert!(decode_repl(&mut raw).is_err());
    }

    #[test]
    fn record_checksums_are_verified() {
        let mut wal = Vec::new();
        encode_frame_into(&mut wal, b"checked payload");
        assert_eq!(verify_record_frame(&wal).unwrap(), b"checked payload");
        let mut flipped = wal.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(verify_record_frame(&flipped).is_err());
        let mut short = wal.clone();
        short.truncate(wal.len() - 1);
        assert!(verify_record_frame(&short).is_err());
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let mut buf = BytesMut::from(&[0xFB, 0x01, 0, 0, 0, 0][..]);
        assert!(decode_repl(&mut buf).is_err());
    }
}
