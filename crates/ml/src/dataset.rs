//! Feature matrices, labelled datasets, splits and K-fold indices.

use freephish_simclock::Rng64;

/// A labelled binary-classification dataset: row-major feature matrix plus
/// 0/1 labels and feature names.
#[derive(Debug, Clone)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Append one example. Panics if the row width disagrees with the
    /// feature names — a mismatch is a programming error upstream.
    pub fn push(&mut self, features: Vec<f64>, label: u8) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "row width {} != feature count {}",
            features.len(),
            self.feature_names.len()
        );
        assert!(label <= 1, "binary labels only");
        self.rows.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per example.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Borrow a row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Fraction of positive labels; 0 for an empty dataset.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&l| l as usize).sum::<usize>() as f64 / self.labels.len() as f64
    }

    /// Build a new dataset from a subset of row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Append extra feature columns (e.g. stacked base-model predictions).
    /// `extra[i]` holds the new values for row `i`.
    pub fn with_extra_features(&self, names: &[&str], extra: &[Vec<f64>]) -> Dataset {
        assert_eq!(extra.len(), self.rows.len());
        let mut feature_names = self.feature_names.clone();
        feature_names.extend(names.iter().map(|s| s.to_string()));
        let rows = self
            .rows
            .iter()
            .zip(extra)
            .map(|(r, e)| {
                assert_eq!(e.len(), names.len());
                let mut row = r.clone();
                row.extend_from_slice(e);
                row
            })
            .collect();
        Dataset {
            feature_names,
            rows,
            labels: self.labels.clone(),
        }
    }

    /// Shuffled train/test split: `train_frac` of rows go to the first
    /// returned dataset.
    pub fn split(&self, train_frac: f64, rng: &mut Rng64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let n_train = (self.len() as f64 * train_frac).round() as usize;
        let (train_idx, test_idx) = idx.split_at(n_train.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// K-fold partition: returns `k` disjoint index sets covering all rows,
    /// shuffled. Fold sizes differ by at most one.
    pub fn kfold_indices(&self, k: usize, rng: &mut Rng64) -> Vec<Vec<usize>> {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, row) in idx.into_iter().enumerate() {
            folds[i % k].push(row);
        }
        folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n {
            d.push(vec![i as f64, (i * 2) as f64], (i % 2) as u8);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[2.0, 4.0]);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut d = toy(1);
        d.push(vec![1.0], 0);
    }

    #[test]
    fn subset_preserves_alignment() {
        let d = toy(10);
        let s = d.subset(&[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), d.row(1));
        assert_eq!(s.label(2), d.label(5));
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(100);
        let mut rng = Rng64::new(1);
        let (tr, te) = d.split(0.7, &mut rng);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
    }

    #[test]
    fn kfold_covers_everything_disjointly() {
        let d = toy(23);
        let mut rng = Rng64::new(2);
        let folds = d.kfold_indices(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Balanced within one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn extra_features_appended() {
        let d = toy(3);
        let e = vec![vec![9.0], vec![8.0], vec![7.0]];
        let d2 = d.with_extra_features(&["pred"], &e);
        assert_eq!(d2.n_features(), 3);
        assert_eq!(d2.row(1), &[1.0, 2.0, 8.0]);
        assert_eq!(d2.feature_names().last().unwrap(), "pred");
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec!["x".into()]);
        assert!(d.is_empty());
        assert_eq!(d.positive_rate(), 0.0);
    }
}
