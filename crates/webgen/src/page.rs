//! Page specifications and generators: benign sites, credential-phishing
//! sites, and the three evasive variants of Section 5.5.

use crate::brands::{Brand, Sector, BRANDS};
use crate::fwb::FwbKind;
use crate::template::{self, rand_token, RenderOptions};
use freephish_simclock::Rng64;

/// What kind of page to generate.
#[derive(Debug, Clone, PartialEq)]
pub enum PageKind {
    /// A legitimate site over a mundane topic (index into
    /// [`BENIGN_TOPICS`]).
    Benign {
        /// Topic index.
        topic: usize,
    },
    /// A legitimate brand-adjacent site: fan page, review blog, "how to set
    /// up X" tutorial. Mentions the brand prominently (title, logo) but
    /// collects nothing — the benign class human coders argued over.
    BenignFan {
        /// Index into [`BRANDS`].
        brand: usize,
    },
    /// Classic credential phishing: spoofed brand with a login form.
    CredentialPhish {
        /// Index into [`BRANDS`].
        brand: usize,
    },
    /// Two-step attack: a landing page with only a button that links to an
    /// attacker page elsewhere — no credential fields on the FWB page.
    TwoStep {
        /// Index into [`BRANDS`].
        brand: usize,
        /// Where the button leads.
        target_url: String,
    },
    /// A concealed iframe loads the real attack from another domain.
    IframeEmbed {
        /// Index into [`BRANDS`].
        brand: usize,
        /// The iframe's src.
        iframe_url: String,
    },
    /// Drive-by download: the page pushes a malicious file hosted on a
    /// third-party site.
    DriveBy {
        /// Index into [`BRANDS`].
        brand: usize,
        /// URL of the payload file.
        payload_url: String,
    },
}

impl PageKind {
    /// True for every non-benign variant.
    pub fn is_malicious(&self) -> bool {
        !matches!(self, PageKind::Benign { .. } | PageKind::BenignFan { .. })
    }

    /// True for the Section 5.5 evasive variants (no credential fields on
    /// the FWB-hosted page itself).
    pub fn is_evasive(&self) -> bool {
        matches!(
            self,
            PageKind::TwoStep { .. } | PageKind::IframeEmbed { .. } | PageKind::DriveBy { .. }
        )
    }

    /// The spoofed brand, if any.
    pub fn brand(&self) -> Option<&'static Brand> {
        match self {
            PageKind::Benign { .. } => None,
            PageKind::BenignFan { brand } => BRANDS.get(*brand),
            PageKind::CredentialPhish { brand }
            | PageKind::TwoStep { brand, .. }
            | PageKind::IframeEmbed { brand, .. }
            | PageKind::DriveBy { brand, .. } => BRANDS.get(*brand),
        }
    }
}

/// Topics for benign sites. The last three are *member-portal* topics:
/// legitimate community sites with a real login form — the benign
/// population that makes FWB phishing genuinely hard to separate (a yoga
/// studio's member sign-in is structurally a login page).
pub const BENIGN_TOPICS: &[(&str, &str)] = &[
    ("garden", "Seasonal planting guides and greenhouse tips"),
    ("bakery", "Sourdough, pastries and weekend baking classes"),
    (
        "photography",
        "Portrait and landscape photography portfolio",
    ),
    ("yoga", "Community yoga schedules and breathing exercises"),
    ("bookclub", "Monthly reading list and discussion notes"),
    ("cycling", "Local cycling routes and maintenance guides"),
    ("pottery", "Hand-thrown ceramics and studio opening hours"),
    (
        "wedding",
        "Our wedding weekend: schedule, venue and registry",
    ),
    ("band", "Tour dates, demos and rehearsal diaries"),
    ("charity", "Neighbourhood food-drive volunteering hub"),
    ("recipes", "Family recipes measured in grandmother units"),
    (
        "astronomy",
        "Backyard telescope logs and star party calendar",
    ),
    ("members", "Member portal for our community studio"),
    ("alumni", "Alumni network: directory and mentoring sign-in"),
    ("league", "Rec league standings and player accounts"),
];

/// Index of the first member-portal topic (see [`BENIGN_TOPICS`]).
pub const FIRST_PORTAL_TOPIC: usize = 12;

/// Is this benign topic a member portal (login-bearing)?
pub fn is_portal_topic(topic: usize) -> bool {
    topic % BENIGN_TOPICS.len() >= FIRST_PORTAL_TOPIC
}

/// Full specification of one generated site. Generation is a pure function
/// of this value.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSpec {
    /// Hosting service.
    pub fwb: FwbKind,
    /// Page variant.
    pub kind: PageKind,
    /// Site name (the subdomain or path token).
    pub site_name: String,
    /// Ask search engines not to index (Section 3: 44.7% of FWB phishing).
    pub noindex: bool,
    /// Hide the FWB banner with an inline style.
    pub obfuscate_banner: bool,
    /// Seed for all randomised content.
    pub seed: u64,
}

/// A generated site: the spec, its URL on the service, and the HTML.
#[derive(Debug, Clone)]
pub struct GeneratedSite {
    /// The input specification.
    pub spec: PageSpec,
    /// Site URL (e.g. `https://x.weebly.com/`).
    pub url: String,
    /// Full page HTML.
    pub html: String,
}

/// A plausible attacker-chosen site name for a brand spoof.
///
/// The distribution mirrors what the paper observed: most FWB phishing
/// URLs are *opaque* (Figure 3's `oofifhdfhehdy`) or generically urgent —
/// brand-laden names would trip lexical URL detectors, and FWB attackers
/// know it. Only a minority still embed the brand token.
pub fn phishy_site_name(brand: &Brand, rng: &mut Rng64) -> String {
    let roll = rng.f64();
    if roll < 0.70 {
        // Opaque gibberish.
        let len = 8 + rng.index(7);
        rand_token(rng, len)
    } else if roll < 0.80 {
        // Generic-urgent, brandless (kept rare: it lights up lexical detectors).
        let word = *rng.choose(&[
            "account-update-center",
            "secure-portal",
            "verification-required",
            "billing-desk",
            "service-notice",
            "docreview",
        ]);
        format!("{word}-{}", rand_token(rng, 4))
    } else {
        // Brand-laden (the classic shapes).
        let patterns: &[fn(&Brand, &mut Rng64) -> String] = &[
            |b, r| format!("{}-login-{}", b.token, rand_token(r, 4)),
            |b, _| format!("secure-{}-verify", b.token),
            |b, r| format!("{}{}", b.token, r.range_u64(100, 9999)),
            |b, _| format!("{}-support-billing", b.token),
        ];
        patterns[rng.index(patterns.len())](brand, rng)
    }
}

/// A plausible benign site name for a topic. A quarter of legitimate free
/// sites also use opaque auto-generated names, overlapping the attacker
/// distribution.
pub fn benign_site_name(topic: usize, rng: &mut Rng64) -> String {
    if rng.chance(0.40) {
        let len = 7 + rng.index(7);
        return rand_token(rng, len);
    }
    // Member portals name themselves the way portals do — with the same
    // "sensitive" vocabulary lexical detectors key on.
    if is_portal_topic(topic) && rng.chance(0.5) {
        let (word, _) = BENIGN_TOPICS[topic % BENIGN_TOPICS.len()];
        let suffix = *rng.choose(&["login", "portal", "account", "members"]);
        return format!("{word}-{suffix}");
    }
    let (word, _) = BENIGN_TOPICS[topic % BENIGN_TOPICS.len()];
    let styles: &[fn(&str, &mut Rng64) -> String] = &[
        |w, r| format!("{w}-{}", rand_token(r, 4)),
        |w, r| format!("{}s-{w}", rand_token(r, 5)),
        |w, _| format!("the-{w}-corner"),
        |w, r| format!("{w}{}", r.range_u64(1, 99)),
        |w, _| format!("my-{w}-journal"),
    ];
    styles[rng.index(styles.len())](word, rng)
}

fn lorem_sentences(rng: &mut Rng64, n: usize) -> String {
    const PHRASES: &[&str] = &[
        "We update this page every week with new material.",
        "Thanks for stopping by and supporting a small project.",
        "Everything here is shared freely with the community.",
        "Send questions through the contact page and we will reply soon.",
        "The calendar below lists everything happening this month.",
        "Scroll down for photographs from our latest meetup.",
        "This started as a weekend hobby and simply kept growing.",
        "All levels of experience are welcome to join us.",
    ];
    (0..n)
        .map(|_| *rng.choose(PHRASES))
        .collect::<Vec<_>>()
        .join(" ")
}

fn benign_body(topic: usize, fwb: FwbKind, rng: &mut Rng64) -> (String, Vec<String>) {
    let (word, tagline) = BENIGN_TOPICS[topic % BENIGN_TOPICS.len()];
    let d = fwb.descriptor();
    let p = d.class_prefix;
    let title = format!("{} — {}", capitalize(word), tagline);
    let mut body = vec![
        format!("<h1 class=\"{p}-title\">{}</h1>", capitalize(word)),
        format!("<p class=\"{p}-section\">{tagline}</p>"),
    ];
    // Page size varies wildly across real small sites.
    for _ in 0..1 + rng.index(3) {
        let n = 1 + rng.index(3);
        body.push(format!(
            "<section class=\"{p}-section\"><p>{}</p></section>",
            lorem_sentences(rng, n)
        ));
    }
    if rng.chance(0.7) {
        body.push(format!(
            "<section class=\"{p}-section\"><h2>About</h2><p>{}</p></section>",
            lorem_sentences(rng, 2)
        ));
    }
    let mut nav_items = String::new();
    if rng.chance(0.7) {
        nav_items.push_str("<li><a href=\"/gallery\">Gallery</a></li>");
    }
    if rng.chance(0.7) {
        nav_items.push_str("<li><a href=\"/about\">About us</a></li>");
    }
    if rng.chance(0.5) {
        nav_items.push_str(&format!(
            "<li><a href=\"https://en.wikipedia.org/wiki/{word}\">Learn more</a></li>"
        ));
    }
    if !nav_items.is_empty() {
        body.push(format!("<ul class=\"{p}-list\">{nav_items}</ul>"));
    }
    // Photo blocks: small sites are image-heavy.
    if rng.chance(0.6) {
        for i in 0..1 + rng.index(3) {
            body.push(format!(
                "<div class=\"{p}-image-block\"><img class=\"{p}-image\" src=\"/assets/photo-{i}.jpg\" alt=\"{word} photo\"></div>"
            ));
        }
    }
    // Embedded media: maps and videos use iframes on benign sites too.
    if rng.chance(0.25) {
        body.push(format!(
            "<iframe class=\"{p}-embed\" src=\"https://www.youtube.com/embed/{}\" width=\"560\" height=\"315\"></iframe>",
            rand_token(rng, 8)
        ));
    }
    // Downloadable schedules/flyers (own-domain, unlike drive-by payloads).
    if rng.chance(0.15) {
        body.push(format!(
            "<a class=\"{p}-button\" href=\"/files/{word}-schedule.pdf\" download>Download our schedule</a>"
        ));
    }
    // Template builders leave placeholder navigation behind ("#" hrefs are
    // everywhere on small free sites).
    for _ in 0..rng.index(4) {
        body.push(format!(
            "<a class=\"{p}-placeholder\" href=\"#\">Coming soon</a>"
        ));
    }
    // Many legitimate sites mention big brands innocently: social links,
    // payment badges.
    if rng.chance(0.4) {
        body.push(format!(
            "<div class=\"{p}-social\">Follow us on \
             <a href=\"https://facebook.com/ourpage\">Facebook</a> and \
             <a href=\"https://instagram.com/ourpage\">Instagram</a>. \
             We accept PayPal for class bookings.</div>"
        ));
    }
    // Member-portal topics carry a *legitimate* login form — structurally
    // identical to a credential-phishing form, which is exactly why
    // HTML-feature and visual detectors struggle on FWB populations.
    if is_portal_topic(topic) {
        body.push(format!(
            "<form class=\"{p}-form\" action=\"/members/login\" method=\"post\">\
             <h2>Member sign in</h2>\
             <input class=\"{p}-input\" type=\"email\" name=\"email\" placeholder=\"Email\">\
             <input class=\"{p}-input\" type=\"password\" name=\"password\" placeholder=\"Password\">\
             <button class=\"{p}-button\" type=\"submit\">Sign in</button></form>"
        ));
    } else if rng.chance(0.3) {
        // Some benign sites have a harmless newsletter form (email only, no
        // password) — keeps the classifier honest about "has a form" alone.
        body.push(format!(
            "<form class=\"{p}-form\" action=\"/subscribe\" method=\"post\">\
             <input class=\"{p}-input\" type=\"email\" name=\"newsletter_email\" placeholder=\"Email for updates\">\
             <button class=\"{p}-button\" type=\"submit\">Subscribe</button></form>"
        ));
    }
    (title, body)
}

/// A brand-adjacent benign page: fan blog / setup tutorial. Prominent
/// brand presence, zero data collection.
fn fan_body(brand: &Brand, fwb: FwbKind, rng: &mut Rng64) -> (String, Vec<String>) {
    let p = fwb.descriptor().class_prefix;
    let angle = *rng.choose(&[
        "fan blog",
        "setup guide",
        "review corner",
        "tips and tricks",
        "unofficial news",
    ]);
    let title = format!("{} {angle}", brand.name);
    let mut body = vec![
        format!(
            "<div class=\"{p}-image-block\"><img class=\"{p}-image\" src=\"/assets/{}-logo.png\" alt=\"{} logo\"></div>",
            brand.token, brand.name
        ),
        format!("<h1 class=\"{p}-title\">{} {angle}</h1>", brand.name),
        format!(
            "<section class=\"{p}-section\"><p>Everything we publish about {} is unofficial. {}</p></section>",
            brand.name,
            lorem_sentences(rng, 2)
        ),
        format!(
            "<section class=\"{p}-section\"><h2>Getting started with {}</h2><p>{}</p></section>",
            brand.name,
            lorem_sentences(rng, 3)
        ),
        format!(
            "<ul class=\"{p}-list\"><li><a href=\"https://{}\">Official site</a></li>{}</ul>",
            brand.domain,
            if rng.chance(0.6) {
                "<li><a href=\"/archive\">Archive</a></li>"
            } else {
                ""
            }
        ),
    ];
    // Fan pages embed videos about the brand and link out to communities —
    // the same structural shapes the evasive attacks use.
    if rng.chance(0.4) {
        body.push(format!(
            "<iframe class=\"{p}-embed\" src=\"https://www.youtube.com/embed/{}\" width=\"560\" height=\"315\"></iframe>",
            rand_token(rng, 8)
        ));
    }
    if rng.chance(0.4) {
        body.push(format!(
            "<div class=\"{p}-section\"><a class=\"{p}-button\" href=\"https://community-{}.example.org/\">Join the {} community</a></div>",
            brand.token, brand.name
        ));
    }
    // Some fan pages are a single teaser block.
    if rng.chance(0.35) {
        body.truncate(2 + rng.index(2));
    }
    (title, body)
}

fn sector_extra_fields(sector: Sector, p: &str) -> String {
    match sector {
        Sector::Finance => format!(
            "<input class=\"{p}-input\" type=\"text\" name=\"card_number\" placeholder=\"Card number\">\
             <input class=\"{p}-input\" type=\"text\" name=\"ssn\" placeholder=\"Social Security Number\">"
        ),
        Sector::Telecom => format!(
            "<input class=\"{p}-input\" type=\"tel\" name=\"phone\" placeholder=\"Phone number\">\
             <input class=\"{p}-input\" type=\"text\" name=\"account_pin\" placeholder=\"Account PIN\">"
        ),
        Sector::Crypto => format!(
            "<input class=\"{p}-input\" type=\"text\" name=\"wallet_seed\" placeholder=\"12-word recovery phrase\">"
        ),
        _ => String::new(),
    }
}

fn credential_body(brand: &Brand, fwb: FwbKind, rng: &mut Rng64) -> (String, Vec<String>) {
    let d = fwb.descriptor();
    let p = d.class_prefix;
    // A third of attackers keep the page title generic — another lexical
    // detector dodge; the logo still carries the spoof.
    let title = if rng.chance(0.35) {
        (*rng.choose(&[
            "Sign In to continue",
            "Account Verification",
            "Security Check",
            "Login required",
        ]))
        .to_string()
    } else {
        format!("{} — Sign In", brand.name)
    };
    let urgency = *rng.choose(&[
        "Unusual sign-in activity detected. Verify your account to avoid suspension.",
        "Your account has been limited. Confirm your details within 24 hours.",
        "Security update required: please re-enter your credentials.",
        "We noticed a new login from an unrecognised device.",
    ]);
    let mut body = vec![
        format!(
            "<div class=\"{p}-image-block\"><img src=\"/assets/{}-logo.png\" alt=\"{} logo\" class=\"{p}-image\"></div>",
            brand.token, brand.name
        ),
        format!("<h1 class=\"{p}-title\">Sign in to {}</h1>", brand.name),
        format!("<p class=\"{p}-section\">{}</p>",
            if rng.chance(0.8) { urgency } else { "Welcome back. Please enter your details." }),
        format!(
            "<form class=\"{p}-form\" action=\"/collect/{}\" method=\"post\">\
             <input class=\"{p}-input\" type=\"email\" name=\"email\" placeholder=\"Email or username\" required>\
             <input class=\"{p}-input\" type=\"password\" name=\"password\" placeholder=\"Password\" required>\
             {}\
             <button class=\"{p}-button\" type=\"submit\">Sign In</button></form>",
            rand_token(rng, 8),
            sector_extra_fields(brand.sector, p)
        ),
        {
            // Aux navigation varies per kit; half borrow legitimacy with
            // real links to the genuine brand's policy pages, some add
            // internal help pages like any site.
            let mut items = String::new();
            if rng.chance(0.8) {
                items.push_str("<li><a href=\"#\">Forgot password?</a></li>");
            }
            if rng.chance(0.6) {
                items.push_str("<li><a href=\"#\">Create account</a></li>");
            }
            if rng.chance(0.5) {
                items.push_str("<li><a href=\"javascript:void(0)\">Help</a></li>");
            }
            for page in ["/support", "/contact", "/faq"] {
                if rng.chance(0.4) {
                    items.push_str(&format!("<li><a href=\"{page}\">Info</a></li>"));
                }
            }
            if rng.chance(0.5) {
                items.push_str(&format!(
                    "<li><a href=\"https://{}/privacy\">Privacy</a></li>\
                     <li><a href=\"https://{}/terms\">Terms</a></li>",
                    brand.domain, brand.domain
                ));
            }
            format!("<ul class=\"{p}-list\">{items}</ul>")
        },
        format!(
            "<p class=\"{p}-section\">© {} {}. All rights reserved.</p>",
            2022 + rng.range_u64(0, 1),
            brand.name
        ),
    ];
    // Kits pad with helper prose, too.
    for _ in 0..rng.index(3) {
        let n = 1 + rng.index(2);
        body.push(format!(
            "<section class=\"{p}-section\"><p>{}</p></section>",
            lorem_sentences(rng, n)
        ));
    }
    (title, body)
}

fn twostep_body(
    brand: &Brand,
    target_url: &str,
    fwb: FwbKind,
    rng: &mut Rng64,
) -> (String, Vec<String>) {
    let p = fwb.descriptor().class_prefix;
    // Not every lure page even names the brand in the title.
    let title = if rng.chance(0.7) {
        format!("{} — Account Notice", brand.name)
    } else {
        "Important account notice".to_string()
    };
    let pitch = *rng.choose(&[
        "Your mailbox storage is almost full.",
        "A document has been shared with you.",
        "Your package could not be delivered.",
        "Your subscription payment failed.",
    ]);
    let mut body = vec![
        format!("<h1 class=\"{p}-title\">{}</h1>", brand.name),
        format!("<p class=\"{p}-section\">{pitch}</p>"),
        // The single button that carries the whole attack.
        format!(
            "<div class=\"{p}-section\"><a class=\"{p}-button\" href=\"{target_url}\">Continue to {}</a></div>",
            brand.name
        ),
        format!("<p class=\"{p}-section\">This link expires in 24 hours.</p>"),
    ];
    for _ in 0..rng.index(3) {
        let n = 1 + rng.index(2);
        body.push(format!(
            "<section class=\"{p}-section\"><p>{}</p></section>",
            lorem_sentences(rng, n)
        ));
    }
    if rng.chance(0.4) {
        body.push(format!(
            "<a class=\"{p}-placeholder\" href=\"/faq\">Questions?</a>"
        ));
    }
    (title, body)
}

fn iframe_body(
    brand: &Brand,
    iframe_url: &str,
    fwb: FwbKind,
    rng: &mut Rng64,
) -> (String, Vec<String>) {
    let p = fwb.descriptor().class_prefix;
    let title = format!("{} Portal", brand.name);
    let mut body = vec![
        format!("<h1 class=\"{p}-title\">{} Portal</h1>", brand.name),
        format!("<p>{}</p>", lorem_sentences(rng, 1)),
        // The embedded attack, styled to fill the viewport.
        format!(
            "<iframe class=\"{p}-embed\" src=\"{iframe_url}\" width=\"100%\" height=\"900\" frameborder=\"0\"></iframe>"
        ),
    ];
    for _ in 0..rng.index(3) {
        let n = 1 + rng.index(2);
        body.push(format!(
            "<section class=\"{p}-section\"><p>{}</p></section>",
            lorem_sentences(rng, n)
        ));
    }
    if rng.chance(0.5) {
        body.push(format!(
            "<ul class=\"{p}-list\"><li><a href=\"/about\">About</a></li></ul>"
        ));
    }
    (title, body)
}

fn driveby_body(
    brand: &Brand,
    payload_url: &str,
    fwb: FwbKind,
    rng: &mut Rng64,
) -> (String, Vec<String>) {
    let p = fwb.descriptor().class_prefix;
    let doc_name = *rng.choose(&[
        "Invoice_Q4_final.xlsm",
        "Payment_Advice.doc",
        "Scanned_Contract.pdf.exe",
        "Shared_Document.iso",
        "Remittance_Details.zip",
    ]);
    let title = format!("{} — Shared document", brand.name);
    let mut body = vec![
        format!(
            "<div class=\"{p}-image-block\"><img class=\"{p}-image\" src=\"/assets/{}-doc.png\" alt=\"{} document\"></div>",
            brand.token, brand.name
        ),
        format!("<h1 class=\"{p}-title\">{doc_name}</h1>"),
        format!("<p class=\"{p}-section\">This file was shared with you via {}.</p>", brand.name),
        format!(
            "<a class=\"{p}-button\" href=\"{payload_url}\" download=\"{doc_name}\">Download ({} KB)</a>",
            rng.range_u64(180, 4200)
        ),
        // Auto-trigger: the classic drive-by refresh.
        format!("<meta http-equiv=\"refresh\" content=\"3;url={payload_url}\">"),
    ];
    for _ in 0..rng.index(3) {
        let n = 1 + rng.index(2);
        body.push(format!(
            "<section class=\"{p}-section\"><p>{}</p></section>",
            lorem_sentences(rng, n)
        ));
    }
    if rng.chance(0.4) {
        body.push(format!(
            "<ul class=\"{p}-list\"><li><a href=\"/shared\">All shared files</a></li>\
             <li><a href=\"/help\">Help</a></li></ul>"
        ));
    }
    (title, body)
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

impl PageSpec {
    /// Generate the site for this spec. Pure: equal specs produce equal
    /// output.
    pub fn generate(&self) -> GeneratedSite {
        let mut rng = Rng64::new(self.seed ^ 0x5eed_f00d);
        let d = self.fwb.descriptor();
        let (title, body) = match &self.kind {
            PageKind::Benign { topic } => benign_body(*topic, self.fwb, &mut rng),
            PageKind::BenignFan { brand } => fan_body(&BRANDS[*brand], self.fwb, &mut rng),
            PageKind::CredentialPhish { brand } => {
                credential_body(&BRANDS[*brand], self.fwb, &mut rng)
            }
            PageKind::TwoStep { brand, target_url } => {
                twostep_body(&BRANDS[*brand], target_url, self.fwb, &mut rng)
            }
            PageKind::IframeEmbed { brand, iframe_url } => {
                iframe_body(&BRANDS[*brand], iframe_url, self.fwb, &mut rng)
            }
            PageKind::DriveBy { brand, payload_url } => {
                driveby_body(&BRANDS[*brand], payload_url, self.fwb, &mut rng)
            }
        };
        let opts = RenderOptions {
            noindex: self.noindex,
            obfuscate_banner: self.obfuscate_banner && d.has_banner,
        };
        let html = template::render(d, &title, &body, opts, &mut rng);
        GeneratedSite {
            url: self.fwb.site_url(&self.site_name),
            html,
            spec: self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: PageKind) -> PageSpec {
        PageSpec {
            fwb: FwbKind::Weebly,
            kind,
            site_name: "test-site".into(),
            noindex: false,
            obfuscate_banner: false,
            seed: 7,
        }
    }

    #[test]
    fn benign_page_has_no_password_field() {
        let site = spec(PageKind::Benign { topic: 0 }).generate();
        assert!(!site.html.contains("type=\"password\""));
        assert!(site.html.contains("Garden"));
    }

    #[test]
    fn credential_page_has_login_form() {
        let site = spec(PageKind::CredentialPhish { brand: 4 }).generate();
        assert!(site.html.contains("type=\"password\""));
        assert!(site.html.contains("Sign in to PayPal"));
        assert!(site.html.contains("<form"));
    }

    #[test]
    fn finance_brand_asks_for_card_and_ssn() {
        let site = spec(PageKind::CredentialPhish { brand: 9 }).generate(); // Chase
        assert!(site.html.contains("card_number"));
        assert!(site.html.contains("ssn"));
    }

    #[test]
    fn twostep_has_button_but_no_credentials() {
        let site = spec(PageKind::TwoStep {
            brand: 1,
            target_url: "https://evil.example.net/login".into(),
        })
        .generate();
        assert!(site.html.contains("https://evil.example.net/login"));
        assert!(!site.html.contains("type=\"password\""));
    }

    #[test]
    fn iframe_embeds_external_attack() {
        let site = spec(PageKind::IframeEmbed {
            brand: 2,
            iframe_url: "https://attack.example.org/frame".into(),
        })
        .generate();
        assert!(site.html.contains("<iframe"));
        assert!(site.html.contains("https://attack.example.org/frame"));
        assert!(!site.html.contains("type=\"password\""));
    }

    #[test]
    fn driveby_has_download_and_refresh() {
        let site = spec(PageKind::DriveBy {
            brand: 1,
            payload_url: "https://files.example.org/x.iso".into(),
        })
        .generate();
        assert!(site.html.contains("download="));
        assert!(site.html.contains("http-equiv=\"refresh\""));
        assert!(!site.html.contains("type=\"password\""));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(PageKind::CredentialPhish { brand: 0 });
        assert_eq!(s.generate().html, s.generate().html);
        assert_eq!(s.generate().url, "https://test-site.weebly.com/");
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(PageKind::Benign { topic: 1 }).generate();
        let mut s2 = spec(PageKind::Benign { topic: 1 });
        s2.seed = 8;
        let b = s2.generate();
        assert_ne!(a.html, b.html);
    }

    #[test]
    fn noindex_and_banner_flags_flow_through() {
        let mut s = spec(PageKind::CredentialPhish { brand: 0 });
        s.noindex = true;
        s.obfuscate_banner = true;
        let html = s.generate().html;
        assert!(html.contains("noindex"));
        assert!(html.contains("visibility: hidden"));
    }

    #[test]
    fn site_names_are_plausible() {
        let mut rng = Rng64::new(3);
        for _ in 0..50 {
            let n = phishy_site_name(&BRANDS[4], &mut rng);
            assert!(!n.is_empty() && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
            let b = benign_site_name(2, &mut rng);
            assert!(!b.is_empty() && b.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(!PageKind::Benign { topic: 0 }.is_malicious());
        assert!(PageKind::CredentialPhish { brand: 0 }.is_malicious());
        assert!(!PageKind::CredentialPhish { brand: 0 }.is_evasive());
        let ts = PageKind::TwoStep {
            brand: 0,
            target_url: "x".into(),
        };
        assert!(ts.is_malicious() && ts.is_evasive());
        assert_eq!(ts.brand().unwrap().name, "Facebook");
    }
}
