//! The pre-processing module: feature extraction.
//!
//! Section 4.2 of the paper: the classifier builds on the StackModel
//! feature set (Li et al. 2019) — 8 URL features and 12 HTML features —
//! with two adjustments for FWB attacks: the `https` and multi-TLD features
//! are dropped (useless: *every* FWB site is https with a single TLD) and
//! two FWB-specific features are added — **obfuscated FWB banner** and
//! **noindex meta tag**.
//!
//! [`FeatureSet::Base`] is the original 20-feature StackModel layout used
//! by the Table 2 baseline; [`FeatureSet::Augmented`] is FreePhish's.

use freephish_htmlparse::Document;
use freephish_urlparse::lexical::{
    best_brand_match, digit_ratio, host_dot_count, host_hyphen_count, sensitive_word_count,
    suspicious_symbol_count, BrandMatch,
};
use freephish_urlparse::Url;
use freephish_webgen::brands::{brand_tokens, BRANDS};

/// Which feature layout to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// The original StackModel's 20 features (includes `https` presence and
    /// multi-TLD count; no FWB features).
    Base,
    /// FreePhish's 20 features: base minus {https, multi-TLD} plus
    /// {obfuscated banner, noindex}.
    Augmented,
}

/// An extracted feature vector plus its layout.
#[derive(Debug, Clone)]
pub struct FeatureVector {
    /// The layout this vector follows.
    pub set: FeatureSet,
    /// Values, ordered as [`feature_names`](FeatureVector::feature_names).
    pub values: Vec<f64>,
}

/// The eight URL-based features shared by both layouts.
fn url_features(url: &Url) -> Vec<f64> {
    let s = url.as_string();
    let brand = best_brand_match(url, &brand_tokens());
    let brand_score = match brand {
        Some((_, BrandMatch::Exact)) => 3.0,
        Some((_, BrandMatch::Misspelled)) => 2.0,
        Some((_, BrandMatch::Embedded)) => 1.0,
        _ => 0.0,
    };
    vec![
        s.len() as f64,
        suspicious_symbol_count(&s) as f64,
        sensitive_word_count(&s) as f64,
        brand_score,
        digit_ratio(&s),
        host_dot_count(url) as f64,
        host_hyphen_count(url) as f64,
        f64::from(url.host().is_ip()),
    ]
}

/// Does free text mention a catalog brand? Short brand tokens only match
/// as whole words (otherwise "ing" matches "planting"); names of five or
/// more characters may match as substrings ("bank of america" inside a
/// sentence).
pub fn text_mentions_brand(text: &str) -> Option<&'static freephish_webgen::Brand> {
    let lower = text.to_ascii_lowercase();
    let words: std::collections::HashSet<&str> = lower
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
        .collect();
    BRANDS.iter().find(|b| {
        words.contains(b.token)
            || (b.name.len() >= 5 && lower.contains(&b.name.to_ascii_lowercase()))
    })
}

/// The ten HTML-based features shared by both layouts (the StackModel's
/// twelve, minus the two the layouts disagree on).
fn html_features(url: &Url, doc: &Document) -> Vec<f64> {
    let own = url
        .host()
        .registrable_domain()
        .unwrap_or_else(|| url.host().to_string());
    let (internal, external) = doc.link_partition(&own);
    let links = doc.links().len();
    let title_brand = doc
        .title()
        .map(|t| text_mentions_brand(&t).is_some())
        .unwrap_or(false);
    vec![
        links as f64,
        internal as f64,
        external as f64,
        doc.empty_links() as f64,
        f64::from(doc.has_login_form()),
        doc.credential_inputs().len() as f64,
        // HTML length proxied by node count (stable across formatting).
        doc.len() as f64,
        doc.forms().len() as f64,
        doc.iframes().len() as f64,
        f64::from(title_brand),
    ]
}

/// Does the page hide an element whose class names it as a service banner?
/// (The paper's "Obfuscating FWB Footer" feature.)
pub fn has_obfuscated_banner(doc: &Document) -> bool {
    doc.elements().iter().any(|e| {
        e.attr("class")
            .map(|c| c.contains("banner"))
            .unwrap_or(false)
            && e.is_hidden_by_style()
    })
}

/// Multi-TLD count: how many known TLD tokens appear inside the host labels
/// (self-hosted attacks stack them: `paypal.com.verify-account.xyz`).
fn multi_tld_count(url: &Url) -> usize {
    const TLD_TOKENS: &[&str] = &["com", "net", "org", "info", "biz"];
    url.host()
        .labels()
        .iter()
        .rev()
        .skip(1) // the real TLD does not count
        .filter(|l| TLD_TOKENS.contains(&l.to_ascii_lowercase().as_str()))
        .count()
}

impl FeatureVector {
    /// Extract features for a snapshot (URL + parsed page).
    pub fn extract(set: FeatureSet, url: &Url, doc: &Document) -> FeatureVector {
        let mut values = url_features(url);
        values.extend(html_features(url, doc));
        match set {
            FeatureSet::Base => {
                values.push(f64::from(url.is_https()));
                values.push(multi_tld_count(url) as f64);
            }
            FeatureSet::Augmented => {
                values.push(f64::from(has_obfuscated_banner(doc)));
                values.push(f64::from(doc.has_noindex_meta()));
            }
        }
        FeatureVector { set, values }
    }

    /// Column names, aligned with [`FeatureVector::values`].
    pub fn feature_names(set: FeatureSet) -> Vec<String> {
        let mut names: Vec<String> = [
            // URL features
            "url_len",
            "suspicious_symbols",
            "sensitive_words",
            "brand_match",
            "digit_ratio",
            "host_dots",
            "host_hyphens",
            "ip_host",
            // HTML features
            "n_links",
            "n_internal_links",
            "n_external_links",
            "n_empty_links",
            "has_login_form",
            "n_credential_inputs",
            "dom_nodes",
            "n_forms",
            "n_iframes",
            "title_brand",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match set {
            FeatureSet::Base => {
                names.push("has_https".into());
                names.push("multi_tld".into());
            }
            FeatureSet::Augmented => {
                names.push("banner_obfuscated".into());
                names.push("has_noindex".into());
            }
        }
        names
    }

    /// Number of features in a layout (20 for both, by construction).
    pub fn width(set: FeatureSet) -> usize {
        Self::feature_names(set).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_htmlparse::parse;
    use freephish_webgen::{FwbKind, PageKind, PageSpec};

    fn snapshot(kind: PageKind, noindex: bool, obf: bool) -> (Url, Document) {
        let site = PageSpec {
            fwb: FwbKind::Weebly,
            kind,
            site_name: "feat-test".into(),
            noindex,
            obfuscate_banner: obf,
            seed: 5,
        }
        .generate();
        (Url::parse(&site.url).unwrap(), parse(&site.html))
    }

    #[test]
    fn widths_are_20() {
        assert_eq!(FeatureVector::width(FeatureSet::Base), 20);
        assert_eq!(FeatureVector::width(FeatureSet::Augmented), 20);
    }

    #[test]
    fn vector_matches_names_width() {
        let (url, doc) = snapshot(PageKind::CredentialPhish { brand: 4 }, false, false);
        for set in [FeatureSet::Base, FeatureSet::Augmented] {
            let v = FeatureVector::extract(set, &url, &doc);
            assert_eq!(v.values.len(), FeatureVector::width(set));
        }
    }

    #[test]
    fn phish_page_fires_login_features() {
        let (url, doc) = snapshot(PageKind::CredentialPhish { brand: 4 }, false, false);
        let v = FeatureVector::extract(FeatureSet::Augmented, &url, &doc);
        let names = FeatureVector::feature_names(FeatureSet::Augmented);
        let get = |n: &str| v.values[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("has_login_form"), 1.0);
        assert!(get("n_credential_inputs") >= 2.0);
        assert_eq!(get("title_brand"), 1.0);
    }

    #[test]
    fn benign_page_does_not_fire_login_features() {
        let (url, doc) = snapshot(PageKind::Benign { topic: 0 }, false, false);
        let v = FeatureVector::extract(FeatureSet::Augmented, &url, &doc);
        let names = FeatureVector::feature_names(FeatureSet::Augmented);
        let get = |n: &str| v.values[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("has_login_form"), 0.0);
        assert_eq!(get("title_brand"), 0.0);
    }

    #[test]
    fn fwb_features_fire() {
        let (url, doc) = snapshot(PageKind::CredentialPhish { brand: 0 }, true, true);
        let v = FeatureVector::extract(FeatureSet::Augmented, &url, &doc);
        let names = FeatureVector::feature_names(FeatureSet::Augmented);
        let get = |n: &str| v.values[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("banner_obfuscated"), 1.0);
        assert_eq!(get("has_noindex"), 1.0);
    }

    #[test]
    fn base_set_has_https_feature() {
        let (url, doc) = snapshot(PageKind::Benign { topic: 1 }, false, false);
        let v = FeatureVector::extract(FeatureSet::Base, &url, &doc);
        let names = FeatureVector::feature_names(FeatureSet::Base);
        let get = |n: &str| v.values[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("has_https"), 1.0); // FWB sites are always https
        assert_eq!(get("multi_tld"), 0.0);
    }

    #[test]
    fn multi_tld_detects_stacked_tlds() {
        let url = Url::parse("https://paypal.com.verify-login.xyz/x").unwrap();
        assert_eq!(multi_tld_count(&url), 1);
        let clean = Url::parse("https://a.weebly.com/").unwrap();
        assert_eq!(multi_tld_count(&clean), 0);
    }

    #[test]
    fn brand_feature_from_url() {
        let url = Url::parse("https://paypal-login.weebly.com/").unwrap();
        let doc = parse("<html><body></body></html>");
        let v = FeatureVector::extract(FeatureSet::Augmented, &url, &doc);
        let names = FeatureVector::feature_names(FeatureSet::Augmented);
        let get = |n: &str| v.values[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("brand_match"), 3.0); // exact token
    }

    #[test]
    fn obfuscated_banner_detector() {
        let hidden = parse(r#"<div class="wsite-banner" style="visibility:hidden">x</div>"#);
        assert!(has_obfuscated_banner(&hidden));
        let visible = parse(r#"<div class="wsite-banner">x</div>"#);
        assert!(!has_obfuscated_banner(&visible));
        let unrelated = parse(r#"<div class="content" style="display:none">x</div>"#);
        assert!(!has_obfuscated_banner(&unrelated));
    }
}
