//! Per-FWB hosting and the abuse-report → takedown state machine.
//!
//! Section 5.3 measures, per service: the fraction of reported phishing
//! sites the service removes ("coverage"), the median removal delay
//! ("speed"), and how the service responds to reports (ignores them,
//! acknowledges with a ticket and stalls, or follows up and removes the
//! site *and* the attacker's account). [`TakedownProfile::paper_default`]
//! encodes those behaviours per service, calibrated to Table 4's Domain
//! column and the Section 5.3 response-rate figures.

use freephish_simclock::{Rng64, SimDuration, SimTime};
use freephish_webgen::{FwbKind, GeneratedSite};
use std::collections::HashMap;

/// Identifier of a hosted site within one [`FwbHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(pub u32);

/// Lifecycle state of a hosted site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// Serving content.
    Active,
    /// Removed by the service at the given time.
    Removed(SimTime),
}

/// How a service engages with abuse reports (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportBehavior {
    /// Never responds to reports (WordPress, GoDaddySites, Firebase,
    /// Google Sites, Sharepoint, Yolasite).
    NoResponse,
    /// Acknowledges a fraction of reports with a support ticket but rarely
    /// follows up (Squareup, Github.io, Google Sites, Blogspot).
    AckOnly {
        /// Fraction of reports acknowledged.
        ack_rate: f64,
    },
    /// Acknowledges, follows up, and removes site + account (Weebly, Wix,
    /// 000webhost, Zoho Forms).
    Responsive {
        /// Fraction of reports acknowledged and followed up.
        ack_rate: f64,
    },
}

/// A service's takedown behaviour.
#[derive(Debug, Clone)]
pub struct TakedownProfile {
    /// Probability a reported phishing site is eventually removed.
    pub removal_prob: f64,
    /// Median removal delay, in minutes, for sites that are removed.
    pub median_response_mins: f64,
    /// Log-space spread of the removal delay.
    pub sigma: f64,
    /// Report engagement behaviour.
    pub report_behavior: ReportBehavior,
}

impl TakedownProfile {
    /// The calibrated behaviour of one of the 17 services (Table 4 "Domain"
    /// column; removal probabilities carry the 0.85 aggregate scale that
    /// reconciles Table 4's per-service rates with Table 3's one-week
    /// 29.38% aggregate — see DESIGN.md §5).
    pub fn paper_default(kind: FwbKind) -> TakedownProfile {
        use ReportBehavior::*;
        // (removal %, median minutes, behaviour)
        let (rate, mins, behavior) = match kind {
            FwbKind::Weebly => (58.56, 99.0, Responsive { ack_rate: 0.716 }),
            FwbKind::Webhost000 => (59.04, 45.0, Responsive { ack_rate: 0.827 }),
            FwbKind::Blogspot => (8.52, 411.0, AckOnly { ack_rate: 0.283 }),
            FwbKind::Wix => (64.55, 136.0, Responsive { ack_rate: 0.653 }),
            FwbKind::GoogleSites => (7.76, 742.0, AckOnly { ack_rate: 0.152 }),
            FwbKind::GithubIo => (9.16, 1234.0, AckOnly { ack_rate: 0.374 }),
            FwbKind::Firebase => (7.22, 855.0, NoResponse),
            FwbKind::Squareup => (18.75, 611.0, AckOnly { ack_rate: 0.237 }),
            FwbKind::ZohoForms => (24.57, 431.0, Responsive { ack_rate: 0.704 }),
            FwbKind::Wordpress => (5.09, 1250.0, NoResponse),
            FwbKind::GoogleForms => (11.96, 377.0, AckOnly { ack_rate: 0.20 }),
            FwbKind::Sharepoint => (7.64, 307.0, NoResponse),
            FwbKind::Yolasite => (7.52, 425.0, NoResponse),
            FwbKind::GoDaddySites => (5.84, 298.0, NoResponse),
            FwbKind::Mailchimp => (23.67, 1091.0, AckOnly { ack_rate: 0.30 }),
            FwbKind::GlitchMe => (21.31, 2087.0, AckOnly { ack_rate: 0.15 }),
            FwbKind::Hpage => (19.60, 705.0, NoResponse),
        };
        TakedownProfile {
            removal_prob: (rate / 100.0) * 0.85,
            median_response_mins: mins,
            sigma: 0.9,
            report_behavior: behavior,
        }
    }
}

/// Outcome of filing one abuse report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportOutcome {
    /// Whether the service acknowledged the report (initial response).
    pub acknowledged: bool,
    /// Whether the service followed up beyond the acknowledgement.
    pub followed_up: bool,
    /// When the site will be removed, if it will be.
    pub removal_at: Option<SimTime>,
    /// Whether the attacker's account was also terminated.
    pub account_terminated: bool,
}

/// One hosted site.
#[derive(Debug, Clone)]
pub struct HostedSite {
    /// Identifier within the host.
    pub id: SiteId,
    /// Full site URL.
    pub url: String,
    /// The generated content.
    pub site: GeneratedSite,
    /// Creation time.
    pub created_at: SimTime,
    /// Current lifecycle state.
    pub state: SiteState,
    /// Attacker/owner account id on the service.
    pub account: u32,
    /// Whether a report has already been filed.
    pub reported: bool,
}

impl HostedSite {
    /// True while the site serves content at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        match self.state {
            SiteState::Active => true,
            SiteState::Removed(at) => now < at,
        }
    }

    /// Removal delay from creation, if removal is scheduled/done.
    pub fn removal_delay(&self) -> Option<SimDuration> {
        match self.state {
            SiteState::Active => None,
            SiteState::Removed(at) => Some(at - self.created_at),
        }
    }
}

/// One FWB service's hosting: site registry plus takedown behaviour.
#[derive(Debug)]
pub struct FwbHost {
    /// Which service this is.
    pub kind: FwbKind,
    /// Takedown behaviour.
    pub profile: TakedownProfile,
    sites: Vec<HostedSite>,
    by_url: HashMap<String, SiteId>,
    rng: Rng64,
    next_account: u32,
}

impl FwbHost {
    /// A host with the paper-calibrated profile.
    pub fn new(kind: FwbKind, seed: u64) -> FwbHost {
        FwbHost {
            kind,
            profile: TakedownProfile::paper_default(kind),
            sites: Vec::new(),
            by_url: HashMap::new(),
            rng: Rng64::new(seed ^ (kind as u64).wrapping_mul(0x9E37_79B9)),
            next_account: 1,
        }
    }

    /// A host with a custom profile (for ablations).
    pub fn with_profile(kind: FwbKind, profile: TakedownProfile, seed: u64) -> FwbHost {
        FwbHost {
            profile,
            ..FwbHost::new(kind, seed)
        }
    }

    /// Publish a generated site at `now`. Free, instant, SSL included —
    /// the Section 3 "initial investment" finding.
    pub fn publish(&mut self, site: GeneratedSite, now: SimTime) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        let account = self.next_account;
        self.next_account += 1;
        self.by_url.insert(site.url.clone(), id);
        self.sites.push(HostedSite {
            id,
            url: site.url.clone(),
            site,
            created_at: now,
            state: SiteState::Active,
            account,
            reported: false,
        });
        id
    }

    /// Look up a hosted site by its URL (O(1); the reporting module files
    /// reports keyed by URL).
    pub fn site_by_url(&self, url: &str) -> Option<SiteId> {
        self.by_url.get(url).copied()
    }

    /// Borrow a site.
    pub fn site(&self, id: SiteId) -> &HostedSite {
        &self.sites[id.0 as usize]
    }

    /// All sites.
    pub fn sites(&self) -> &[HostedSite] {
        &self.sites
    }

    /// Number of hosted sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites are hosted.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// File an abuse report for `id` at time `now`. The first report decides
    /// the site's fate according to the service's profile; repeat reports
    /// return the already-determined outcome shape (idempotent fate).
    pub fn report_abuse(&mut self, id: SiteId, now: SimTime) -> ReportOutcome {
        let profile = self.profile.clone();
        let site = &mut self.sites[id.0 as usize];
        if site.reported {
            // Fate already sealed; report acknowledged only by responsive
            // services that track tickets.
            return ReportOutcome {
                acknowledged: false,
                followed_up: false,
                removal_at: match site.state {
                    SiteState::Removed(at) => Some(at),
                    SiteState::Active => None,
                },
                account_terminated: false,
            };
        }
        site.reported = true;

        let (acknowledged, followed_up) = match profile.report_behavior {
            ReportBehavior::NoResponse => (false, false),
            ReportBehavior::AckOnly { ack_rate } => (self.rng.chance(ack_rate), false),
            ReportBehavior::Responsive { ack_rate } => {
                let ack = self.rng.chance(ack_rate);
                (ack, ack)
            }
        };

        let will_remove = self.rng.chance(profile.removal_prob);
        let removal_at = will_remove.then(|| {
            let mins = self
                .rng
                .lognormal_median(profile.median_response_mins, profile.sigma);
            now + SimDuration::from_secs((mins * 60.0) as u64)
        });
        let site = &mut self.sites[id.0 as usize];
        if let Some(at) = removal_at {
            site.state = SiteState::Removed(at);
        }
        ReportOutcome {
            acknowledged,
            followed_up,
            removal_at,
            account_terminated: followed_up && will_remove,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_webgen::{PageKind, PageSpec};

    fn site(fwb: FwbKind, seed: u64) -> GeneratedSite {
        PageSpec {
            fwb,
            kind: PageKind::CredentialPhish { brand: 0 },
            site_name: format!("s{seed}"),
            noindex: false,
            obfuscate_banner: false,
            seed,
        }
        .generate()
    }

    #[test]
    fn publish_and_query() {
        let mut host = FwbHost::new(FwbKind::Weebly, 1);
        let id = host.publish(site(FwbKind::Weebly, 1), SimTime::from_hours(1));
        assert_eq!(host.len(), 1);
        let s = host.site(id);
        assert!(s.is_active(SimTime::from_hours(2)));
        assert_eq!(s.account, 1);
    }

    #[test]
    fn responsive_service_removes_most_sites() {
        let mut host = FwbHost::new(FwbKind::Wix, 2);
        let mut removed = 0;
        let mut acked = 0;
        let n = 1000;
        for i in 0..n {
            let id = host.publish(site(FwbKind::Wix, i), SimTime::ZERO);
            let out = host.report_abuse(id, SimTime::from_mins(5));
            if out.removal_at.is_some() {
                removed += 1;
            }
            if out.acknowledged {
                acked += 1;
                assert!(out.followed_up);
            }
        }
        // Wix: 64.55% × 0.85 ≈ 55% removal, 65.3% ack.
        let rate = removed as f64 / n as f64;
        assert!((0.48..0.62).contains(&rate), "rate={rate}");
        let ack_rate = acked as f64 / n as f64;
        assert!((0.58..0.72).contains(&ack_rate), "ack={ack_rate}");
    }

    #[test]
    fn unresponsive_service_never_acks() {
        let mut host = FwbHost::new(FwbKind::Wordpress, 3);
        for i in 0..100 {
            let id = host.publish(site(FwbKind::Wordpress, i), SimTime::ZERO);
            let out = host.report_abuse(id, SimTime::from_mins(1));
            assert!(!out.acknowledged);
            assert!(!out.followed_up);
            assert!(!out.account_terminated);
        }
    }

    #[test]
    fn removal_median_near_calibration() {
        let mut host = FwbHost::new(FwbKind::Weebly, 4);
        let mut delays: Vec<u64> = Vec::new();
        for i in 0..3000 {
            let id = host.publish(site(FwbKind::Weebly, i), SimTime::ZERO);
            if let Some(at) = host.report_abuse(id, SimTime::ZERO).removal_at {
                delays.push(at.as_secs() / 60);
            }
        }
        delays.sort_unstable();
        let median = delays[delays.len() / 2] as f64;
        // Calibrated to 99 minutes.
        assert!((60.0..150.0).contains(&median), "median={median}");
    }

    #[test]
    fn repeat_reports_are_idempotent() {
        let mut host = FwbHost::new(FwbKind::Weebly, 5);
        let id = host.publish(site(FwbKind::Weebly, 9), SimTime::ZERO);
        let first = host.report_abuse(id, SimTime::from_mins(1));
        let second = host.report_abuse(id, SimTime::from_mins(2));
        assert_eq!(first.removal_at, second.removal_at);
        assert!(!second.acknowledged);
    }

    #[test]
    fn removed_site_becomes_inactive() {
        let host = FwbHost::new(FwbKind::Weebly, 6);
        // Force removal with a certain-profile host.
        let profile = TakedownProfile {
            removal_prob: 1.0,
            median_response_mins: 10.0,
            sigma: 0.01,
            report_behavior: ReportBehavior::Responsive { ack_rate: 1.0 },
        };
        let mut host2 = FwbHost::with_profile(FwbKind::Weebly, profile, 6);
        let id = host2.publish(site(FwbKind::Weebly, 10), SimTime::ZERO);
        let out = host2.report_abuse(id, SimTime::ZERO);
        let at = out.removal_at.unwrap();
        assert!(host2.site(id).is_active(SimTime::ZERO));
        assert!(!host2.site(id).is_active(at));
        assert!(out.account_terminated);
        assert!(host2.site(id).removal_delay().is_some());
        drop(host);
    }

    #[test]
    fn all_services_have_profiles() {
        for kind in FwbKind::all() {
            let p = TakedownProfile::paper_default(kind);
            assert!((0.0..=1.0).contains(&p.removal_prob), "{kind}");
            assert!(p.median_response_mins > 0.0);
        }
    }

    #[test]
    fn weebly_faster_than_github() {
        // Table 4: Weebly median 1:39 vs github.io 20:34.
        let w = TakedownProfile::paper_default(FwbKind::Weebly);
        let g = TakedownProfile::paper_default(FwbKind::GithubIo);
        assert!(w.median_response_mins < g.median_response_mins / 5.0);
        assert!(w.removal_prob > g.removal_prob * 4.0);
    }
}
