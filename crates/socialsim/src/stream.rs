//! The platform feed: publish posts, poll for new ones, query status.
//!
//! [`PlatformFeed`] is the simulated equivalent of the Twitter/CrowdTangle
//! API surface the paper's streaming module consumes: a time-windowed poll
//! for new posts plus per-post status checks (the Section 4.4 deletion
//! probes keyed by post id).

use crate::moderation::ModerationProfile;
use crate::post::{author_handle, lure_text, Post, PostId};
use freephish_fwbsim::history::Platform;
use freephish_simclock::{Rng64, SimTime};

/// One platform's feed of posts, ordered by posting time.
#[derive(Debug)]
pub struct PlatformFeed {
    /// Which platform this feed belongs to.
    pub platform: Platform,
    posts: Vec<Post>,
    rng: Rng64,
    next_id: u64,
}

impl PlatformFeed {
    /// An empty feed.
    pub fn new(platform: Platform, seed: u64) -> PlatformFeed {
        PlatformFeed {
            platform,
            posts: Vec::new(),
            rng: Rng64::new(seed ^ (platform as u64 + 1).wrapping_mul(0xfeed)),
            next_id: 1,
        }
    }

    /// Publish a post sharing `url` at `posted_at`, with moderation fate
    /// drawn from `profile`. Posts must be published in non-decreasing time
    /// order (the generators iterate time forward).
    pub fn publish(
        &mut self,
        url: &str,
        brand_name: Option<&str>,
        posted_at: SimTime,
        profile: &ModerationProfile,
    ) -> PostId {
        if let Some(last) = self.posts.last() {
            assert!(
                posted_at >= last.posted_at,
                "posts must be published in time order"
            );
        }
        let id = PostId(self.next_id);
        self.next_id += 1;
        let deleted_at = profile.draw_deletion(posted_at, &mut self.rng);
        let text = lure_text(url, brand_name, &mut self.rng);
        self.posts.push(Post {
            id,
            platform: self.platform,
            text,
            url: url.to_string(),
            author: author_handle(&mut self.rng),
            posted_at,
            deleted_at,
        });
        id
    }

    /// Posts published in `[from, to)` that are still visible at `to` —
    /// the poll the streaming module runs every ten minutes. (A post
    /// deleted before the poll fires is never observed, exactly like the
    /// real API.) Posts are time-sorted, so the window is located by
    /// binary search and polling a long feed stays cheap.
    pub fn poll_window(&self, from: SimTime, to: SimTime) -> Vec<&Post> {
        let start = self.posts.partition_point(|p| p.posted_at < from);
        let end = self.posts.partition_point(|p| p.posted_at < to);
        self.posts[start..end]
            .iter()
            .filter(|p| p.is_visible(to))
            .collect()
    }

    /// Status probe by post id: `Some(true)` = visible, `Some(false)` =
    /// deleted, `None` = unknown id.
    pub fn is_visible(&self, id: PostId, now: SimTime) -> Option<bool> {
        self.posts
            .iter()
            .find(|p| p.id == id)
            .map(|p| p.is_visible(now))
    }

    /// Borrow a post by id.
    pub fn post(&self, id: PostId) -> Option<&Post> {
        self.posts.iter().find(|p| p.id == id)
    }

    /// All posts (test/analysis access).
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when no posts exist.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Mutable RNG access for co-located generators.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freephish_webgen::FwbKind;

    fn never() -> ModerationProfile {
        ModerationProfile {
            delete_prob: 0.0,
            median_mins: 1.0,
            sigma: 0.1,
        }
    }

    fn always_fast() -> ModerationProfile {
        ModerationProfile {
            delete_prob: 1.0,
            median_mins: 5.0,
            sigma: 0.01,
        }
    }

    #[test]
    fn publish_and_poll() {
        let mut feed = PlatformFeed::new(Platform::Twitter, 1);
        feed.publish(
            "https://a.weebly.com/",
            None,
            SimTime::from_mins(5),
            &never(),
        );
        feed.publish(
            "https://b.weebly.com/",
            None,
            SimTime::from_mins(15),
            &never(),
        );
        let w = feed.poll_window(SimTime::ZERO, SimTime::from_mins(10));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].url, "https://a.weebly.com/");
        let all = feed.poll_window(SimTime::ZERO, SimTime::from_mins(20));
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn deleted_before_poll_is_missed() {
        let mut feed = PlatformFeed::new(Platform::Twitter, 2);
        let id = feed.publish(
            "https://gone.weebly.com/",
            Some("PayPal"),
            SimTime::from_mins(1),
            &always_fast(),
        );
        // Deleted ~5 minutes after posting; a poll at t=60min misses it.
        let w = feed.poll_window(SimTime::ZERO, SimTime::from_mins(60));
        assert!(w.is_empty());
        assert_eq!(feed.is_visible(id, SimTime::from_mins(60)), Some(false));
        assert_eq!(feed.is_visible(id, SimTime::from_mins(2)), Some(true));
    }

    #[test]
    fn unknown_id_is_none() {
        let feed = PlatformFeed::new(Platform::Facebook, 3);
        assert_eq!(feed.is_visible(PostId(99), SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_publish_panics() {
        let mut feed = PlatformFeed::new(Platform::Twitter, 4);
        feed.publish(
            "https://a.weebly.com/",
            None,
            SimTime::from_mins(10),
            &never(),
        );
        feed.publish(
            "https://b.weebly.com/",
            None,
            SimTime::from_mins(5),
            &never(),
        );
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut feed = PlatformFeed::new(Platform::Twitter, 5);
        let mut prev = 0;
        for i in 0..20 {
            let id = feed.publish(
                &format!("https://s{i}.weebly.com/"),
                None,
                SimTime::from_mins(i),
                &never(),
            );
            assert!(id.0 > prev);
            prev = id.0;
        }
    }

    #[test]
    fn moderation_profile_applies_per_post() {
        let mut feed = PlatformFeed::new(Platform::Twitter, 6);
        let profile = ModerationProfile::fwb(Platform::Twitter, FwbKind::Wix);
        for i in 0..2000u64 {
            feed.publish(
                &format!("https://w{i}.wixsite.com/"),
                None,
                SimTime::from_mins(i),
                &profile,
            );
        }
        let deleted = feed
            .posts()
            .iter()
            .filter(|p| p.deleted_at.is_some())
            .count();
        let rate = deleted as f64 / feed.len() as f64;
        // Wix Twitter profile: 0.3577 * 1.15 ≈ 0.41.
        assert!((0.36..0.47).contains(&rate), "rate={rate}");
    }
}
