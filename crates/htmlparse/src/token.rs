//! Tolerant HTML tokenizer.
//!
//! Produces a flat token stream: open tags (with parsed attributes), close
//! tags, text runs, and comments. Raw-text elements (`script`, `style`)
//! swallow everything up to their matching close tag. Malformed input never
//! panics — the tokenizer treats stray `<` as text when no tag can start.

use std::borrow::Cow;
use std::fmt;

/// One attribute on an open tag. Names are lower-cased; values are unquoted
/// and entity-decoded for the small entity set that matters here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name, lower-cased.
    pub name: String,
    /// Attribute value; empty for valueless attributes (`<input disabled>`).
    pub value: String,
}

/// One token of the HTML stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr=...>`; `self_closing` records an explicit `/>`.
    Open {
        /// Tag name, lower-cased.
        tag: String,
        /// Attributes in document order.
        attrs: Vec<Attr>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    Close {
        /// Tag name, lower-cased.
        tag: String,
    },
    /// A run of character data (entity-decoded).
    Text(String),
    /// `<!-- ... -->` contents (without the delimiters).
    Comment(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Open {
                tag,
                attrs,
                self_closing,
            } => {
                write!(f, "<{tag}")?;
                for a in attrs {
                    if a.value.is_empty() {
                        write!(f, " {}", a.name)?;
                    } else {
                        write!(f, " {}=\"{}\"", a.name, a.value)?;
                    }
                }
                if *self_closing {
                    write!(f, "/")?;
                }
                write!(f, ">")
            }
            Token::Close { tag } => write!(f, "</{tag}>"),
            Token::Text(t) => f.write_str(t),
            Token::Comment(c) => write!(f, "<!--{c}-->"),
        }
    }
}

/// Tokenize an HTML string. Never panics.
///
/// This is a thin adapter over the zero-copy tokenizer in [`crate::span`]:
/// it materialises each borrowed span token into an owned [`Token`], so
/// existing callers see exactly the pre-rewrite stream (property-tested
/// against [`crate::legacy::tokenize`]).
pub fn tokenize(html: &str) -> Vec<Token> {
    crate::span::tokenize_spans(html).map(Token::from).collect()
}

impl From<crate::span::SpanToken<'_>> for Token {
    fn from(t: crate::span::SpanToken<'_>) -> Token {
        use crate::span::SpanToken;
        match t {
            SpanToken::Open {
                tag,
                attrs,
                self_closing,
            } => Token::Open {
                tag: tag.into_owned(),
                attrs: attrs
                    .into_iter()
                    .map(|a| Attr {
                        name: a.name.into_owned(),
                        value: a.value.into_owned(),
                    })
                    .collect(),
                self_closing,
            },
            SpanToken::Close { tag } => Token::Close {
                tag: tag.into_owned(),
            },
            SpanToken::Text(t) => Token::Text(t.into_owned()),
            SpanToken::Comment(c) => Token::Comment(c.to_string()),
        }
    }
}

/// Decode the entity subset that matters for feature extraction.
///
/// Borrows the input untouched when it contains no `&` (the overwhelmingly
/// common case for markup text runs), and only allocates when a recognised
/// entity actually changes bytes.
pub fn decode_entities(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let replaced = [
            ("&amp;", "&"),
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&quot;", "\""),
            ("&#39;", "'"),
            ("&apos;", "'"),
            ("&nbsp;", " "),
        ]
        .iter()
        .find(|(ent, _)| rest.starts_with(ent));
        match replaced {
            Some((ent, rep)) => {
                out.push_str(rep);
                rest = &rest[ent.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(tok: &Token) -> (&str, &[Attr]) {
        match tok {
            Token::Open { tag, attrs, .. } => (tag.as_str(), attrs.as_slice()),
            other => panic!("expected open tag, got {other:?}"),
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let toks = tokenize("<p>hello</p>");
        assert_eq!(
            toks,
            vec![
                Token::Open {
                    tag: "p".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text("hello".into()),
                Token::Close { tag: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_valueless() {
        let toks = tokenize(r#"<input type="text" name='user' required maxlength=10>"#);
        let (tag, attrs) = open(&toks[0]);
        assert_eq!(tag, "input");
        assert_eq!(
            attrs,
            &[
                Attr {
                    name: "type".into(),
                    value: "text".into()
                },
                Attr {
                    name: "name".into(),
                    value: "user".into()
                },
                Attr {
                    name: "required".into(),
                    value: "".into()
                },
                Attr {
                    name: "maxlength".into(),
                    value: "10".into()
                },
            ]
        );
    }

    #[test]
    fn self_closing_and_case_folding() {
        let toks = tokenize("<BR/><IMG SRC='x.png'/>");
        assert!(matches!(
            &toks[0],
            Token::Open { tag, self_closing: true, .. } if tag == "br"
        ));
        let (tag, attrs) = open(&toks[1]);
        assert_eq!(tag, "img");
        assert_eq!(attrs[0].name, "src");
    }

    #[test]
    fn comments() {
        let toks = tokenize("a<!-- secret -->b");
        assert_eq!(
            toks,
            vec![
                Token::Text("a".into()),
                Token::Comment(" secret ".into()),
                Token::Text("b".into()),
            ]
        );
    }

    #[test]
    fn unterminated_comment() {
        let toks = tokenize("<!-- never ends");
        assert_eq!(toks, vec![Token::Comment(" never ends".into())]);
    }

    #[test]
    fn doctype_skipped() {
        let toks = tokenize("<!DOCTYPE html><p>x</p>");
        assert!(matches!(&toks[0], Token::Open { tag, .. } if tag == "p"));
    }

    #[test]
    fn script_is_raw_text() {
        let toks = tokenize(r#"<script>if (a < b) { x("<p>"); }</script>"#);
        assert_eq!(toks.len(), 3);
        assert!(matches!(&toks[1], Token::Text(t) if t.contains("a < b")));
        assert!(matches!(&toks[2], Token::Close { tag } if tag == "script"));
    }

    #[test]
    fn unclosed_script_swallows_rest() {
        let toks = tokenize("<script>var x = 1;");
        assert!(matches!(&toks[1], Token::Text(t) if t.contains("var x")));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b and c < d");
        assert_eq!(toks, vec![Token::Text("a < b and c < d".into())]);
    }

    #[test]
    fn entity_decoding() {
        assert_eq!(
            decode_entities("a &amp;&lt;&gt;&quot;&#39; b"),
            "a &<>\"' b"
        );
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("x&nbsp;y"), "x y");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let toks = tokenize("<p>  \n\t </p>");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn close_tag_with_spaces() {
        let toks = tokenize("<div>x</div >");
        assert!(matches!(toks.last().unwrap(), Token::Close { tag } if tag == "div"));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn display_round_trip_for_open_tag() {
        let toks = tokenize(r#"<a href="http://x.com/">"#);
        assert_eq!(toks[0].to_string(), r#"<a href="http://x.com/">"#);
    }
}
