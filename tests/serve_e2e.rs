//! Integration: the threaded and evented serving engines answer identical
//! verdicts under concurrent mixed traffic (CHECK, batched CHECKN, ADD,
//! STATS), and the evented engine's admission control sheds with `BUSY`
//! instead of queueing when its in-flight budget is saturated.

use freephish::core::extension::{KnownSetChecker, VerdictClient, VerdictServer};
use freephish::serve::{EventedServer, ServeConfig, ShardedIndex, UrlChecker, Verdict};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seeded_entries(n: usize) -> Vec<(String, f64)> {
    (0..n)
        .map(|i| (format!("https://evil{i}.weebly.com/login"), 0.9))
        .collect()
}

#[test]
fn both_engines_serve_identical_verdicts_under_concurrent_mixed_load() {
    const CLIENTS: usize = 32;
    let entries = seeded_entries(64);
    let threaded_checker = Arc::new(KnownSetChecker::new(entries.clone()));
    let evented_index = ShardedIndex::with_default_shards();
    evented_index.publish(entries.clone());
    let mut threaded = VerdictServer::start(threaded_checker).unwrap();
    let mut evented = EventedServer::start(Arc::new(evented_index)).unwrap();
    let t_addr = threaded.addr();
    let e_addr = evented.addr();

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let entries = entries.clone();
        handles.push(std::thread::spawn(move || {
            let tc = VerdictClient::with_seed(t_addr, c as u64);
            let ec = VerdictClient::with_seed(e_addr, c as u64);

            // Single CHECKs over a mix of seeded and unknown URLs.
            let probe: Vec<String> = (0..8)
                .map(|i| entries[(c * 7 + i * 3) % entries.len()].0.clone())
                .chain((0..4).map(|i| format!("https://clean{c}-{i}.wixsite.com/")))
                .collect();
            for url in &probe {
                let tv = tc.check(url).unwrap();
                let ev = ec.check(url).unwrap();
                assert_eq!(
                    tv.is_phishing(),
                    ev.is_phishing(),
                    "CHECK disagrees on {url}"
                );
            }

            // Batched checks: the evented engine answers over binary
            // CHECKN, the threaded engine falls back to pipelined lines —
            // the verdicts must match anyway.
            let batch: Vec<String> = (0..16)
                .map(|i| entries[(c * 5 + i) % entries.len()].0.clone())
                .chain((0..4).map(|i| format!("https://batch{c}-{i}.weebly.com/")))
                .collect();
            let tb = tc.check_batch_strict(&batch).unwrap();
            let eb = ec.check_batch_strict(&batch).unwrap();
            assert_eq!(tb.len(), batch.len());
            for ((url, tv), ev) in batch.iter().zip(&tb).zip(&eb) {
                assert_eq!(
                    tv.is_phishing(),
                    ev.is_phishing(),
                    "CHECKN disagrees on {url}"
                );
            }

            // An ADD unique to this client, pushed to both engines.
            let mine = format!("https://added-by-{c}.weebly.com/");
            tc.add(&mine, 0.91).unwrap();
            ec.add(&mine, 0.91).unwrap();
            assert!(tc.check(&mine).unwrap().is_phishing());
            assert!(ec.check(&mine).unwrap().is_phishing());

            // STATS scrapes from both engines mid-storm.
            assert!(tc.stats().unwrap().as_object().is_some());
            assert!(ec.stats().unwrap().as_object().is_some());
            mine
        }));
    }
    let added: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // After the storm both engines agree on every seeded and added URL.
    let tc = VerdictClient::new(t_addr);
    let ec = VerdictClient::new(e_addr);
    for (url, _) in &entries {
        assert!(tc.check(url).unwrap().is_phishing(), "{url}");
        assert!(ec.check(url).unwrap().is_phishing(), "{url}");
    }
    for url in &added {
        assert!(tc.check(url).unwrap().is_phishing(), "{url}");
        assert!(ec.check(url).unwrap().is_phishing(), "{url}");
    }

    // The evented engine actually served batches over the binary protocol.
    let snap = evented.metrics();
    assert!(snap.counter("serve_requests_total", &[("kind", "checkn")]) >= CLIENTS as u64);

    // Both engines shut down cleanly with every handler joined.
    threaded.shutdown();
    assert!(threaded.drain(Duration::from_secs(5)));
    evented.shutdown();
    assert!(evented.drain(Duration::from_secs(5)));
}

/// Read one `\n`-terminated line byte-by-byte off a raw stream.
fn read_line_raw(stream: &mut TcpStream) -> Vec<u8> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream
            .read(&mut byte)
            .expect("reply must arrive before the read timeout");
        assert!(n > 0, "server closed mid-line");
        if byte[0] == b'\n' {
            return line;
        }
        line.push(byte[0]);
    }
}

#[test]
fn saturated_budget_sheds_with_busy_not_a_hang() {
    // A checker that holds the only budget unit for two seconds.
    let slow = |_: &str| {
        std::thread::sleep(Duration::from_secs(2));
        Verdict::Safe(0.0)
    };
    let checker: Arc<dyn UrlChecker> = Arc::new(slow);
    let cfg = ServeConfig {
        workers: 2,
        max_inflight_urls: 1,
        ..ServeConfig::default()
    };
    let server = EventedServer::start_with(cfg, checker).unwrap();

    // The first connection lands on worker 0 (round-robin) and its CHECK
    // occupies the whole budget inside the slow checker.
    let mut a = TcpStream::connect(server.addr()).unwrap();
    a.write_all(b"CHECK https://slow.weebly.com/\n").unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The second connection lands on worker 1. Its CHECK cannot acquire
    // budget and must be shed immediately — a BUSY reply well before the
    // slow check completes, not a queue wait.
    let mut b = TcpStream::connect(server.addr()).unwrap();
    b.set_read_timeout(Some(Duration::from_millis(1200)))
        .unwrap();
    b.write_all(b"CHECK https://other.weebly.com/\n").unwrap();
    let started = Instant::now();
    let line = read_line_raw(&mut b);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "BUSY took {:?}",
        started.elapsed()
    );
    assert_eq!(line, b"BUSY", "{:?}", String::from_utf8_lossy(&line));
    assert!(server.metrics().counter("serve_shed_total", &[]) >= 1);

    // The admitted request still completes normally.
    a.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let line = read_line_raw(&mut a);
    assert!(
        line.starts_with(b"SAFE"),
        "{:?}",
        String::from_utf8_lossy(&line)
    );
}
