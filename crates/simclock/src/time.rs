//! Simulated time.
//!
//! All timestamps in the reproduction are [`SimTime`] values: seconds since
//! the start of the simulated measurement window. The paper reports response
//! times in `hh:mm`, so both [`SimTime`] and [`SimDuration`] know how to
//! format themselves that way.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in whole seconds since the simulation epoch.
///
/// The epoch is the start of the measurement window (the paper's November
/// 2022). `SimTime` is a plain wrapper so it can be ordered, hashed and used
/// as an event-queue key with no surprises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Construct from whole minutes since the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60)
    }

    /// Construct from whole hours since the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600)
    }

    /// Construct from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later (callers comparing independent observation streams may
    /// race by one polling interval).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The enclosing whole day index (0-based) of this instant.
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration in fractional hours; used for the coverage-vs-time figures.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Format as the paper's `hh:mm` notation (hours may exceed 24, e.g.
    /// `148:05` for just over six days).
    ///
    /// ```
    /// use freephish_simclock::SimDuration;
    /// assert_eq!(SimDuration::from_mins(51).as_hhmm(), "0:51");
    /// assert_eq!(SimDuration::from_hours(148).as_hhmm(), "148:00");
    /// ```
    pub fn as_hhmm(self) -> String {
        let total_mins = self.0 / 60;
        format!("{}:{:02}", total_mins / 60, total_mins % 60)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day_index();
        let rem = self.0 % 86_400;
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            d,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_hhmm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_hours(5) + SimDuration::from_mins(30);
        assert_eq!(t.as_secs(), 5 * 3600 + 1800);
        assert_eq!(t - SimTime::from_hours(5), SimDuration::from_mins(30));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(50);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(40));
    }

    #[test]
    fn hhmm_formatting() {
        assert_eq!(SimDuration::from_mins(51).as_hhmm(), "0:51");
        assert_eq!(SimDuration::from_mins(6 * 60 + 1).as_hhmm(), "6:01");
        // The paper reports e.g. 148:05 — hours beyond a day stay in hours.
        assert_eq!(SimDuration::from_mins(148 * 60 + 5).as_hhmm(), "148:05");
    }

    #[test]
    fn day_index() {
        assert_eq!(SimTime::from_hours(23).day_index(), 0);
        assert_eq!(SimTime::from_hours(24).day_index(), 1);
        assert_eq!(SimTime::from_days(7).day_index(), 7);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(2) + SimDuration::from_secs(3 * 3600 + 4 * 60 + 5);
        assert_eq!(t.to_string(), "d2+03:04:05");
        assert_eq!(SimDuration::from_mins(90).to_string(), "1:30");
    }
}
