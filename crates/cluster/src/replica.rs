//! The follower side of replication: a background thread that keeps a
//! local store directory a byte-faithful replica of a primary's WAL.
//!
//! The replica's directory *is* its cursor. On every (re)connect it
//! recovers locally exactly the way [`freephish_store::Store::open`]
//! does — scan segments in order, truncate the first defective tail,
//! delete anything after it — and sends the resulting `(segment,
//! offset)` as its `HELLO` cursor. The primary then resumes from that
//! boundary without re-shipping completed segments, or bootstraps the
//! follower from a snapshot when compaction has moved past it. Every
//! shipped record's CRC32 is re-verified before a byte is written, so
//! a replica is exactly as trustworthy as a local recovery scan.
//!
//! The replica only mirrors files; serving is layered on top by
//! pointing a [`freephish_serve::IndexPublisher`] (or any
//! `TailFollower`) at the same directory, which is how a follower node
//! feeds its `ShardedIndex`. That keeps the durability contract
//! legible: **a follower serves whatever valid prefix of the
//! primary's history it has applied** — never torn data, possibly
//! stale data — and [`Replica::caught_up`] reports when the prefix
//! has reached the primary's tip.

use crate::source::list_indexed;
use crate::wire::{decode_repl, encode_repl, verify_record_frame, ReplCursor, ReplFrame};
use bytes::BytesMut;
use freephish_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use freephish_store::segment::{
    parse_segment_name, scan_segment, segment_file_name, SegmentWriter, SEGMENT_HEADER_LEN,
};
use freephish_store::snapshot::{
    fsync_dir, load_snapshot, parse_snapshot_name, snapshot_file_name, write_snapshot,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a follower replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Wait between reconnect attempts after a session drops.
    pub reconnect_backoff: Duration,
    /// Bound on each connect attempt.
    pub connect_timeout: Duration,
    /// Fdatasync the active segment every this many applied records
    /// (flushes happen at every tip regardless; an OS-buffered tail
    /// lost to a crash is simply re-fetched from the primary).
    pub sync_every_records: u64,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            reconnect_backoff: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(500),
            sync_every_records: 256,
        }
    }
}

struct ReplicaMetrics {
    registry: Registry,
    records_applied: Arc<Counter>,
    bytes_applied: Arc<Counter>,
    snapshots_applied: Arc<Counter>,
    reconnects: Arc<Counter>,
    sessions_resume: Arc<Counter>,
    sessions_bootstrap: Arc<Counter>,
    crc_failures: Arc<Counter>,
    lag_segments: Arc<Gauge>,
    lag_bytes: Arc<Gauge>,
    cursor_segment: Arc<Gauge>,
    cursor_offset: Arc<Gauge>,
    connected: Arc<Gauge>,
    catchup_seconds: Arc<Histogram>,
}

impl ReplicaMetrics {
    fn new() -> ReplicaMetrics {
        let registry = Registry::new();
        ReplicaMetrics {
            records_applied: registry.counter("cluster_replication_records_applied_total", &[]),
            bytes_applied: registry.counter("cluster_replication_bytes_applied_total", &[]),
            snapshots_applied: registry.counter("cluster_replication_snapshots_applied_total", &[]),
            reconnects: registry.counter("cluster_replication_reconnects_total", &[]),
            sessions_resume: registry
                .counter("cluster_replication_sessions_total", &[("mode", "resume")]),
            sessions_bootstrap: registry.counter(
                "cluster_replication_sessions_total",
                &[("mode", "bootstrap")],
            ),
            crc_failures: registry.counter("cluster_replication_crc_failures_total", &[]),
            lag_segments: registry.gauge("cluster_replication_lag_segments", &[]),
            lag_bytes: registry.gauge("cluster_replication_lag_bytes", &[]),
            cursor_segment: registry.gauge("cluster_replication_cursor_segment", &[]),
            cursor_offset: registry.gauge("cluster_replication_cursor_offset", &[]),
            connected: registry.gauge("cluster_replication_connected", &[]),
            catchup_seconds: registry.histogram("cluster_follower_catchup_seconds", &[]),
            registry,
        }
    }
}

struct Shared {
    dir: PathBuf,
    primary: SocketAddr,
    cfg: ReplicaConfig,
    stop: AtomicBool,
    caught_up: AtomicBool,
    metrics: ReplicaMetrics,
}

/// A live follower: one background thread mirroring `primary`'s WAL
/// into a local directory.
pub struct Replica {
    shared: Arc<Shared>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl Replica {
    /// Start replicating `primary` into `dir` (created if absent).
    pub fn start(
        primary: SocketAddr,
        dir: impl AsRef<Path>,
        cfg: ReplicaConfig,
    ) -> std::io::Result<Replica> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let shared = Arc::new(Shared {
            dir,
            primary,
            cfg,
            stop: AtomicBool::new(false),
            caught_up: AtomicBool::new(false),
            metrics: ReplicaMetrics::new(),
        });
        let s = shared.clone();
        let handle = std::thread::Builder::new()
            .name("repl-follower".to_string())
            .spawn(move || follower_loop(&s))?;
        Ok(Replica {
            shared,
            handle: parking_lot::Mutex::new(Some(handle)),
        })
    }

    /// The replica directory (point a `TailFollower` here to serve it).
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// True while the local prefix matches the primary's last reported
    /// tip. Goes false the moment new primary appends are observed and
    /// true again once they are applied.
    pub fn caught_up(&self) -> bool {
        self.shared.caught_up.load(Ordering::SeqCst)
    }

    /// Snapshot of the `cluster_replication_*` metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// Total records applied across all sessions.
    pub fn records_applied(&self) -> u64 {
        self.shared.metrics.records_applied.get()
    }

    /// Stop the follower thread; idempotent. Takes `&self` so a replica
    /// shared behind an `Arc` (e.g. with ops-plane closures) can still
    /// be stopped deterministically.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Recover the local replica directory the way `Store::open` would:
/// scan segments in index order, truncate the first defective tail,
/// delete everything after it. Returns the resume cursor.
pub fn recover_local(dir: &Path) -> std::io::Result<ReplCursor> {
    let snapshot_seq = list_indexed(dir, parse_snapshot_name)?
        .into_iter()
        .rev()
        .find(|&seq| {
            load_snapshot(&dir.join(snapshot_file_name(seq)), seq)
                .ok()
                .flatten()
                .is_some()
        });
    let mut tail: Option<(u32, u64)> = None;
    let mut defective = false;
    for seg in list_indexed(dir, parse_segment_name)? {
        let path = dir.join(segment_file_name(seg));
        if defective {
            std::fs::remove_file(&path)?;
            continue;
        }
        let scan = scan_segment(&path)?;
        if !scan.header_ok {
            std::fs::remove_file(&path)?;
            defective = true;
            continue;
        }
        if scan.torn.is_some() {
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.good_len)?;
            defective = true;
        }
        tail = Some((seg, scan.good_len));
    }
    fsync_dir(dir)?;
    Ok(ReplCursor {
        snapshot_seq,
        segment: tail.map(|(s, _)| s),
        offset: tail.map(|(_, o)| o).unwrap_or(0),
    })
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg)
}

fn follower_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match run_session(shared) {
            Ok(()) => return, // clean shutdown
            Err(e) => {
                shared.metrics.connected.set(0);
                shared.caught_up.store(false, Ordering::SeqCst);
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                freephish_obs::debug(
                    "cluster",
                    format!("replication session lost ({e}); reconnecting"),
                );
                shared.metrics.reconnects.inc();
                std::thread::sleep(shared.cfg.reconnect_backoff);
            }
        }
    }
}

/// Per-session apply state.
struct Applier<'a> {
    shared: &'a Shared,
    writer: Option<SegmentWriter>,
    /// Primary tip from the last `TIP` frame.
    tip: Option<(u32, u64)>,
    /// First frame decides the session mode (resume vs bootstrap).
    first_frame: bool,
    session_start: Instant,
    caught_up_recorded: bool,
    records_since_sync: u64,
}

impl Applier<'_> {
    fn cursor_now(&self) -> Option<(u32, u64)> {
        self.writer.as_ref().map(|w| (w.index(), w.len()))
    }

    fn note_session_mode(&mut self, bootstrap: bool) {
        if self.first_frame {
            self.first_frame = false;
            if bootstrap {
                self.shared.metrics.sessions_bootstrap.inc();
            } else {
                self.shared.metrics.sessions_resume.inc();
            }
        }
    }

    fn update_lag(&mut self) {
        let m = &self.shared.metrics;
        let (Some((tip_seg, tip_off)), Some((cur_seg, cur_off))) = (self.tip, self.cursor_now())
        else {
            return;
        };
        let lag_segments = i64::from(tip_seg) - i64::from(cur_seg);
        m.lag_segments.set(lag_segments.max(0));
        // Byte lag is exact within a segment; across segments we report
        // the tip segment's fill as a lower bound.
        let lag_bytes = if tip_seg == cur_seg {
            tip_off.saturating_sub(cur_off)
        } else {
            tip_off.saturating_sub(SEGMENT_HEADER_LEN)
        };
        m.lag_bytes.set(lag_bytes.min(i64::MAX as u64) as i64);
        let caught = lag_segments <= 0 && lag_bytes == 0;
        self.shared.caught_up.store(caught, Ordering::SeqCst);
        if caught && !self.caught_up_recorded {
            self.caught_up_recorded = true;
            m.catchup_seconds
                .record(self.session_start.elapsed().as_secs_f64());
        }
    }

    fn flush(&mut self, force_sync: bool) -> std::io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            if force_sync || self.records_since_sync >= self.shared.cfg.sync_every_records {
                w.sync()?;
                self.records_since_sync = 0;
            } else {
                w.flush()?;
            }
        }
        Ok(())
    }

    fn apply(&mut self, frame: ReplFrame) -> std::io::Result<()> {
        let dir = &self.shared.dir;
        let m = &self.shared.metrics;
        match frame {
            ReplFrame::Snapshot {
                seq,
                first_segment: _,
                body,
            } => {
                self.note_session_mode(true);
                // A bootstrap replaces local history wholesale: install
                // the image, then drop every local segment — the
                // primary re-ships the live ones next.
                self.writer = None;
                write_snapshot(dir, seq, &body)?;
                for seg in list_indexed(dir, parse_segment_name)? {
                    std::fs::remove_file(dir.join(segment_file_name(seg)))?;
                }
                for old in list_indexed(dir, parse_snapshot_name)? {
                    if old != seq {
                        std::fs::remove_file(dir.join(snapshot_file_name(old)))?;
                    }
                }
                fsync_dir(dir)?;
                m.snapshots_applied.inc();
            }
            ReplFrame::Reset { first_segment: _ } => {
                self.note_session_mode(true);
                self.writer = None;
                for seg in list_indexed(dir, parse_segment_name)? {
                    std::fs::remove_file(dir.join(segment_file_name(seg)))?;
                }
                for old in list_indexed(dir, parse_snapshot_name)? {
                    std::fs::remove_file(dir.join(snapshot_file_name(old)))?;
                }
                fsync_dir(dir)?;
            }
            ReplFrame::Segment { index } => {
                self.note_session_mode(false);
                self.flush(true)?;
                let path = dir.join(segment_file_name(index));
                self.writer = Some(if path.exists() {
                    // Resuming our own tail: recovery already truncated
                    // it to a record boundary.
                    let len = std::fs::metadata(&path)?.len();
                    SegmentWriter::open_append(dir, index, len)?
                } else {
                    SegmentWriter::create(dir, index)?
                });
                let w = self.writer.as_ref().expect("just set");
                m.cursor_segment.set(i64::from(w.index()));
                m.cursor_offset.set(w.len().min(i64::MAX as u64) as i64);
            }
            ReplFrame::Record {
                segment,
                end_offset,
                frame,
            } => {
                self.note_session_mode(false);
                let payload = verify_record_frame(&frame).map_err(|e| {
                    m.crc_failures.inc();
                    invalid(e)
                })?;
                let Some(w) = self.writer.as_mut() else {
                    return Err(invalid("RECORD before SEGMENT".to_string()));
                };
                if segment != w.index() {
                    return Err(invalid(format!(
                        "record for segment {segment} while appending {}",
                        w.index()
                    )));
                }
                if w.len() + frame.len() as u64 != end_offset {
                    return Err(invalid(format!(
                        "record ends at {end_offset} but local tail is at {}",
                        w.len()
                    )));
                }
                let framed = w.append(payload);
                self.records_since_sync += 1;
                m.records_applied.inc();
                m.bytes_applied.add(framed);
                m.cursor_offset.set(w.len().min(i64::MAX as u64) as i64);
                self.update_lag();
            }
            ReplFrame::Tip { segment, offset } => {
                self.tip = Some((segment, offset));
                self.flush(false)?;
                self.update_lag();
            }
            ReplFrame::Error(msg) => {
                return Err(invalid(format!("primary refused session: {msg}")));
            }
            ReplFrame::Hello(_) => {
                return Err(invalid("unexpected HELLO from primary".to_string()));
            }
        }
        Ok(())
    }
}

/// One connect → hello → apply-until-drop session. `Ok(())` only on
/// clean shutdown.
fn run_session(shared: &Shared) -> std::io::Result<()> {
    let cursor = recover_local(&shared.dir)?;
    let mut stream = TcpStream::connect_timeout(&shared.primary, shared.cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut out = BytesMut::new();
    encode_repl(&mut out, &ReplFrame::Hello(cursor)).map_err(invalid)?;
    stream.write_all(&out)?;
    shared.metrics.connected.set(1);
    if let Some(seg) = cursor.segment {
        shared.metrics.cursor_segment.set(i64::from(seg));
        shared
            .metrics
            .cursor_offset
            .set(cursor.offset.min(i64::MAX as u64) as i64);
    }

    let mut applier = Applier {
        shared,
        writer: None,
        tip: None,
        first_frame: true,
        session_start: Instant::now(),
        caught_up_recorded: false,
        records_since_sync: 0,
    };
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        while let Some(frame) = decode_repl(&mut buf).map_err(invalid)? {
            applier.apply(frame)?;
        }
        if shared.stop.load(Ordering::SeqCst) {
            applier.flush(true)?;
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                applier.flush(true)?;
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "primary closed",
                ));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                applier.flush(false)?;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                applier.flush(true)?;
                return Err(e);
            }
        }
    }
}
