//! Cross-engine equivalence: a verdict resolved through the tiered
//! pipeline is the SAME number the offline model produces.
//!
//! The tiered resolver classifies residue as microbatches on the
//! `freephish-par` pool, and both serving engines front it over different
//! wire protocols. None of that is allowed to perturb a score:
//!
//! * the settled resolver verdict for every miss is bit-identical to a
//!   direct [`AugmentedStackModel::score_snapshot`] call on the same
//!   snapshot (`f64::to_bits` equality, not epsilon);
//! * the evented engine's binary protocol carries those bits to a client
//!   unchanged;
//! * the threaded engine's line protocol agrees at its documented
//!   4-decimal quantization.
//!
//! `scripts/ci.sh` runs this suite twice — `FREEPHISH_THREADS=1` and the
//! host default — so the bit-equality assertions also prove the
//! microbatch scoring is deterministic across pool widths.
//!
//! [`AugmentedStackModel::score_snapshot`]: freephish_core::models::augmented::AugmentedStackModel

use freephish_core::extension::{
    KnownSetChecker, UrlChecker, Verdict, VerdictClient, VerdictServer,
};
use freephish_core::groundtruth::{build, GroundTruthConfig};
use freephish_core::resolver::{
    ManualClock, MapFetcher, ResolverModels, TieredResolver, TieredResolverConfig,
};
use freephish_serve::EventedServer;
use freephish_urlparse::Url;
use std::sync::Arc;
use std::time::Duration;

/// The held-out miss corpus: never in the index, all fetchable.
fn miss_corpus() -> Vec<(String, String)> {
    build(&GroundTruthConfig {
        n_phish: 24,
        n_benign: 40,
        seed: 0xE0_1A7E,
    })
    .into_iter()
    .map(|s| (s.site.url, s.site.html))
    .collect()
}

/// A warm resolver with every miss settled through tier 2, plus the
/// offline scores it must agree with. Cutoff 0 disables the confident-safe
/// wave-through so every URL takes the full classify path.
fn settled() -> (Arc<TieredResolver>, Vec<(String, f64)>, f64) {
    let cfg = TieredResolverConfig::default();
    let sites = miss_corpus();
    let fetcher = Arc::new(MapFetcher::new());
    for (url, html) in &sites {
        fetcher.insert(url, html);
    }
    let models = Arc::new(ResolverModels::train(&build(&cfg.corpus), &cfg).with_cutoff(0.0));
    let resolver = TieredResolver::with_models(
        Arc::new(KnownSetChecker::new(Vec::new())),
        fetcher,
        Arc::new(ManualClock::new()),
        models.clone(),
        cfg.clone(),
    );
    for (url, _) in &sites {
        let _ = resolver.check(url); // provisional; enqueues classification
    }
    assert!(
        resolver.drain(Duration::from_secs(60)),
        "classify queue must drain"
    );
    let expected: Vec<(String, f64)> = sites
        .iter()
        .map(|(url, html)| {
            let parsed = Url::parse(url).expect("generated URLs parse");
            (url.clone(), models.stack().score_snapshot(&parsed, html))
        })
        .collect();
    (resolver, expected, cfg.threshold)
}

#[test]
fn settled_verdicts_are_bit_identical_to_offline_scores() {
    let (resolver, expected, threshold) = settled();
    let urls: Vec<String> = expected.iter().map(|(u, _)| u.clone()).collect();
    let verdicts = resolver.check_many(&urls);
    for ((url, offline), verdict) in expected.iter().zip(&verdicts) {
        assert_eq!(
            verdict.is_phishing(),
            *offline >= threshold,
            "{url}: tier disposition disagrees with the offline model"
        );
        assert_eq!(
            verdict.score().to_bits(),
            offline.to_bits(),
            "{url}: settled score {} != offline {offline}",
            verdict.score()
        );
    }
    // Settling happened exactly once per URL — the second pass above was
    // pure tier-0 / negative-cache, no re-classification.
    let snap = resolver.metrics_snapshot();
    assert_eq!(
        snap.counter("resolver_classified_total", &[]),
        expected.len() as u64
    );
    resolver.shutdown();
}

#[test]
fn evented_binary_protocol_carries_offline_bits_unchanged() {
    let (resolver, expected, threshold) = settled();
    let mut engine =
        EventedServer::start(resolver.clone() as Arc<dyn UrlChecker>).expect("start evented");
    let client = VerdictClient::new(engine.addr());
    let urls: Vec<String> = expected.iter().map(|(u, _)| u.clone()).collect();
    let verdicts = client.check_batch_strict(&urls).expect("binary CHECKN");
    for ((url, offline), verdict) in expected.iter().zip(&verdicts) {
        assert_eq!(verdict.is_phishing(), *offline >= threshold, "{url}");
        assert_eq!(
            verdict.score().to_bits(),
            offline.to_bits(),
            "{url}: binary wire score {} != offline {offline}",
            verdict.score()
        );
    }
    engine.shutdown();
    assert!(engine.drain(Duration::from_secs(5)));
    resolver.shutdown();
}

#[test]
fn threaded_line_protocol_agrees_at_its_quantization() {
    let (resolver, expected, threshold) = settled();
    let mut server =
        VerdictServer::start(resolver.clone() as Arc<dyn UrlChecker>).expect("start threaded");
    let client = VerdictClient::new(server.addr());
    let urls: Vec<String> = expected.iter().map(|(u, _)| u.clone()).collect();
    // The threaded engine refuses the binary handshake; the client falls
    // back to pipelined lines, whose scores are printed at 4 decimals.
    let verdicts = client.check_batch_strict(&urls).expect("line CHECK batch");
    for ((url, offline), verdict) in expected.iter().zip(&verdicts) {
        assert_eq!(verdict.is_phishing(), *offline >= threshold, "{url}");
        let quantized: f64 = format!("{offline:.4}").parse().unwrap();
        assert_eq!(
            verdict.score().to_bits(),
            quantized.to_bits(),
            "{url}: line wire score {} != quantized offline {quantized}",
            verdict.score()
        );
    }
    server.shutdown();
    server.drain(Duration::from_secs(5));
    resolver.shutdown();
}

#[test]
fn verdict_enum_threshold_convention_matches_resolver() {
    // Guard the convention the equivalence proofs above lean on: the
    // resolver turns a score into Phishing iff score >= threshold.
    assert!(Verdict::Phishing(0.9).is_phishing());
    assert!(!Verdict::Safe(0.1).is_phishing());
}
