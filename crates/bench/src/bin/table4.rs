//! Table 4: per-FWB coverage and response times of the six countermeasures
//! (hosting domain, social platform, PhishTank, OpenPhish, GSB, eCrimeX).

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::{fmt_duration_opt, fmt_pct, TableWriter};
use freephish_core::analysis::{table4, CoverageStat};

fn pair(s: &CoverageStat) -> String {
    if s.covered == 0 {
        "0% N/A".to_string()
    } else {
        format!("{} {}", fmt_pct(s.coverage), fmt_duration_opt(s.median))
    }
}

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e4);
    let rows = table4(&m.observations);

    println!("\nTable 4 — per-FWB coverage (and median speed) of each countermeasure\n");
    let mut t = TableWriter::new(&[
        "Domains",
        "URLs",
        "Domain",
        "Platform",
        "PhishTank",
        "OpenPhish",
        "GSB",
        "eCrimeX",
    ]);
    let mut json_rows = Vec::new();
    for r in &rows {
        t.row(vec![
            r.fwb.to_string(),
            r.urls.to_string(),
            pair(&r.domain),
            pair(&r.platform),
            pair(&r.phishtank),
            pair(&r.openphish),
            pair(&r.gsb),
            pair(&r.ecrimex),
        ]);
        json_rows.push(serde_json::json!({
            "fwb": r.fwb.to_string(),
            "urls": r.urls,
            "domain": { "coverage": r.domain.coverage, "median_secs": r.domain.median.map(|d| d.as_secs()) },
            "platform": { "coverage": r.platform.coverage, "median_secs": r.platform.median.map(|d| d.as_secs()) },
            "phishtank": { "coverage": r.phishtank.coverage, "median_secs": r.phishtank.median.map(|d| d.as_secs()) },
            "openphish": { "coverage": r.openphish.coverage, "median_secs": r.openphish.median.map(|d| d.as_secs()) },
            "gsb": { "coverage": r.gsb.coverage, "median_secs": r.gsb.median.map(|d| d.as_secs()) },
            "ecrimex": { "coverage": r.ecrimex.coverage, "median_secs": r.ecrimex.median.map(|d| d.as_secs()) },
        }));
    }
    t.print();
    println!("\nPaper shape: Weebly/000webhost/Wix are removed most and fastest by");
    println!("their hosts; Google properties and Sharepoint lag; PhishTank has no");
    println!("coverage at all for GoDaddySites and hpage.");

    write_json(
        "table4",
        &serde_json::json!({ "experiment": "table4", "scale": scale, "rows": json_rows }),
    );
}
