//! Exporters over [`MetricsSnapshot`]: Prometheus-style text exposition
//! and a `serde_json::Value` tree for embedding in experiment JSON.

use crate::registry::{MetricKey, MetricsSnapshot};
use serde_json::{json, Map, Value};

/// One-line `# HELP` text for a metric name. Known families get real
/// descriptions; everything else gets a generic line (the exposition
/// format wants HELP present, not necessarily prose-perfect).
fn help_for(name: &str) -> &'static str {
    match name {
        "serve_requests_total" => "Requests executed by the serving engine, by command.",
        "serve_urls_total" => "URLs checked by the serving engine.",
        "serve_shed_total" => "Requests shed with BUSY by admission control.",
        "serve_connections_active" => "Currently open client connections.",
        "serve_generation" => "Index generation currently being served.",
        "serve_service_seconds" => "Per-batch service time of the lookup stage.",
        "serve_window_latency_us" => {
            "Rolling windowed latency quantiles per command, microseconds."
        }
        "serve_worker_utilization" => "Per-worker busy fraction in basis points (0-10000).",
        "ops_scrape_seconds" => "Time spent serving one ops-plane HTTP request.",
        "ops_requests_total" => "Ops-plane HTTP requests served, by path.",
        "obs_events_suppressed_total" => "Events dropped below the severity filter.",
        "obs_events_evicted_total" => "Events evicted from the full event ring.",
        "trace_requests_total" => "Requests that started a trace.",
        "trace_sampled_total" => "Traces retained by periodic sampling.",
        "trace_slow_captured_total" => "Traces retained by slow capture (total > rolling p99).",
        "store_appends_total" => "Records appended to the durable store.",
        "store_fsyncs_total" => "fsync calls issued by the durable store.",
        "store_append_seconds" => "Latency of one durable append (frame + buffer).",
        "store_fsync_seconds" => "Latency of one fsync.",
        _ => "freephish metric.",
    }
}

/// Render a snapshot in the Prometheus text exposition format. Each
/// metric family gets `# HELP` and `# TYPE` lines; histograms emit the
/// conventional `_bucket{le=...}` / `_sum` / `_count` series (empty
/// buckets elided, `+Inf` always present).
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for (key, value) in &snapshot.counters {
        if key.name != last_name {
            out.push_str(&format!("# HELP {} {}\n", key.name, help_for(&key.name)));
            out.push_str(&format!("# TYPE {} counter\n", key.name));
            last_name = &key.name;
        }
        out.push_str(&format!("{} {}\n", key.render(), value));
    }
    last_name = "";
    for (key, value) in &snapshot.gauges {
        if key.name != last_name {
            out.push_str(&format!("# HELP {} {}\n", key.name, help_for(&key.name)));
            out.push_str(&format!("# TYPE {} gauge\n", key.name));
            last_name = &key.name;
        }
        out.push_str(&format!("{} {}\n", key.render(), value));
    }
    last_name = "";
    for (key, hist) in &snapshot.histograms {
        if key.name != last_name {
            out.push_str(&format!("# HELP {} {}\n", key.name, help_for(&key.name)));
            out.push_str(&format!("# TYPE {} histogram\n", key.name));
            last_name = &key.name;
        }
        for (ub, cum) in hist.cumulative() {
            if ub.is_finite() {
                out.push_str(&format!(
                    "{} {}\n",
                    bucket_key(key, &format_bound(ub)).render(),
                    cum
                ));
            }
        }
        out.push_str(&format!(
            "{} {}\n",
            bucket_key(key, "+Inf").render(),
            hist.count
        ));
        let mut sum_key = key.clone();
        sum_key.name = format!("{}_sum", key.name);
        out.push_str(&format!("{} {}\n", sum_key.render(), hist.sum));
        let mut count_key = key.clone();
        count_key.name = format!("{}_count", key.name);
        out.push_str(&format!("{} {}\n", count_key.render(), hist.count));
    }
    out
}

fn bucket_key(key: &MetricKey, le: &str) -> MetricKey {
    let mut k = key.clone();
    k.name = format!("{}_bucket", key.name);
    k.labels.push(("le".to_string(), le.to_string()));
    k
}

fn format_bound(ub: f64) -> String {
    // Compact but unambiguous: enough digits to round-trip bucket bounds.
    format!("{ub:.6e}")
}

/// Render a snapshot as a JSON tree:
///
/// ```json
/// {
///   "counters":   { "name{k=\"v\"}": 12, ... },
///   "gauges":     { ... },
///   "histograms": { "name": {"count":…,"sum":…,"min":…,"max":…,
///                            "mean":…,"p50":…,"p90":…,"p99":…}, ... }
/// }
/// ```
///
/// Histogram buckets are summarized to quantiles — experiment JSON wants
/// the shape of the distribution, not 256 bucket counts.
pub fn to_json(snapshot: &MetricsSnapshot) -> Value {
    let mut counters = Map::new();
    for (key, value) in &snapshot.counters {
        counters.insert(key.render(), json!(*value));
    }
    let mut gauges = Map::new();
    for (key, value) in &snapshot.gauges {
        gauges.insert(key.render(), json!(*value));
    }
    let mut histograms = Map::new();
    for (key, hist) in &snapshot.histograms {
        histograms.insert(
            key.render(),
            json!({
                "count": hist.count,
                "sum": finite_or_null(hist.sum),
                "min": finite_or_null(hist.min),
                "max": finite_or_null(hist.max),
                "mean": hist.mean().map(finite_or_null).unwrap_or(Value::Null),
                "p50": quantile_json(hist, 0.5),
                "p90": quantile_json(hist, 0.9),
                "p99": quantile_json(hist, 0.99),
                "p999": quantile_json(hist, 0.999),
            }),
        );
    }
    json!({
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    })
}

fn quantile_json(hist: &crate::histogram::HistogramSnapshot, q: f64) -> Value {
    hist.quantile(q).map(finite_or_null).unwrap_or(Value::Null)
}

fn finite_or_null(v: f64) -> Value {
    if v.is_finite() {
        json!(v)
    } else {
        Value::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("requests_total", &[("kind", "check")]).add(7);
        r.counter("requests_total", &[("kind", "stats")]).add(2);
        r.gauge("connections_active", &[]).set(3);
        let h = r.histogram("latency_seconds", &[]);
        for v in [0.001, 0.002, 0.004, 0.1] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_text_shape() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# HELP requests_total"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{kind=\"check\"} 7"));
        assert!(text.contains("# HELP latency_seconds"));
        assert!(text.contains("# TYPE connections_active gauge"));
        assert!(text.contains("connections_active 3"));
        assert!(text.contains("# TYPE latency_seconds histogram"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("latency_seconds_count 4"));
        // Cumulative bucket counts never decrease down the series.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("latency_seconds_bucket"))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "non-monotone bucket series: {line}");
            last = n;
        }
    }

    #[test]
    fn json_shape() {
        let v = to_json(&sample());
        assert_eq!(v["counters"]["requests_total{kind=\"check\"}"], 7);
        assert_eq!(v["gauges"]["connections_active"], 3);
        let h = &v["histograms"]["latency_seconds"];
        assert_eq!(h["count"], 4);
        assert_eq!(h["min"], 0.001);
        assert_eq!(h["max"], 0.1);
        assert!(h["p50"].as_f64().unwrap() >= 0.001);
        assert!(h["p99"].as_f64().unwrap() <= 0.1);
    }

    #[test]
    fn hostile_label_values_stay_on_one_line() {
        let r = Registry::new();
        r.counter("hits_total", &[("url", "https://x/\"a\"\\b\nc")])
            .inc();
        let text = to_prometheus(&r.snapshot());
        // One HELP, one TYPE, one sample line — the newline in the label
        // value must not split the sample.
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("url=\"https://x/\\\"a\\\"\\\\b\\nc\""));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let s = MetricsSnapshot::empty();
        assert_eq!(to_prometheus(&s), "");
        let v = to_json(&s);
        assert!(v["counters"].as_object().unwrap().is_empty());
    }
}
