//! Bounded structured-event log with severity filtering.
//!
//! Events that pass the severity filter are echoed to stderr and retained
//! in a bounded ring buffer (oldest evicted first); events below it are
//! counted and dropped. The filter comes from the `FREEPHISH_LOG`
//! environment variable (`off`, `error`, `warn`, `info`, `debug`,
//! `trace`); the default is `warn`, so instrumented library code — and
//! the test suite — stays silent unless something is actually wrong or
//! the operator opts in with `FREEPHISH_LOG=info`.

use freephish_simclock::SimTime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Event severity, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Finest-grained tracing.
    Trace,
    /// Development diagnostics.
    Debug,
    /// Operational progress.
    Info,
    /// Something degraded but handled.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Short uppercase tag for rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Parse a filter spec; `None` for unrecognized values and `off`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (per log).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`"harness"`, `"extension"`, `"pipeline"`...).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Simulated time of the domain occurrence, when there is one.
    pub sim_time: Option<SimTime>,
}

impl Event {
    /// Render one line, `[freephish][LEVEL][target] message (sim t)`.
    pub fn render(&self) -> String {
        match self.sim_time {
            Some(t) => format!(
                "[freephish][{}][{}] {} (sim {})",
                self.level.as_str(),
                self.target,
                self.message,
                t
            ),
            None => format!(
                "[freephish][{}][{}] {}",
                self.level.as_str(),
                self.target,
                self.message
            ),
        }
    }
}

/// The bounded event log.
pub struct EventLog {
    /// Minimum retained severity; `None` = everything off.
    filter: Option<Level>,
    /// Echo passing events to stderr.
    echo: bool,
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    suppressed: AtomicU64,
    evicted: AtomicU64,
}

impl EventLog {
    /// A log with the given retention capacity and the filter taken from
    /// `FREEPHISH_LOG` (default `warn`), echoing to stderr.
    pub fn from_env(capacity: usize) -> EventLog {
        let filter = match std::env::var("FREEPHISH_LOG") {
            Ok(s) if s.trim().eq_ignore_ascii_case("off") => None,
            Ok(s) => Level::parse(&s).or(Some(Level::Warn)),
            Err(_) => Some(Level::Warn),
        };
        EventLog::with_filter(capacity, filter, true)
    }

    /// A log with an explicit filter (for tests and embedded use).
    pub fn with_filter(capacity: usize, filter: Option<Level>, echo: bool) -> EventLog {
        EventLog {
            filter,
            echo,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            seq: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// True when `level` passes the filter — use to skip building
    /// expensive messages.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        matches!(self.filter, Some(f) if level >= f)
    }

    /// Emit an event; below-filter events are counted and dropped.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        sim_time: Option<SimTime>,
    ) {
        if !self.enabled(level) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            level,
            target,
            message: message.into(),
            sim_time,
        };
        if self.echo {
            eprintln!("{}", event.render());
        }
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Events dropped by the severity filter.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Events evicted from the full ring.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Inject drop accounting into a metrics snapshot as
    /// `obs_events_suppressed_total` / `obs_events_evicted_total`, so a
    /// scraper can detect lossy logging without in-process calls.
    pub fn export_into(&self, snap: &mut crate::registry::MetricsSnapshot) {
        use crate::registry::MetricKey;
        snap.counters.insert(
            MetricKey::new("obs_events_suppressed_total", &[]),
            self.suppressed(),
        );
        snap.counters.insert(
            MetricKey::new("obs_events_evicted_total", &[]),
            self.evicted(),
        );
    }
}

/// The process-wide event log (capacity 1024, `FREEPHISH_LOG` filter).
pub fn global() -> &'static EventLog {
    static GLOBAL: OnceLock<EventLog> = OnceLock::new();
    GLOBAL.get_or_init(|| EventLog::from_env(1024))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_orders_levels() {
        let log = EventLog::with_filter(16, Some(Level::Info), false);
        assert!(log.enabled(Level::Error));
        assert!(log.enabled(Level::Info));
        assert!(!log.enabled(Level::Debug));
        log.emit(Level::Debug, "t", "dropped", None);
        log.emit(Level::Warn, "t", "kept", None);
        assert_eq!(log.suppressed(), 1);
        let events = log.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "kept");
    }

    #[test]
    fn off_filter_drops_everything() {
        let log = EventLog::with_filter(16, None, false);
        log.emit(Level::Error, "t", "even errors", None);
        assert!(log.recent().is_empty());
        assert_eq!(log.suppressed(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let log = EventLog::with_filter(3, Some(Level::Trace), false);
        for i in 0..5 {
            log.emit(Level::Info, "t", format!("e{i}"), None);
        }
        let events = log.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].message, "e2");
        assert_eq!(events[2].message, "e4");
        assert_eq!(log.evicted(), 2);
        // Sequence numbers keep counting across evictions.
        assert_eq!(events[2].seq, 4);
    }

    #[test]
    fn render_carries_sim_time() {
        let e = Event {
            seq: 0,
            level: Level::Warn,
            target: "pipeline",
            message: "site gone".into(),
            sim_time: Some(SimTime::from_mins(90)),
        };
        let line = e.render();
        assert!(line.contains("[WARN]"));
        assert!(line.contains("[pipeline]"));
        assert!(line.contains("site gone"));
        assert!(line.contains("sim "));
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse(" WARN "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nonsense"), None);
        assert_eq!(Level::parse("off"), None);
    }
}
