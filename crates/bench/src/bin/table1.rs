//! Table 1: median HTML code similarity between FWB phishing and benign
//! websites, per service, using the Appendix-A algorithm over generated
//! sites.
//!
//! Paper values: Weebly 79.4%, 000webhostapp 68.1%, Blogspot 63.8%,
//! Google Sites 72.4%, Wix 63.7%, Github.io 37.4%.

use freephish_bench::harness::write_json;
use freephish_bench::TableWriter;
use freephish_core::groundtruth;
use freephish_htmlparse::parse;
use freephish_simclock::stats::median_f64;
use freephish_simclock::{Rng64, Zipf};
use freephish_textsim::site_similarity;
use freephish_webgen::{FwbKind, PageSpec, BRANDS};

/// The six services Table 1 reports, with the paper's medians.
const TABLE1: &[(FwbKind, f64)] = &[
    (FwbKind::Weebly, 79.4),
    (FwbKind::Webhost000, 68.1),
    (FwbKind::Blogspot, 63.8),
    (FwbKind::GoogleSites, 72.4),
    (FwbKind::Wix, 63.7),
    (FwbKind::GithubIo, 37.4),
];

fn tags_for(spec: &PageSpec) -> Vec<String> {
    parse(&spec.generate().html).tag_elements()
}

fn main() {
    let pairs: usize = std::env::var("FREEPHISH_T1_PAIRS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mut rng = Rng64::new(0x7ab1e1);
    let zipf = Zipf::new(BRANDS.len(), 1.05);

    println!("Table 1 — website code similarity between FWB phishing and benign sites");
    println!("({pairs} phishing/benign pairs per service, Appendix-A algorithm)\n");
    let mut t = TableWriter::new(&["FWB", "Median similarity", "Paper"]);
    let mut json_rows = Vec::new();

    for &(kind, paper) in TABLE1 {
        // Serial RNG phase: draw every pair spec in the seed order, then
        // fan the pure generate/parse/similarity work across the pool —
        // `par_map` returns in input order, so the medians are identical
        // at every thread count.
        let specs: Vec<(PageSpec, PageSpec)> = (0..pairs)
            .map(|i| {
                let mut phish = groundtruth::phishing_spec(&mut rng, &zipf, i as u64);
                phish.fwb = kind;
                let mut benign = groundtruth::benign_spec(&mut rng, 0x8000 + i as u64);
                benign.fwb = kind;
                (phish, benign)
            })
            .collect();
        let sims = freephish_par::par_map(&specs, |(phish, benign)| {
            site_similarity(&tags_for(phish), &tags_for(benign))
        });
        let median = median_f64(&sims).unwrap();
        t.row(vec![
            kind.to_string(),
            format!("{median:.1}%"),
            format!("{paper:.1}%"),
        ]);
        json_rows.push(serde_json::json!({
            "fwb": kind.to_string(),
            "measured_median": median,
            "paper_median": paper,
        }));
    }
    t.print();
    println!("\nShape check: rigid builders (Weebly) at the top, hand-authored");
    println!("hosting (github.io) far below — code-similarity detectors are blind");
    println!("to template-built phishing.");

    write_json(
        "table1",
        &serde_json::json!({ "experiment": "table1", "rows": json_rows }),
    );
}
