//! Simulated social media platforms (Twitter and Facebook).
//!
//! The paper's streaming module polls the Twitter and CrowdTangle APIs
//! every ten minutes for new posts, extracts URLs, and later re-polls to see
//! whether the platform deleted the post (Section 4.4, Figure 9). This
//! crate provides the same observable surface against synthetic traffic:
//!
//! * [`post`] — posts with lure text containing a URL, unique ids, and a
//!   deletion timestamp once moderation acts;
//! * [`moderation`] — per-platform, per-hosting-class moderation behaviour
//!   calibrated to Table 3/Table 4's Platform columns and Figure 9 (Twitter
//!   acts faster and more often than Facebook; both act far less on FWB
//!   URLs than on self-hosted phishing);
//! * [`stream`] — the platform feed: publish posts, poll windows of new
//!   posts (the API the streaming module consumes), and query post status;
//! * [`warning`] — the Figure 10 click-time experience: Twitter's
//!   interstitial for flagged links, Facebook's silent deletion.
//!
//! The platform enum itself lives in `freephish-fwbsim::history::Platform`
//! (shared with the historical generator) and is re-exported here.

pub mod moderation;
pub mod post;
pub mod stream;
pub mod warning;

pub use freephish_fwbsim::history::Platform;
pub use moderation::ModerationProfile;
pub use post::{Post, PostId};
pub use stream::PlatformFeed;
pub use warning::{click, warning_page, ClickOutcome};
