//! The verdict wire protocols: the seed's line protocol and the batched
//! binary frame protocol.
//!
//! ## Line protocol (PR 3 and earlier)
//!
//! One UTF-8, `\n`-terminated line per request — `CHECK <url>`,
//! `ADD <url> <score>`, `STATS`, plus the `BINARY` upgrade handshake —
//! answered by `PHISHING <score>` / `SAFE <score>` / `OK <generation>` /
//! `STATS <json>` / `ERROR <msg>` / `BUSY` lines.
//!
//! ## Binary frame protocol (this PR)
//!
//! Length-prefixed frames supporting pipelining and *batched* checks:
//!
//! ```text
//! frame   := magic(0xFB) opcode(u8) len(u32 LE) payload(len bytes)
//! CHECK   (0x01): payload = url bytes (UTF-8)
//! CHECKN  (0x02): payload = count(u16 LE) then count × (len(u16 LE) url)
//! ADD     (0x03): payload = len(u16 LE) url score(f64 LE)
//! STATS   (0x04): payload empty
//! VERDICT (0x81): payload = kind(u8: 1 phishing, 0 safe) score(f64 LE)
//! VERDICTN(0x82): payload = count(u16 LE) then count × (kind score)
//! OK      (0x83): payload = generation(u64 LE)
//! STATSR  (0x84): payload = JSON bytes
//! ERROR   (0x85): payload = UTF-8 message
//! BUSY    (0x86): payload empty — request shed by admission control
//! ```
//!
//! The magic byte `0xFB` can never start a line-protocol request (those
//! begin with ASCII), so one port serves both: the evented server sniffs
//! the first buffered byte per frame. A client negotiates binary mode by
//! sending the line `BINARY\n`; an old line-only server answers `ERROR
//! ...`, which is the client's deterministic signal to fall back.
//!
//! Limits are part of the contract, not advisory: frames whose declared
//! payload exceeds [`MAX_FRAME_PAYLOAD`], batches over [`MAX_BATCH`]
//! URLs, and URLs over [`MAX_URL_BYTES`] are protocol errors. Torn
//! (incomplete) frames simply wait for more bytes.

use crate::verdict::Verdict;
use bytes::BytesMut;

/// First byte of every binary frame; never a valid line-protocol start.
pub const MAGIC: u8 = 0xFB;
/// Hard cap on a frame's declared payload length.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;
/// Maximum URLs in one `CHECKN` frame.
pub const MAX_BATCH: usize = 256;
/// Maximum bytes in one URL (the u16 length prefix's range).
pub const MAX_URL_BYTES: usize = u16::MAX as usize;
/// Bytes of frame header: magic + opcode + u32 length.
pub const FRAME_HEADER: usize = 6;
/// The line a client sends to negotiate binary mode.
pub const HANDSHAKE_LINE: &str = "BINARY";
/// The server's acceptance of the binary handshake.
pub const HANDSHAKE_OK: &str = "OK binary";

// ---------------------------------------------------------------------------
// Line protocol
// ---------------------------------------------------------------------------

/// Line-protocol request: `CHECK <url>`, `ADD <url> <score>`, `STATS`, or
/// the `BINARY` mode handshake.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for a verdict on a URL.
    Check(String),
    /// Record a URL as known phishing with the given score.
    Add(String, f64),
    /// Ask for the server's metrics snapshot.
    Stats,
    /// Negotiate the binary frame protocol on this connection.
    Binary,
}

/// Parse one complete line out of the accumulation buffer, if available.
/// Returns `Ok(None)` when more bytes are needed; malformed lines are an
/// error carrying a message for the `ERROR` reply.
pub fn decode_request(buf: &mut BytesMut) -> Result<Option<Request>, String> {
    let Some(pos) = buf.iter().position(|&b| b == b'\n') else {
        return Ok(None);
    };
    let line = buf.split_to(pos + 1);
    let line = std::str::from_utf8(&line[..pos]).map_err(|_| "non-utf8 request".to_string())?;
    let line = line.trim_end_matches('\r');
    if line == "STATS" {
        return Ok(Some(Request::Stats));
    }
    if line == HANDSHAKE_LINE {
        return Ok(Some(Request::Binary));
    }
    match line.split_once(' ') {
        Some(("CHECK", url)) if !url.trim().is_empty() => {
            Ok(Some(Request::Check(url.trim().to_string())))
        }
        Some(("ADD", rest)) => {
            let (url, score) = rest
                .trim()
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed request: {line:?}"))?;
            let score: f64 = score
                .parse()
                .map_err(|_| format!("bad score in {line:?}"))?;
            if url.is_empty() || !(0.0..=1.0).contains(&score) {
                return Err(format!("malformed request: {line:?}"));
            }
            Ok(Some(Request::Add(url.to_string(), score)))
        }
        _ => Err(format!("malformed request: {line:?}")),
    }
}

/// Encode a verdict reply line.
pub fn encode_verdict(v: &Verdict) -> String {
    match v {
        Verdict::Phishing(s) => format!("PHISHING {s:.4}\n"),
        Verdict::Safe(s) => format!("SAFE {s:.4}\n"),
    }
}

/// Parse a reply line into a verdict. `BUSY` (the shed response) and
/// `ERROR <msg>` both surface as errors.
pub fn decode_verdict(line: &str) -> Result<Verdict, String> {
    let line = line.trim();
    if line == "BUSY" {
        return Err("server busy".to_string());
    }
    match line.split_once(' ') {
        Some(("PHISHING", s)) => s
            .parse()
            .map(Verdict::Phishing)
            .map_err(|_| format!("bad score in {line:?}")),
        Some(("SAFE", s)) => s
            .parse()
            .map(Verdict::Safe)
            .map_err(|_| format!("bad score in {line:?}")),
        Some(("ERROR", msg)) => Err(msg.to_string()),
        _ => Err(format!("malformed reply: {line:?}")),
    }
}

// ---------------------------------------------------------------------------
// Binary frame protocol
// ---------------------------------------------------------------------------

/// A binary-protocol request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum BinRequest {
    /// Judge one URL.
    Check(String),
    /// Judge up to [`MAX_BATCH`] URLs in one frame.
    CheckN(Vec<String>),
    /// Record a URL as known phishing.
    Add(String, f64),
    /// Scrape the server's metrics.
    Stats,
}

/// A binary-protocol reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum BinReply {
    /// One verdict, answering `Check`.
    Verdict(Verdict),
    /// Batch verdicts, answering `CheckN`, in request order.
    VerdictN(Vec<Verdict>),
    /// `Add` accepted; carries the new generation.
    Ok(u64),
    /// Metrics snapshot JSON, answering `Stats`.
    Stats(String),
    /// The request was malformed or refused.
    Error(String),
    /// The request was shed by admission control; retry later.
    Busy,
}

const OP_CHECK: u8 = 0x01;
const OP_CHECKN: u8 = 0x02;
const OP_ADD: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_VERDICT: u8 = 0x81;
const OP_VERDICTN: u8 = 0x82;
const OP_OK: u8 = 0x83;
const OP_STATSR: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_BUSY: u8 = 0x86;

fn put_frame(buf: &mut BytesMut, opcode: u8, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut header = [0u8; FRAME_HEADER];
    header[0] = MAGIC;
    header[1] = opcode;
    header[2..6].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(payload);
}

fn put_url(payload: &mut Vec<u8>, url: &str) -> Result<(), String> {
    if url.len() > MAX_URL_BYTES {
        return Err(format!("url too long: {} bytes", url.len()));
    }
    payload.extend_from_slice(&(url.len() as u16).to_le_bytes());
    payload.extend_from_slice(url.as_bytes());
    Ok(())
}

/// Append the frame encoding of `req` to `buf`.
pub fn encode_bin_request(buf: &mut BytesMut, req: &BinRequest) -> Result<(), String> {
    match req {
        BinRequest::Check(url) => {
            if url.len() > MAX_FRAME_PAYLOAD {
                return Err(format!("url too long: {} bytes", url.len()));
            }
            put_frame(buf, OP_CHECK, url.as_bytes());
        }
        BinRequest::CheckN(urls) => {
            if urls.len() > MAX_BATCH {
                return Err(format!("batch of {} exceeds {MAX_BATCH}", urls.len()));
            }
            let mut payload =
                Vec::with_capacity(2 + urls.iter().map(|u| 2 + u.len()).sum::<usize>());
            payload.extend_from_slice(&(urls.len() as u16).to_le_bytes());
            for url in urls {
                put_url(&mut payload, url)?;
            }
            if payload.len() > MAX_FRAME_PAYLOAD {
                return Err("batch payload exceeds frame cap".to_string());
            }
            put_frame(buf, OP_CHECKN, &payload);
        }
        BinRequest::Add(url, score) => {
            let mut payload = Vec::with_capacity(2 + url.len() + 8);
            put_url(&mut payload, url)?;
            payload.extend_from_slice(&score.to_le_bytes());
            put_frame(buf, OP_ADD, &payload);
        }
        BinRequest::Stats => put_frame(buf, OP_STATS, &[]),
    }
    Ok(())
}

/// Append the frame encoding of `reply` to `buf`.
pub fn encode_bin_reply(buf: &mut BytesMut, reply: &BinReply) {
    fn put_verdict(payload: &mut Vec<u8>, v: &Verdict) {
        payload.push(if v.is_phishing() { 1 } else { 0 });
        payload.extend_from_slice(&v.score().to_le_bytes());
    }
    match reply {
        BinReply::Verdict(v) => {
            let mut payload = Vec::with_capacity(9);
            put_verdict(&mut payload, v);
            put_frame(buf, OP_VERDICT, &payload);
        }
        BinReply::VerdictN(vs) => {
            let mut payload = Vec::with_capacity(2 + 9 * vs.len());
            payload.extend_from_slice(&(vs.len() as u16).to_le_bytes());
            for v in vs {
                put_verdict(&mut payload, v);
            }
            put_frame(buf, OP_VERDICTN, &payload);
        }
        BinReply::Ok(generation) => put_frame(buf, OP_OK, &generation.to_le_bytes()),
        BinReply::Stats(json) => put_frame(buf, OP_STATSR, json.as_bytes()),
        BinReply::Error(msg) => {
            let truncated = &msg.as_bytes()[..msg.len().min(MAX_FRAME_PAYLOAD)];
            put_frame(buf, OP_ERROR, truncated);
        }
        BinReply::Busy => put_frame(buf, OP_BUSY, &[]),
    }
}

/// Split one complete frame's opcode + payload off the front of `buf`.
/// `Ok(None)` means the frame is still torn (incomplete); errors mean the
/// stream is unrecoverable (oversized or garbled framing) and the
/// connection should be closed after an `ERROR` reply.
fn split_frame(buf: &mut BytesMut) -> Result<Option<(u8, BytesMut)>, String> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != MAGIC {
        return Err(format!("bad frame magic 0x{:02x}", buf[0]));
    }
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(format!(
            "frame payload of {len} exceeds {MAX_FRAME_PAYLOAD}"
        ));
    }
    if buf.len() < FRAME_HEADER + len {
        return Ok(None);
    }
    let opcode = buf[1];
    let _ = buf.split_to(FRAME_HEADER);
    Ok(Some((opcode, buf.split_to(len))))
}

fn take_u16(payload: &mut BytesMut) -> Result<u16, String> {
    if payload.len() < 2 {
        return Err("truncated field in frame".to_string());
    }
    let raw = payload.split_to(2);
    Ok(u16::from_le_bytes([raw[0], raw[1]]))
}

fn take_f64(payload: &mut BytesMut) -> Result<f64, String> {
    if payload.len() < 8 {
        return Err("truncated score in frame".to_string());
    }
    let raw = payload.split_to(8);
    Ok(f64::from_le_bytes(raw[..8].try_into().unwrap()))
}

fn take_url(payload: &mut BytesMut) -> Result<String, String> {
    let len = take_u16(payload)? as usize;
    if payload.len() < len {
        return Err("truncated url in frame".to_string());
    }
    let raw = payload.split_to(len);
    String::from_utf8(raw[..].to_vec()).map_err(|_| "non-utf8 url in frame".to_string())
}

/// Decode one complete request frame off the front of `buf`, if present.
pub fn decode_bin_request(buf: &mut BytesMut) -> Result<Option<BinRequest>, String> {
    let Some((opcode, mut payload)) = split_frame(buf)? else {
        return Ok(None);
    };
    let req = match opcode {
        OP_CHECK => {
            let url = String::from_utf8(payload[..].to_vec())
                .map_err(|_| "non-utf8 url in frame".to_string())?;
            if url.is_empty() {
                return Err("empty url in CHECK frame".to_string());
            }
            BinRequest::Check(url)
        }
        OP_CHECKN => {
            let count = take_u16(&mut payload)? as usize;
            if count > MAX_BATCH {
                return Err(format!("batch of {count} exceeds {MAX_BATCH}"));
            }
            let mut urls = Vec::with_capacity(count);
            for _ in 0..count {
                urls.push(take_url(&mut payload)?);
            }
            if !payload.is_empty() {
                return Err("trailing bytes in CHECKN frame".to_string());
            }
            BinRequest::CheckN(urls)
        }
        OP_ADD => {
            let url = take_url(&mut payload)?;
            let score = take_f64(&mut payload)?;
            if url.is_empty() || !(0.0..=1.0).contains(&score) {
                return Err("malformed ADD frame".to_string());
            }
            BinRequest::Add(url, score)
        }
        OP_STATS => BinRequest::Stats,
        other => return Err(format!("unknown request opcode 0x{other:02x}")),
    };
    Ok(Some(req))
}

/// Decode one complete reply frame off the front of `buf`, if present.
pub fn decode_bin_reply(buf: &mut BytesMut) -> Result<Option<BinReply>, String> {
    fn take_verdict(payload: &mut BytesMut) -> Result<Verdict, String> {
        if payload.is_empty() {
            return Err("truncated verdict in frame".to_string());
        }
        let kind = payload.split_to(1)[0];
        let score = take_f64(payload)?;
        match kind {
            1 => Ok(Verdict::Phishing(score)),
            0 => Ok(Verdict::Safe(score)),
            other => Err(format!("unknown verdict kind {other}")),
        }
    }
    let Some((opcode, mut payload)) = split_frame(buf)? else {
        return Ok(None);
    };
    let reply = match opcode {
        OP_VERDICT => BinReply::Verdict(take_verdict(&mut payload)?),
        OP_VERDICTN => {
            let count = take_u16(&mut payload)? as usize;
            if count > MAX_BATCH {
                return Err(format!("verdict batch of {count} exceeds {MAX_BATCH}"));
            }
            let mut vs = Vec::with_capacity(count);
            for _ in 0..count {
                vs.push(take_verdict(&mut payload)?);
            }
            BinReply::VerdictN(vs)
        }
        OP_OK => {
            if payload.len() != 8 {
                return Err("malformed OK frame".to_string());
            }
            BinReply::Ok(u64::from_le_bytes(payload[..8].try_into().unwrap()))
        }
        OP_STATSR => BinReply::Stats(
            String::from_utf8(payload[..].to_vec()).map_err(|_| "non-utf8 stats".to_string())?,
        ),
        OP_ERROR => BinReply::Error(String::from_utf8_lossy(&payload).into_owned()),
        OP_BUSY => BinReply::Busy,
        other => return Err(format!("unknown reply opcode 0x{other:02x}")),
    };
    Ok(Some(reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_request_round_trip() {
        let reqs = [
            BinRequest::Check("https://a.weebly.com/x".into()),
            BinRequest::CheckN(vec![
                "https://a.wix.com/".into(),
                "https://b.wix.com/".into(),
            ]),
            BinRequest::Add("https://evil.weebly.com/".into(), 0.93),
            BinRequest::Stats,
        ];
        let mut buf = BytesMut::new();
        for r in &reqs {
            encode_bin_request(&mut buf, r).unwrap();
        }
        for r in &reqs {
            let got = decode_bin_request(&mut buf).unwrap().unwrap();
            assert_eq!(&got, r);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn bin_reply_round_trip() {
        let replies = [
            BinReply::Verdict(Verdict::Phishing(0.97)),
            BinReply::VerdictN(vec![Verdict::Safe(0.1), Verdict::Phishing(0.8)]),
            BinReply::Ok(42),
            BinReply::Stats("{\"a\":1}".into()),
            BinReply::Error("nope".into()),
            BinReply::Busy,
        ];
        let mut buf = BytesMut::new();
        for r in &replies {
            encode_bin_reply(&mut buf, r);
        }
        for r in &replies {
            let got = decode_bin_reply(&mut buf).unwrap().unwrap();
            assert_eq!(&got, r);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn torn_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_bin_request(
            &mut full,
            &BinRequest::Check("https://a.weebly.com/".into()),
        )
        .unwrap();
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(decode_bin_request(&mut partial), Ok(None), "cut at {cut}");
            assert_eq!(partial.len(), cut, "torn decode must not consume");
        }
    }

    #[test]
    fn oversized_and_garbled_frames_rejected() {
        // Declared length over the cap.
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[MAGIC, OP_CHECK]);
        buf.extend_from_slice(&((MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes());
        assert!(decode_bin_request(&mut buf).is_err());
        // Wrong magic.
        let mut buf2 = BytesMut::from(&b"CHECK x\n"[..]);
        assert!(decode_bin_request(&mut buf2).is_err());
        // Unknown opcode.
        let mut buf3 = BytesMut::new();
        buf3.extend_from_slice(&[MAGIC, 0x7f]);
        buf3.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_bin_request(&mut buf3).is_err());
        // Batch over MAX_BATCH refused at encode time too.
        let huge: Vec<String> = (0..MAX_BATCH + 1).map(|i| format!("u{i}")).collect();
        let mut buf4 = BytesMut::new();
        assert!(encode_bin_request(&mut buf4, &BinRequest::CheckN(huge)).is_err());
    }

    #[test]
    fn handshake_line_decodes() {
        let mut buf = BytesMut::from(&b"BINARY\n"[..]);
        assert_eq!(decode_request(&mut buf), Ok(Some(Request::Binary)));
        assert_eq!(decode_verdict("BUSY"), Err("server busy".to_string()));
    }
}
