//! The sharded, generation-swapped verdict index behind the evented
//! engine's read path.
//!
//! Reads are RCU-style: each shard holds an `Arc<HashMap>` behind a
//! `parking_lot::RwLock` that is only ever held long enough to clone the
//! `Arc`. A reader takes an [`IndexSnapshot`] — one `Arc` per shard plus
//! the generation — once per *batch* and resolves every URL against that
//! immutable image, so a concurrent publish never blocks or tears a
//! batch. Writers ([`ShardedIndex::publish`]) build a new map per touched
//! shard (clone-on-write) and swap the `Arc`, bumping the generation
//! once per publish.
//!
//! [`IndexPublisher`] closes the loop with the durability layer: it tails
//! a `freephish-store` directory another process is writing (the pipeline
//! run journal) and publishes each poll's decoded verdicts as one new
//! generation, without ever blocking readers. Payload decoding is a
//! caller-supplied closure so this crate stays below `freephish-core`
//! (which owns the journal record schema).

use crate::verdict::{UrlChecker, Verdict};
use freephish_store::segment::scan_buffer;
use freephish_store::TailFollower;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count; a power of two so the hash folds with a mask.
pub const DEFAULT_SHARDS: usize = 16;

type Shard = Arc<HashMap<String, f64>>;

/// A sharded, generation-swapped map from URL to phishing score.
pub struct ShardedIndex {
    shards: Vec<RwLock<Shard>>,
    mask: usize,
    generation: AtomicU64,
}

fn shard_of(url: &str, mask: usize) -> usize {
    let mut h = DefaultHasher::new();
    url.hash(&mut h);
    (h.finish() as usize) & mask
}

impl ShardedIndex {
    /// An empty index with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> ShardedIndex {
        let n = shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..n)
                .map(|_| RwLock::new(Arc::new(HashMap::new())))
                .collect(),
            mask: n - 1,
            generation: AtomicU64::new(0),
        }
    }

    /// An index with [`DEFAULT_SHARDS`] shards.
    pub fn with_default_shards() -> ShardedIndex {
        ShardedIndex::new(DEFAULT_SHARDS)
    }

    /// Publish a batch of (url, score) entries as one new generation.
    /// Touched shards are rebuilt copy-on-write and swapped; readers keep
    /// whatever snapshot they already hold. Returns the new generation.
    pub fn publish(&self, batch: impl IntoIterator<Item = (String, f64)>) -> u64 {
        let mut by_shard: HashMap<usize, Vec<(String, f64)>> = HashMap::new();
        for (url, score) in batch {
            by_shard
                .entry(shard_of(&url, self.mask))
                .or_default()
                .push((url, score));
        }
        for (shard, entries) in by_shard {
            // Hold the write lock across clone-and-swap: concurrent
            // publishers to the same shard must serialize, or the later
            // swap silently discards the earlier one's entries. Readers
            // only ever hold the lock long enough to clone the Arc.
            let mut slot = self.shards[shard].write();
            let mut next: HashMap<String, f64> = (**slot).clone();
            next.extend(entries);
            *slot = Arc::new(next);
        }
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Take a consistent read snapshot: one `Arc` clone per shard.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            shards: self.shards.iter().map(|s| s.read().clone()).collect(),
            mask: self.mask,
            generation: self.generation.load(Ordering::SeqCst),
        }
    }

    /// The exact stored score for `url`, or `None` when absent — unlike
    /// [`UrlChecker::check`], which folds a miss into `Safe(0.0)`. The
    /// overlay read path needs the distinction to fall through to its
    /// mmap baseline.
    pub fn score(&self, url: &str) -> Option<f64> {
        let shard = self.shards[shard_of(url, self.mask)].read().clone();
        shard.get(url).copied()
    }

    /// Total entries across shards (point-in-time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no URL is known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl UrlChecker for ShardedIndex {
    fn check(&self, url: &str) -> Verdict {
        let shard = self.shards[shard_of(url, self.mask)].read().clone();
        match shard.get(url) {
            Some(&score) => Verdict::Phishing(score),
            None => Verdict::Safe(0.0),
        }
    }

    fn check_many(&self, urls: &[String]) -> Vec<Verdict> {
        // One snapshot for the whole batch: every URL is judged against
        // the same generation even while publishes land concurrently.
        let snap = self.snapshot();
        urls.iter().map(|u| snap.check(u)).collect()
    }

    fn add(&self, url: &str, score: f64) -> Result<u64, String> {
        Ok(self.publish([(url.to_string(), score)]))
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

/// An immutable point-in-time image of the index.
pub struct IndexSnapshot {
    shards: Vec<Shard>,
    mask: usize,
    generation: u64,
}

impl IndexSnapshot {
    /// Judge one URL against this snapshot.
    pub fn check(&self, url: &str) -> Verdict {
        match self.shards[shard_of(url, self.mask)].get(url) {
            Some(&score) => Verdict::Phishing(score),
            None => Verdict::Safe(0.0),
        }
    }

    /// The exact stored score for `url`, or `None` when absent (see
    /// [`ShardedIndex::score`]).
    pub fn score(&self, url: &str) -> Option<f64> {
        self.shards[shard_of(url, self.mask)].get(url).copied()
    }

    /// The generation this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Decodes one journal payload into an optional (url, score) entry.
/// Non-verdict bookkeeping records return `Ok(None)`.
pub type PayloadDecoder = Box<dyn FnMut(&[u8]) -> io::Result<Option<(String, f64)>> + Send>;

/// Tails a store directory and publishes decoded verdicts into a
/// [`ShardedIndex`], one generation per non-empty poll.
pub struct IndexPublisher {
    follower: TailFollower,
    index: Arc<ShardedIndex>,
    decode: PayloadDecoder,
}

impl IndexPublisher {
    /// Follow `dir`, feeding `index` through `decode`. No I/O until the
    /// first [`IndexPublisher::poll`]; the directory may not exist yet.
    pub fn new(dir: impl AsRef<Path>, index: Arc<ShardedIndex>, decode: PayloadDecoder) -> Self {
        IndexPublisher {
            follower: TailFollower::new(dir),
            index,
            decode,
        }
    }

    /// Feed `index` from an existing follower — typically one resumed at
    /// a baked-index cursor (`TailFollower::resume`), so a restarting
    /// node publishes only the journal suffix the bake did not cover.
    pub fn with_follower(
        follower: TailFollower,
        index: Arc<ShardedIndex>,
        decode: PayloadDecoder,
    ) -> Self {
        IndexPublisher {
            follower,
            index,
            decode,
        }
    }

    /// Ingest everything journaled since the last poll and publish it as
    /// one new generation. Returns the number of entries published.
    /// Snapshot redelivery after compaction is harmless: publishing an
    /// entry twice is an idempotent overwrite.
    pub fn poll(&mut self) -> io::Result<usize> {
        let batch = self.follower.poll()?;
        let mut entries = Vec::new();
        if let Some(snapshot) = &batch.snapshot {
            let (frames, torn) = scan_buffer(snapshot);
            if torn.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal snapshot framing is corrupt",
                ));
            }
            for frame in frames {
                if let Some(entry) = (self.decode)(&frame)? {
                    entries.push(entry);
                }
            }
        }
        for payload in &batch.records {
            if let Some(entry) = (self.decode)(payload)? {
                entries.push(entry);
            }
        }
        let published = entries.len();
        if published > 0 {
            self.index.publish(entries);
        }
        Ok(published)
    }

    /// The index this publisher feeds.
    pub fn index(&self) -> Arc<ShardedIndex> {
        self.index.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_check() {
        let index = ShardedIndex::new(8);
        assert!(index.is_empty());
        let g1 = index.publish([
            ("https://a.weebly.com/".to_string(), 0.9),
            ("https://b.wixsite.com/".to_string(), 0.8),
        ]);
        assert_eq!(g1, 1);
        assert_eq!(index.len(), 2);
        assert!(index.check("https://a.weebly.com/").is_phishing());
        assert!(!index.check("https://c.weebly.com/").is_phishing());
        let verdicts = index.check_many(&[
            "https://a.weebly.com/".to_string(),
            "https://c.weebly.com/".to_string(),
            "https://b.wixsite.com/".to_string(),
        ]);
        assert!(verdicts[0].is_phishing());
        assert!(!verdicts[1].is_phishing());
        assert!(verdicts[2].is_phishing());
    }

    #[test]
    fn snapshots_are_immune_to_later_publishes() {
        let index = ShardedIndex::new(4);
        index.publish([("https://old.weebly.com/".to_string(), 0.7)]);
        let snap = index.snapshot();
        index.publish([("https://new.weebly.com/".to_string(), 0.9)]);
        // The old snapshot does not see the new entry; a fresh one does.
        assert!(!snap.check("https://new.weebly.com/").is_phishing());
        assert!(index
            .snapshot()
            .check("https://new.weebly.com/")
            .is_phishing());
        assert!(snap.generation() < index.generation());
    }

    #[test]
    fn add_bumps_generation() {
        let index = ShardedIndex::with_default_shards();
        assert_eq!(index.generation(), 0);
        let g = index.add("https://x.weebly.com/", 0.85).unwrap();
        assert_eq!(g, 1);
        assert_eq!(index.generation(), 1);
        assert!(index.check("https://x.weebly.com/").is_phishing());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let index = Arc::new(ShardedIndex::new(8));
        let mut handles = Vec::new();
        for w in 0..4 {
            let idx = index.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    idx.publish([(format!("https://w{w}-{i}.weebly.com/"), 0.9)]);
                }
            }));
        }
        for _ in 0..4 {
            let idx = index.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let urls = vec![
                        format!("https://w0-{i}.weebly.com/"),
                        format!("https://w3-{i}.weebly.com/"),
                    ];
                    let _ = idx.check_many(&urls);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(index.len(), 4 * 200);
        assert_eq!(index.generation(), 4 * 200);
    }
}
