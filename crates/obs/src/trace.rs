//! Per-request tracing with tail-based slow capture.
//!
//! Every traced request gets a [`TraceId`] and a flat span list recording
//! where its service time went (`accept`, `decode`, `lookup`, `respond`,
//! plus any `store_append` / `store_fsync` spans the durability layer
//! contributes). Traces are cheap enough to start unconditionally; what
//! gets *retained* is decided at finish time:
//!
//! * **slow capture** — a request whose total exceeds the rolling p99 of
//!   recent totals (floored at [`TraceConfig::slow_floor_secs`]) is
//!   always retained in the slow ring, served at `/traces/slow`.
//! * **sampling** — every [`TraceConfig::sample_every`]-th trace is
//!   retained in the recent ring regardless of speed, so the ops plane
//!   can show representative fast requests too.
//!
//! The rings use a lock-free claim index; each slot is a mutex around an
//! `Arc<Trace>` held only for a pointer swap, so writers never block on
//! readers for more than that.
//!
//! The active trace lives in a thread local ([`begin`] / [`span`] /
//! [`span_record`] / [`finish`]), which is exactly right for the serve
//! engines: a worker thread executes one request (batch) at a time, and
//! layers it calls into — the store's append/fsync path — can attach
//! spans without any plumbing through intermediate signatures. When no
//! trace is active every entry point is a cheap no-op.

use crate::window::WindowedHistogram;
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Globally unique (per process) trace identifier.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Identifier of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    fn next() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// One completed span inside a trace.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Stage name (`accept`, `decode`, `lookup`, `respond`,
    /// `store_append`, `store_fsync`, ...).
    pub name: &'static str,
    /// Offset of the span start from the trace start, seconds.
    pub start_secs: f64,
    /// Span duration, seconds.
    pub dur_secs: f64,
}

/// One completed, retained trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace id.
    pub id: TraceId,
    /// Command that produced it (`check`, `checkn`, `add`, ...).
    pub command: &'static str,
    /// URLs carried by the request (batch size for `checkn`).
    pub urls: u32,
    /// Total service time, seconds.
    pub total_secs: f64,
    /// True when retained by slow capture (vs. sampling).
    pub slow: bool,
    /// Spans in completion order.
    pub spans: Vec<SpanRec>,
}

impl Trace {
    /// Render as JSON (durations in microseconds — the natural unit at
    /// serve latencies).
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id.0,
            "command": self.command,
            "urls": self.urls,
            "total_us": self.total_secs * 1e6,
            "slow": self.slow,
            "spans": self.spans.iter().map(|s| json!({
                "name": s.name,
                "start_us": s.start_secs * 1e6,
                "dur_us": s.dur_secs * 1e6,
            })).collect::<Vec<_>>(),
        })
    }
}

/// An in-flight trace. Usually managed through the thread-local API
/// ([`begin`] / [`finish`]); owned usage is possible for tests.
pub struct ActiveTrace {
    id: TraceId,
    command: &'static str,
    urls: u32,
    started: Instant,
    spans: Vec<SpanRec>,
}

impl ActiveTrace {
    /// Start a trace whose clock began `started` ago (lets the caller
    /// include time spent before the trace object existed, e.g. decode).
    pub fn begin_at(command: &'static str, urls: u32, started: Instant) -> ActiveTrace {
        ActiveTrace {
            id: TraceId::next(),
            command,
            urls,
            started,
            spans: Vec::with_capacity(8),
        }
    }

    /// Append a span that ended just now and lasted `dur_secs`.
    pub fn push_span(&mut self, name: &'static str, dur_secs: f64) {
        let end = self.started.elapsed().as_secs_f64();
        self.spans.push(SpanRec {
            name,
            start_secs: (end - dur_secs).max(0.0),
            dur_secs,
        });
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Begin a trace for the current thread's in-flight request, replacing
/// any unfinished one. `started` backdates the trace clock.
pub fn begin(command: &'static str, urls: u32, started: Instant) {
    CURRENT.with(|c| *c.borrow_mut() = Some(ActiveTrace::begin_at(command, urls, started)));
}

/// True when this thread has an active trace.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Run `f` as a named span of the active trace. Without an active trace
/// this is just `f()` — no timestamps are taken.
pub fn span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !active() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    span_record(name, t0.elapsed().as_secs_f64());
    out
}

/// Attach an already-measured span (ending now) to the active trace, if
/// any. This is how layers that did their own timing — or that measured
/// work predating the trace, like socket wait — contribute spans.
pub fn span_record(name: &'static str, dur_secs: f64) {
    CURRENT.with(|c| {
        if let Some(t) = c.borrow_mut().as_mut() {
            t.push_span(name, dur_secs);
        }
    });
}

/// Finish the active trace and offer it to `store` for retention.
/// No-op when no trace is active.
pub fn finish(store: &TraceStore) {
    if let Some(t) = CURRENT.with(|c| c.borrow_mut().take()) {
        store.push(t);
    }
}

/// Abandon the active trace without retaining it.
pub fn discard() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Retention policy knobs for a [`TraceStore`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Capacity of the sampled recent-trace ring.
    pub recent_capacity: usize,
    /// Capacity of the slow-trace ring.
    pub slow_capacity: usize,
    /// Retain every Nth trace in the recent ring (1 = all, 0 = none).
    pub sample_every: u64,
    /// Totals at or below this are never classified slow, regardless of
    /// the rolling p99 (guards against capturing everything when the
    /// whole distribution is uniformly fast).
    pub slow_floor_secs: f64,
    /// Width of one rolling window feeding the p99 threshold.
    pub window_width: Duration,
    /// Number of windows in the threshold horizon.
    pub windows: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            recent_capacity: 128,
            slow_capacity: 64,
            sample_every: 64,
            slow_floor_secs: 0.0,
            window_width: Duration::from_secs(1),
            windows: 8,
        }
    }
}

/// A slot ring: lock-free claim index, per-slot pointer swap.
struct TraceRing {
    slots: Box<[Mutex<Option<Arc<Trace>>>]>,
    next: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: Arc<Trace>) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64;
        *self.slots[idx as usize].lock() = Some(trace);
    }

    fn collect(&self) -> Vec<Arc<Trace>> {
        let mut out: Vec<Arc<Trace>> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        // Newest first: ids are monotone.
        out.sort_by_key(|t| std::cmp::Reverse(t.id.0));
        out
    }
}

/// Bounded retention of completed traces; see the module docs.
pub struct TraceStore {
    recent: TraceRing,
    slow: TraceRing,
    /// Rolling distribution of request totals, feeding the p99 threshold.
    totals: WindowedHistogram,
    cfg: TraceConfig,
    started_total: AtomicU64,
    sampled_total: AtomicU64,
    slow_total: AtomicU64,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStore {
    /// A trace store with default retention policy.
    pub fn new() -> TraceStore {
        TraceStore::with_config(TraceConfig::default())
    }

    /// A trace store with an explicit retention policy.
    pub fn with_config(cfg: TraceConfig) -> TraceStore {
        TraceStore {
            recent: TraceRing::new(cfg.recent_capacity),
            slow: TraceRing::new(cfg.slow_capacity),
            totals: WindowedHistogram::wall(cfg.windows, cfg.window_width),
            cfg,
            started_total: AtomicU64::new(0),
            sampled_total: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
        }
    }

    /// The current slow threshold in seconds: the rolling p99 of request
    /// totals, floored at the config's `slow_floor_secs`. Infinite until
    /// the first total is recorded — nothing is "slow" in a vacuum.
    pub fn slow_threshold_secs(&self) -> f64 {
        self.totals
            .quantile(0.99)
            .map(|q| q.max(self.cfg.slow_floor_secs))
            .unwrap_or(f64::INFINITY)
    }

    /// Finish `active`: classify against the rolling threshold, retain
    /// where policy says, then fold its total into the rolling window.
    pub fn push(&self, active: ActiveTrace) {
        let total = active.started.elapsed().as_secs_f64();
        let n = self.started_total.fetch_add(1, Ordering::Relaxed) + 1;
        // Classify against the threshold *before* this sample joins the
        // distribution, so a new outlier cannot hide behind itself.
        let slow = total > self.slow_threshold_secs();
        self.totals.record(total);
        let sampled = self.cfg.sample_every > 0 && n.is_multiple_of(self.cfg.sample_every);
        if !slow && !sampled {
            return;
        }
        let trace = Arc::new(Trace {
            id: active.id,
            command: active.command,
            urls: active.urls,
            total_secs: total,
            slow,
            spans: active.spans,
        });
        if slow {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            self.slow.push(trace.clone());
        }
        if sampled {
            self.sampled_total.fetch_add(1, Ordering::Relaxed);
            self.recent.push(trace);
        }
    }

    /// Retained slow traces, newest first.
    pub fn slow_traces(&self) -> Vec<Arc<Trace>> {
        self.slow.collect()
    }

    /// Sampled recent traces, newest first.
    pub fn recent_traces(&self) -> Vec<Arc<Trace>> {
        self.recent.collect()
    }

    /// JSON for `/traces/slow`.
    pub fn slow_json(&self) -> Value {
        json!({
            "slow_threshold_us": finite_us(self.slow_threshold_secs()),
            "traces": self.slow_traces().iter().map(|t| t.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Inject drop/retention accounting into a metrics snapshot so the
    /// scrape surface reports it without in-process calls.
    pub fn counters_into(&self, snap: &mut crate::registry::MetricsSnapshot) {
        use crate::registry::MetricKey;
        snap.counters.insert(
            MetricKey::new("trace_requests_total", &[]),
            self.started_total.load(Ordering::Relaxed),
        );
        snap.counters.insert(
            MetricKey::new("trace_sampled_total", &[]),
            self.sampled_total.load(Ordering::Relaxed),
        );
        snap.counters.insert(
            MetricKey::new("trace_slow_captured_total", &[]),
            self.slow_total.load(Ordering::Relaxed),
        );
    }
}

fn finite_us(secs: f64) -> Value {
    if secs.is_finite() {
        json!(secs * 1e6)
    } else {
        Value::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_request(store: &TraceStore, sleep: Duration) {
        begin("check", 1, Instant::now());
        span("lookup", || std::thread::sleep(sleep));
        finish(store);
    }

    #[test]
    fn no_active_trace_is_a_noop() {
        discard();
        assert!(!active());
        let out = span("lookup", || 42);
        assert_eq!(out, 42);
        span_record("store_append", 0.001);
        let store = TraceStore::new();
        finish(&store); // nothing to finish
        assert!(store.slow_traces().is_empty());
        assert!(store.recent_traces().is_empty());
    }

    #[test]
    fn slow_outlier_is_captured_with_spans() {
        let store = TraceStore::new();
        // Build a fast baseline so the rolling p99 sits at ~micros.
        for _ in 0..50 {
            run_request(&store, Duration::ZERO);
        }
        assert!(store.slow_threshold_secs() < 0.01);
        // One outlier far beyond the p99.
        begin("checkn", 16, Instant::now());
        span_record("accept", 0.0001);
        span_record("decode", 0.0002);
        span("lookup", || std::thread::sleep(Duration::from_millis(30)));
        span_record("respond", 0.0001);
        finish(&store);
        // Under CPU contention a baseline request can also blow past the
        // rolling p99 and be captured; only the deterministic outlier is
        // asserted on.
        let slow = store.slow_traces();
        let t = slow
            .iter()
            .find(|t| t.command == "checkn")
            .expect("the outlier must be captured");
        assert!(t.slow);
        assert_eq!(t.urls, 16);
        assert!(t.total_secs >= 0.03);
        let names: Vec<_> = t.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["accept", "decode", "lookup", "respond"]);
        let json = store.slow_json();
        assert_eq!(json["traces"].as_array().unwrap().len(), slow.len());
        assert!(json["slow_threshold_us"].as_f64().is_some());
    }

    #[test]
    fn first_request_is_never_slow() {
        let store = TraceStore::new();
        assert_eq!(store.slow_threshold_secs(), f64::INFINITY);
        run_request(&store, Duration::from_millis(5));
        assert!(store.slow_traces().is_empty());
    }

    #[test]
    fn sampling_retains_every_nth() {
        let store = TraceStore::with_config(TraceConfig {
            sample_every: 10,
            ..TraceConfig::default()
        });
        for _ in 0..40 {
            run_request(&store, Duration::ZERO);
        }
        assert_eq!(store.recent_traces().len(), 4);
        let mut snap = crate::registry::MetricsSnapshot::empty();
        store.counters_into(&mut snap);
        assert_eq!(snap.counter("trace_requests_total", &[]), 40);
        assert_eq!(snap.counter("trace_sampled_total", &[]), 4);
    }

    #[test]
    fn slow_ring_is_bounded() {
        let store = TraceStore::with_config(TraceConfig {
            slow_capacity: 4,
            sample_every: 0,
            ..TraceConfig::default()
        });
        for _ in 0..30 {
            run_request(&store, Duration::ZERO);
        }
        for _ in 0..10 {
            run_request(&store, Duration::from_millis(8));
        }
        let slow = store.slow_traces();
        assert!(slow.len() <= 4, "ring overflowed: {}", slow.len());
        // Newest first.
        for pair in slow.windows(2) {
            assert!(pair[0].id.0 > pair[1].id.0);
        }
    }
}
