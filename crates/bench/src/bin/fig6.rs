//! Figure 6: cumulative blocklist coverage over time (3h … 168h) for the
//! four blocklists, FWB vs self-hosted populations.

use freephish_bench::harness::{full_measurement, scale_from_env, write_json};
use freephish_bench::TableWriter;
use freephish_core::analysis::{entity_curve, Entity, CURVE_CHECKPOINT_HOURS};
use freephish_ecosim::BlocklistKind;

fn main() {
    let scale = scale_from_env();
    let m = full_measurement(scale, 0x7ab1e6);

    println!("\nFigure 6 — blocklist coverage vs time since first appearance\n");
    let mut headers = vec!["Blocklist".to_string(), "Population".to_string()];
    headers.extend(CURVE_CHECKPOINT_HOURS.iter().map(|h| format!("{h}h")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = TableWriter::new(&header_refs);
    let mut json_rows = Vec::new();
    for kind in BlocklistKind::ALL {
        for (label, fwb_pop) in [("FWB", true), ("self-hosted", false)] {
            let curve = entity_curve(&m.observations, Entity::Blocklist(kind), fwb_pop);
            let mut row = vec![kind.to_string(), label.to_string()];
            row.extend(curve.iter().map(|&(_, f)| format!("{:.0}%", f * 100.0)));
            t.row(row);
            json_rows.push(serde_json::json!({
                "blocklist": kind.to_string(),
                "population": label,
                "curve": curve.iter().map(|&(h, f)| serde_json::json!([h, f])).collect::<Vec<_>>(),
            }));
        }
    }
    t.print();
    println!("\nPaper shape: GSB reaches ~60% of self-hosted URLs inside 3h but only");
    println!("~11% of FWB URLs; every list's FWB curve sits far below its");
    println!("self-hosted curve at every checkpoint.");

    write_json(
        "fig6",
        &serde_json::json!({ "experiment": "fig6", "scale": scale, "series": json_rows }),
    );
}
