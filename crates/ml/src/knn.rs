//! k-nearest-neighbour search over dense vectors.
//!
//! Powers the VisualPhishNet-style baseline: the original learns a visual
//! embedding with a triplet network and classifies by similarity to a
//! gallery of protected-brand screenshots. The offline equivalent computes
//! a layout-signature vector per rendered page (see
//! `freephish-core::models::visual`) and nearest-neighbour matches against
//! brand prototypes — same decision rule, simulated embedding.

/// Distance metric for neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Straight-line distance.
    Euclidean,
    /// 1 − cosine similarity (0 for parallel vectors).
    Cosine,
}

/// A brute-force k-NN index with labelled vectors.
#[derive(Debug, Clone)]
pub struct Knn {
    metric: Metric,
    vectors: Vec<Vec<f64>>,
    labels: Vec<u32>,
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - (dot / (na * nb)).clamp(-1.0, 1.0)
}

impl Knn {
    /// An empty index.
    pub fn new(metric: Metric) -> Self {
        Knn {
            metric,
            vectors: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Add a labelled vector. All vectors must share a dimension.
    pub fn add(&mut self, vector: Vec<f64>, label: u32) {
        if let Some(first) = self.vectors.first() {
            assert_eq!(first.len(), vector.len(), "dimension mismatch");
        }
        self.vectors.push(vector);
        self.labels.push(label);
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            Metric::Euclidean => euclidean(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }

    /// The `k` nearest (label, distance) pairs, ascending by distance.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut scored: Vec<(u32, f64)> = self
            .vectors
            .iter()
            .zip(&self.labels)
            .map(|(v, &l)| (l, self.dist(query, v)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.truncate(k);
        scored
    }

    /// Majority label among the `k` nearest, with the nearest neighbour
    /// breaking ties. `None` on an empty index.
    pub fn classify(&self, query: &[f64], k: usize) -> Option<u32> {
        let near = self.nearest(query, k);
        if near.is_empty() {
            return None;
        }
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for (l, _) in &near {
            match counts.iter_mut().find(|(cl, _)| cl == l) {
                Some((_, c)) => *c += 1,
                None => counts.push((*l, 1)),
            }
        }
        let max = counts.iter().map(|&(_, c)| c).max().unwrap();
        let tied: Vec<u32> = counts
            .iter()
            .filter(|&&(_, c)| c == max)
            .map(|&(l, _)| l)
            .collect();
        if tied.len() == 1 {
            Some(tied[0])
        } else {
            near.iter().find(|(l, _)| tied.contains(l)).map(|(l, _)| *l)
        }
    }

    /// Distance from `query` to the nearest stored vector with the given
    /// label; `None` if that label is absent. VisualPhishNet's decision is
    /// "minimum distance to any screenshot of the suspected brand".
    pub fn min_distance_to_label(&self, query: &[f64], label: u32) -> Option<f64> {
        self.vectors
            .iter()
            .zip(&self.labels)
            .filter(|(_, &l)| l == label)
            .map(|(v, _)| self.dist(query, v))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> Knn {
        let mut k = Knn::new(Metric::Euclidean);
        k.add(vec![0.0, 0.0], 0);
        k.add(vec![0.1, 0.1], 0);
        k.add(vec![5.0, 5.0], 1);
        k.add(vec![5.1, 4.9], 1);
        k
    }

    #[test]
    fn nearest_sorted_ascending() {
        let k = index();
        let n = k.nearest(&[0.0, 0.0], 4);
        assert_eq!(n.len(), 4);
        for w in n.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(n[0].0, 0);
    }

    #[test]
    fn classify_majority() {
        let k = index();
        assert_eq!(k.classify(&[0.2, 0.0], 3), Some(0));
        assert_eq!(k.classify(&[4.8, 5.2], 3), Some(1));
    }

    #[test]
    fn classify_tie_breaks_to_nearest() {
        let k = index();
        // k=2 around the midpoint: one of each label; nearest wins.
        let got = k.classify(&[1.0, 1.0], 2).unwrap();
        assert_eq!(got, 0);
    }

    #[test]
    fn empty_index_returns_none() {
        let k = Knn::new(Metric::Cosine);
        assert!(k.classify(&[1.0], 3).is_none());
        assert!(k.is_empty());
    }

    #[test]
    fn min_distance_to_label() {
        let k = index();
        let d0 = k.min_distance_to_label(&[0.0, 0.0], 0).unwrap();
        assert!(d0 < 0.01);
        let d1 = k.min_distance_to_label(&[0.0, 0.0], 1).unwrap();
        assert!(d1 > 6.0);
        assert!(k.min_distance_to_label(&[0.0, 0.0], 9).is_none());
    }

    #[test]
    fn cosine_metric_ignores_magnitude() {
        let mut k = Knn::new(Metric::Cosine);
        k.add(vec![1.0, 0.0], 0);
        k.add(vec![0.0, 1.0], 1);
        // A long vector along x is still nearest to label 0.
        assert_eq!(k.classify(&[100.0, 1.0], 1), Some(0));
    }

    #[test]
    fn cosine_zero_vector_is_far() {
        let mut k = Knn::new(Metric::Cosine);
        k.add(vec![1.0, 0.0], 0);
        let n = k.nearest(&[0.0, 0.0], 1);
        assert_eq!(n[0].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut k = Knn::new(Metric::Euclidean);
        k.add(vec![1.0, 2.0], 0);
        k.add(vec![1.0], 1);
    }
}
