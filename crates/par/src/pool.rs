//! The scoped worker pool: chunk-claiming `par_map` with ordered results.
//!
//! Work is split into chunks of a few items; workers claim chunks off a
//! shared atomic cursor (dynamic load balancing — tag sweeps have wildly
//! uneven per-item cost) and return `(chunk_start, results)` pairs, which
//! the caller reassembles in input order. Panics in worker closures
//! propagate to the caller through `join`.

use crate::metrics;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Target chunks per worker: enough granularity to balance uneven items
/// without paying a cursor round-trip per item.
const CHUNKS_PER_WORKER: usize = 8;

/// Map `f` over `items` on the configured worker pool (see
/// [`crate::configured_threads`]), returning results in input order.
///
/// Determinism: for a pure `f`, the output is identical at every thread
/// count — `FREEPHISH_THREADS=1` runs the exact serial `iter().map()`
/// path, and any parallel run computes each index exactly once.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, t| f(t))
}

/// [`par_map`] with an explicit thread count, bypassing the environment.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(threads, items, |_, t| f(t))
}

/// Map `f(index, &item)` over `items` in input order on the configured pool.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed_with(crate::configured_threads(), items, f)
}

/// Map `f(index)` over `0..n` in order on the configured pool — the
/// row-sweep shape the ML scorers use.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // A unit slice carries the length; the closure only needs the index.
    let items: Vec<()> = vec![(); n];
    par_map_indexed(&items, |i, ()| f(i))
}

/// The general form: explicit thread count, indexed closure, ordered output.
pub fn par_map_indexed_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let m = metrics();
    m.threads_configured.set(threads.max(1) as i64);
    m.tasks.add(n as u64);

    // The determinism contract's serial leg: one thread (or nothing to
    // gain from fan-out) runs the plain iterator map, no pool at all.
    if threads <= 1 || n <= 1 {
        m.serial_jobs.inc();
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    m.jobs.inc();

    let workers = threads.min(n);
    let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let n_chunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);

    let mut parts: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    m.workers_busy.inc();
                    let mut out: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        m.queue_depth.record((n_chunks - c - 1) as f64);
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        let mut results = Vec::with_capacity(end - start);
                        for (i, item) in items[start..end].iter().enumerate() {
                            results.push(f(start + i, item));
                        }
                        out.push((start, results));
                    }
                    m.workers_busy.dec();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par worker panicked"))
            .collect()
    });

    // Reassemble in input order: chunk starts are unique, so an unstable
    // sort is deterministic.
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_thread_override;

    #[test]
    fn ordered_results_match_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_with(threads, &items, |x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn indexed_sees_correct_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed_with(4, &items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn range_map() {
        let out = with_thread_override(4, || par_map_range(100, |i| i * 2));
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[7u32], |x| *x + 1), vec![8]);
    }

    #[test]
    fn override_is_scoped() {
        assert_eq!(with_thread_override(3, crate::configured_threads), 3);
        let nested = with_thread_override(3, || with_thread_override(1, crate::configured_threads));
        assert_eq!(nested, 1);
    }

    #[test]
    fn uneven_chunks_cover_everything() {
        // n not divisible by chunk size, workers > chunks, etc.
        for n in [2usize, 3, 17, 63, 64, 65, 255] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map_with(8, &items, |x| x + 1);
            assert_eq!(out, (1..=n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "par worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        par_map_with(4, &items, |x| {
            assert!(*x < 63, "boom");
            *x
        });
    }

    #[test]
    fn metrics_accumulate() {
        let before = crate::metrics_snapshot();
        let items: Vec<u32> = (0..100).collect();
        par_map_with(4, &items, |x| *x);
        par_map_with(1, &items, |x| *x);
        let after = crate::metrics_snapshot();
        let count = |s: &freephish_obs::MetricsSnapshot, name: &str| s.counter(name, &[]);
        assert!(count(&after, "par_tasks_total") >= count(&before, "par_tasks_total") + 200);
        assert!(count(&after, "par_jobs_total") > count(&before, "par_jobs_total"));
        assert!(count(&after, "par_serial_jobs_total") > count(&before, "par_serial_jobs_total"));
    }
}
