//! Ground-truth corpus construction (Section 4.2, "Ground truth
//! collection").
//!
//! The paper trains on 4,656 manually verified phishing URLs from the D1
//! dataset plus an equal number of manually verified benign FWB sites. The
//! reproduction builds the same corpus synthetically: phishing sites drawn
//! across the FWB mix with the Section 3 evasion-feature rates (44.7%
//! noindex, roughly half obfuscating the banner) and a small share of
//! Section 5.5 evasive variants; benign sites over mundane topics.

use crate::features::{FeatureSet, FeatureVector};
use freephish_htmlparse::parse;
use freephish_ml::Dataset;
use freephish_simclock::{Rng64, Zipf};
use freephish_urlparse::Url;
use freephish_webgen::page::{benign_site_name, phishy_site_name, BENIGN_TOPICS};
use freephish_webgen::{FwbKind, GeneratedSite, PageKind, PageSpec, ALL_FWBS, BRANDS};

/// Corpus parameters.
#[derive(Debug, Clone)]
pub struct GroundTruthConfig {
    /// Number of phishing examples (paper: 4,656).
    pub n_phish: usize,
    /// Number of benign examples (paper: 4,656).
    pub n_benign: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            n_phish: 4656,
            n_benign: 4656,
            seed: 0xD1,
        }
    }
}

impl GroundTruthConfig {
    /// A small corpus for fast tests.
    pub fn tiny() -> Self {
        GroundTruthConfig {
            n_phish: 250,
            n_benign: 250,
            seed: 0xD1,
        }
    }
}

/// One labelled example.
#[derive(Debug, Clone)]
pub struct LabeledSite {
    /// The generated site.
    pub site: GeneratedSite,
    /// 1 = phishing, 0 = benign.
    pub label: u8,
}

/// Sample an FWB weighted by how often attackers abuse it.
fn sample_fwb(rng: &mut Rng64) -> FwbKind {
    let weights: Vec<f64> = ALL_FWBS.iter().map(|d| d.paper_url_count as f64).collect();
    ALL_FWBS[rng.choose_weighted(&weights)].kind
}

/// Build one phishing site spec.
pub fn phishing_spec(rng: &mut Rng64, brand_zipf: &Zipf, seed: u64) -> PageSpec {
    let fwb = sample_fwb(rng);
    let brand = brand_zipf.sample(rng);
    // Section 5.5: a minority of attacks carry no credential fields.
    let kind = match rng.f64() {
        x if x < 0.80 => PageKind::CredentialPhish { brand },
        x if x < 0.88 => PageKind::TwoStep {
            brand,
            target_url: format!("https://{}-portal.top/login", BRANDS[brand].token),
        },
        x if x < 0.93 => PageKind::IframeEmbed {
            brand,
            iframe_url: format!("https://{}-frame.icu/embed", BRANDS[brand].token),
        },
        _ => PageKind::DriveBy {
            brand,
            payload_url: format!("https://cdn-{}.click/payload.iso", BRANDS[brand].token),
        },
    };
    // Evasive operators are the stealth-conscious ones: mostly opaque
    // names, heavier use of noindex and banner hiding (the two signals only
    // the augmented feature set can see).
    let evasive = kind.is_evasive();
    let site_name = if evasive && rng.chance(0.85) {
        let len = 9 + rng.index(5);
        freephish_webgen::template::rand_token(rng, len)
    } else {
        phishy_site_name(&BRANDS[brand], rng)
    };
    PageSpec {
        fwb,
        kind,
        site_name,
        noindex: rng.chance(if evasive { 0.62 } else { 0.40 }),
        obfuscate_banner: rng.chance(if evasive { 0.72 } else { 0.47 }),
        seed,
    }
}

/// Build one benign site spec. About 15% are brand-adjacent (fan pages,
/// setup guides) — the benign class that trips brand-keyed detectors.
pub fn benign_spec(rng: &mut Rng64, seed: u64) -> PageSpec {
    let fwb = sample_fwb(rng);
    let (kind, site_name) = if rng.chance(0.15) {
        let brand = rng.index(BRANDS.len());
        // Half of fan sites name themselves after the brand; the rest use
        // scene vocabulary or opaque handles, like phishing sites do.
        let name = if rng.chance(0.5) {
            let style = *rng.choose(&["fans", "guide", "tips", "review"]);
            format!("{}-{style}", BRANDS[brand].token)
        } else {
            let word = *rng.choose(&[
                "streamwatchers",
                "dealhunters-blog",
                "techreview-corner",
                "setup-helpdesk",
                "gadget-notes",
            ]);
            format!("{word}{}", rng.range_u64(1, 999))
        };
        (PageKind::BenignFan { brand }, name)
    } else {
        let topic = rng.index(BENIGN_TOPICS.len());
        (PageKind::Benign { topic }, benign_site_name(topic, rng))
    };
    PageSpec {
        fwb,
        kind,
        site_name,
        // Legitimate small sites rarely opt out of indexing or fight the
        // banner.
        noindex: rng.chance(0.03),
        obfuscate_banner: rng.chance(0.02),
        seed,
    }
}

/// Build the labelled corpus.
pub fn build(config: &GroundTruthConfig) -> Vec<LabeledSite> {
    let mut rng = Rng64::new(config.seed);
    let zipf = Zipf::new(BRANDS.len(), 1.05);
    let mut out = Vec::with_capacity(config.n_phish + config.n_benign);
    for i in 0..config.n_phish {
        let spec = phishing_spec(&mut rng, &zipf, config.seed.wrapping_add(i as u64));
        out.push(LabeledSite {
            site: spec.generate(),
            label: 1,
        });
    }
    for i in 0..config.n_benign {
        let spec = benign_spec(&mut rng, config.seed.wrapping_add(0x10_0000 + i as u64));
        out.push(LabeledSite {
            site: spec.generate(),
            label: 0,
        });
    }
    rng.shuffle(&mut out);
    out
}

/// Featurise a labelled corpus into an ML dataset.
pub fn to_dataset(sites: &[LabeledSite], set: FeatureSet) -> Dataset {
    let mut data = Dataset::new(FeatureVector::feature_names(set));
    for ls in sites {
        let url = Url::parse(&ls.site.url).expect("generated URLs parse");
        let doc = parse(&ls.site.html);
        let v = FeatureVector::extract(set, &url, &doc);
        data.push(v.values, ls.label);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_and_balance() {
        let corpus = build(&GroundTruthConfig::tiny());
        assert_eq!(corpus.len(), 500);
        let phish = corpus.iter().filter(|l| l.label == 1).count();
        assert_eq!(phish, 250);
    }

    #[test]
    fn corpus_is_shuffled() {
        let corpus = build(&GroundTruthConfig::tiny());
        // Not all phishing first: the first 250 entries contain both labels.
        let head_benign = corpus[..250].iter().filter(|l| l.label == 0).count();
        assert!(head_benign > 50);
    }

    #[test]
    fn phishing_specs_have_evasion_rates() {
        let mut rng = Rng64::new(1);
        let zipf = Zipf::new(BRANDS.len(), 1.05);
        let specs: Vec<PageSpec> = (0..2000)
            .map(|i| phishing_spec(&mut rng, &zipf, i))
            .collect();
        let noindex = specs.iter().filter(|s| s.noindex).count() as f64 / 2000.0;
        assert!((0.40..0.50).contains(&noindex), "noindex rate {noindex}");
        let evasive = specs.iter().filter(|s| s.kind.is_evasive()).count() as f64 / 2000.0;
        assert!((0.14..0.27).contains(&evasive), "evasive rate {evasive}");
    }

    #[test]
    fn dataset_round_trip() {
        let corpus = build(&GroundTruthConfig {
            n_phish: 40,
            n_benign: 40,
            seed: 9,
        });
        let data = to_dataset(&corpus, FeatureSet::Augmented);
        assert_eq!(data.len(), 80);
        assert_eq!(data.n_features(), 20);
        assert!((data.positive_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let a = build(&GroundTruthConfig::tiny());
        let b = build(&GroundTruthConfig::tiny());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.site.url == y.site.url && x.label == y.label));
    }

    #[test]
    fn fwb_mix_tracks_abuse_weights() {
        let corpus = build(&GroundTruthConfig {
            n_phish: 2000,
            n_benign: 0,
            seed: 3,
        });
        let weebly = corpus
            .iter()
            .filter(|l| l.site.spec.fwb == FwbKind::Weebly)
            .count();
        let hpage = corpus
            .iter()
            .filter(|l| l.site.spec.fwb == FwbKind::Hpage)
            .count();
        assert!(weebly > hpage * 10, "weebly={weebly} hpage={hpage}");
    }
}
