//! Section 3 characterization: the population statistics that explain *why*
//! FWB phishing evades the ecosystem.
//!
//! Given a set of FWB phishing sites (and the world's registries), this
//! module computes the numbers Section 3 reports: the share hosted on
//! `.com` FWBs (89%), the WHOIS median domain age (13.7 years vs 71 days
//! for self-hosted), the `noindex` rate (44.7%), the search-index rate
//! (4.1%), CT-log invisibility (100%), and banner-obfuscation prevalence.

use crate::world::World;
use freephish_htmlparse::parse;
use freephish_simclock::stats::median_u64;
use freephish_urlparse::{Host, Url};
use freephish_webgen::fwb::UrlShape;
use freephish_webgen::GeneratedSite;

/// The Section 3 report.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Sites analysed.
    pub n: usize,
    /// Fraction on FWBs that give a free `.com` registrable domain.
    pub on_com_tld: f64,
    /// Median WHOIS age, days (resolves to the FWB's domain).
    pub median_domain_age_days: Option<u64>,
    /// Fraction with a robots-noindex meta tag.
    pub noindex_rate: f64,
    /// Fraction present in the search index.
    pub indexed_rate: f64,
    /// Fraction whose host appears in the CT log (FWB sites inherit the
    /// service certificate, so this is 0).
    pub ct_visible_rate: f64,
    /// Fraction that hide the FWB banner (among sites on banner-carrying
    /// services).
    pub banner_obfuscation_rate: f64,
}

/// Per-site facts gathered by one parallel worker, reduced serially below.
/// Keeping the reduction serial (and in input order) makes the report
/// identical at every thread count — `ages` feeds a median, so even its
/// ordering is preserved.
struct SiteFacts {
    on_com: bool,
    age: Option<u64>,
    ct_visible: bool,
    noindex: bool,
    indexed: bool,
    bannered: bool,
    obfuscated: bool,
}

/// Characterize a set of FWB-hosted sites at observation day `now_day`.
/// Per-site work (URL parse, HTML parse, registry probes) fans out across
/// the `freephish-par` pool; the counting reduce stays serial.
pub fn characterize(world: &World, sites: &[GeneratedSite], now_day: u64) -> Characterization {
    let n = sites.len();
    let facts = freephish_par::par_map(sites, |s| {
        let d = s.spec.fwb.descriptor();
        let (age, ct_visible) = match Url::parse(&s.url) {
            Ok(url) => match url.host() {
                Host::Domain(host) => (
                    world.whois.age_days(host, now_day),
                    world.ctlog.covers_host(host),
                ),
                _ => (None, false),
            },
            Err(_) => (None, false),
        };
        let doc = parse(&s.html);
        SiteFacts {
            on_com: d.offers_com_tld,
            age,
            ct_visible,
            noindex: doc.has_noindex_meta(),
            indexed: world.search.contains(&s.url),
            bannered: d.has_banner,
            obfuscated: d.has_banner && crate::features::has_obfuscated_banner(&doc),
        }
    });

    let mut on_com = 0usize;
    let mut ages = Vec::new();
    let mut noindex = 0usize;
    let mut indexed = 0usize;
    let mut ct_visible = 0usize;
    let mut bannered = 0usize;
    let mut obfuscated = 0usize;
    for f in facts {
        on_com += usize::from(f.on_com);
        if let Some(age) = f.age {
            ages.push(age);
        }
        ct_visible += usize::from(f.ct_visible);
        noindex += usize::from(f.noindex);
        indexed += usize::from(f.indexed);
        bannered += usize::from(f.bannered);
        obfuscated += usize::from(f.obfuscated);
    }

    let frac = |x: usize| if n == 0 { 0.0 } else { x as f64 / n as f64 };
    Characterization {
        n,
        on_com_tld: frac(on_com),
        median_domain_age_days: median_u64(&ages),
        noindex_rate: frac(noindex),
        indexed_rate: frac(indexed),
        ct_visible_rate: frac(ct_visible),
        banner_obfuscation_rate: if bannered == 0 {
            0.0
        } else {
            obfuscated as f64 / bannered as f64
        },
    }
}

/// Median WHOIS age of the self-hosted population at day `now_day` — the
/// paper's 71-day contrast number.
pub fn self_hosted_median_age(world: &World, now_day: u64) -> Option<u64> {
    let ages: Vec<u64> = world
        .self_hosted
        .sites()
        .iter()
        .filter_map(|s| world.whois.age_days(&s.domain, now_day))
        .collect();
    median_u64(&ages)
}

/// Does `url`'s path-based FWB shape hide it from registrable-domain
/// blocklisting? (Path-based services like Google Sites put every attack
/// under one host, so domain-level blocking would break the whole service.)
pub fn is_collateral_protected(url: &str) -> bool {
    freephish_webgen::FwbKind::classify_url(url)
        .map(|k| k.descriptor().url_shape == UrlShape::PathBased)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{self, CampaignConfig, RecordClass};
    use crate::world::World;

    fn characterized() -> (Characterization, Option<u64>) {
        let mut world = World::new(11);
        let records = campaign::run(
            &CampaignConfig {
                scale: 0.03,
                days: 60,
                benign_fraction: 0.0,
                seed: 11,
            },
            &mut world,
        );
        // Rebuild the generated sites for the FWB phishing records.
        let sites: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.class, RecordClass::FwbPhish(_)))
            .filter_map(|r| {
                let fwb = match r.class {
                    RecordClass::FwbPhish(f) => f,
                    _ => unreachable!(),
                };
                world
                    .host(fwb)
                    .site_by_url(&r.url)
                    .map(|id| world.host(fwb).site(id).site.clone())
            })
            .collect();
        let c = characterize(&world, &sites, 60);
        let sh = self_hosted_median_age(&world, 60);
        (c, sh)
    }

    #[test]
    fn section3_statistics_reproduced() {
        let (c, sh_age) = characterized();
        assert!(c.n > 700);
        // ~89% on .com FWBs.
        assert!(
            (0.80..0.97).contains(&c.on_com_tld),
            "com rate {}",
            c.on_com_tld
        );
        // Median domain age in years ≈ 13.7 (paper) — ours should be a
        // decade-plus because the hosting FWBs are old.
        let age = c.median_domain_age_days.unwrap();
        assert!(age > 3650, "median age {age} days");
        // noindex ≈ 44.7%.
        assert!(
            (0.38..0.52).contains(&c.noindex_rate),
            "noindex {}",
            c.noindex_rate
        );
        // Indexed ≈ 4.1%.
        assert!(c.indexed_rate < 0.09, "indexed {}", c.indexed_rate);
        // CT invisibility is structural: zero FWB sites visible.
        assert_eq!(c.ct_visible_rate, 0.0);
        // Banner obfuscation ≈ 52% of bannered sites.
        assert!((0.40..0.64).contains(&c.banner_obfuscation_rate));
        // Self-hosted median age is days-young.
        let sh = sh_age.unwrap();
        assert!(sh < 120, "self-hosted median age {sh}");
        assert!(age > sh * 30);
    }

    #[test]
    fn characterization_bit_identical_across_thread_counts() {
        let (c1, _) = freephish_par::with_thread_override(1, characterized);
        let (c8, _) = freephish_par::with_thread_override(8, characterized);
        assert_eq!(c1.n, c8.n);
        assert_eq!(c1.on_com_tld.to_bits(), c8.on_com_tld.to_bits());
        assert_eq!(c1.median_domain_age_days, c8.median_domain_age_days);
        assert_eq!(c1.noindex_rate.to_bits(), c8.noindex_rate.to_bits());
        assert_eq!(c1.indexed_rate.to_bits(), c8.indexed_rate.to_bits());
        assert_eq!(c1.ct_visible_rate.to_bits(), c8.ct_visible_rate.to_bits());
        assert_eq!(
            c1.banner_obfuscation_rate.to_bits(),
            c8.banner_obfuscation_rate.to_bits()
        );
    }

    #[test]
    fn collateral_protection_for_path_based() {
        assert!(is_collateral_protected(
            "https://sites.google.com/view/fake-login"
        ));
        assert!(!is_collateral_protected("https://evil.weebly.com/"));
        assert!(!is_collateral_protected("https://nonfwb.example.com/"));
    }

    #[test]
    fn empty_population() {
        let world = World::new(12);
        let c = characterize(&world, &[], 10);
        assert_eq!(c.n, 0);
        assert_eq!(c.on_com_tld, 0.0);
        assert!(c.median_domain_age_days.is_none());
    }
}
