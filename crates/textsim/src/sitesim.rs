//! The Appendix-A website code-similarity algorithm.
//!
//! The per-tag inner loop runs on the Myers bit-parallel kernel through a
//! single scratch buffer hoisted over the whole sweep, and
//! [`site_similarity_pairs`] fans a batch of site pairs out over the
//! `freephish-par` worker pool (each worker thread reuses its own
//! thread-local scratch), keeping results in input order.

use crate::levenshtein::{distance_bounded_with, distance_with, with_scratch, MyersScratch};

/// Per-tag best similarity: for tag `t`, the maximum normalised similarity
/// against any tag in `others` (i.e. the tag with the minimum Levenshtein
/// distance, converted to a percentage). Returns 0 when `others` is empty.
fn best_tag_similarity(scratch: &mut MyersScratch, t: &str, others: &[String]) -> f64 {
    let mut best_d = usize::MAX;
    let mut best_len = t.len().max(1);
    for o in others {
        // Anything at or above the current best distance can bail early.
        let bound = best_d.saturating_sub(1).min(t.len().max(o.len()));
        let d = if best_d == usize::MAX {
            Some(distance_with(scratch, t, o))
        } else {
            distance_bounded_with(scratch, t, o, bound)
        };
        if let Some(d) = d {
            if d < best_d {
                best_d = d;
                best_len = t.len().max(o.len()).max(1);
                if best_d == 0 {
                    break;
                }
            }
        }
    }
    if best_d == usize::MAX {
        return 0.0;
    }
    100.0 * (1.0 - best_d as f64 / best_len as f64)
}

/// `sim(A→B)`: median over A's tags of the per-tag best similarity against
/// B's tags. Returns 0 when A is empty.
pub fn tag_similarity_one_way(a_tags: &[String], b_tags: &[String]) -> f64 {
    if a_tags.is_empty() {
        return 0.0;
    }
    let mut sims: Vec<f64> = with_scratch(|scratch| {
        a_tags
            .iter()
            .map(|t| best_tag_similarity(scratch, t, b_tags))
            .collect()
    });
    sims.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sims[(sims.len() - 1) / 2]
}

/// The symmetric Appendix-A similarity: mean of `sim(A→B)` and `sim(B→A)`,
/// in [0, 100].
pub fn site_similarity(a_tags: &[String], b_tags: &[String]) -> f64 {
    (tag_similarity_one_way(a_tags, b_tags) + tag_similarity_one_way(b_tags, a_tags)) / 2.0
}

/// [`site_similarity`] over a batch of pairs, fanned out across the
/// worker pool. Results are in input order and bit-identical to the
/// serial sweep at any `FREEPHISH_THREADS` (the per-pair computation is
/// pure).
pub fn site_similarity_pairs(pairs: &[(Vec<String>, Vec<String>)]) -> Vec<f64> {
    freephish_par::par_map(pairs, |(a, b)| site_similarity(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sites_are_100() {
        let a = tags(&["<div class=\"x\">", "<p>", "<input type=\"text\">"]);
        assert_eq!(site_similarity(&a, &a), 100.0);
    }

    #[test]
    fn disjoint_sites_are_low() {
        let a = tags(&["<aaaa>", "<bbbb>"]);
        let b = tags(&["<zzzzzzzzzz qqq=\"1\">"]);
        assert!(site_similarity(&a, &b) < 40.0);
    }

    #[test]
    fn empty_side_yields_zero_direction() {
        let a = tags(&["<p>"]);
        let empty: Vec<String> = vec![];
        assert_eq!(tag_similarity_one_way(&empty, &a), 0.0);
        assert_eq!(tag_similarity_one_way(&a, &empty), 0.0);
        assert_eq!(site_similarity(&a, &empty), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = tags(&["<div>", "<p class=\"intro\">", "<img src=\"a.png\">"]);
        let b = tags(&["<div class=\"hero\">", "<p>", "<form action=\"/x\">"]);
        assert_eq!(site_similarity(&a, &b), site_similarity(&b, &a));
    }

    #[test]
    fn shared_template_dominates() {
        // Two sites sharing a large template skeleton but differing in one
        // content tag score high — the Table 1 phenomenon.
        let template = [
            "<html>",
            "<head>",
            "<meta charset=\"utf-8\">",
            "<link rel=\"stylesheet\" href=\"/site.css\">",
            "<body class=\"w-body\">",
            "<div class=\"w-container\">",
            "<footer class=\"w-footer-banner\">",
        ];
        let mut a: Vec<String> = template.iter().map(|s| s.to_string()).collect();
        let mut b = a.clone();
        a.push("<h1 class=\"garden\">".to_string());
        b.push("<form action=\"https://evil/collect\">".to_string());
        let sim = site_similarity(&a, &b);
        assert!(sim > 85.0, "sim={sim}");
    }

    #[test]
    fn one_way_uses_median_not_mean() {
        // Three tags: two perfect matches, one complete miss. Median = 100.
        let a = tags(&["<p>", "<div>", "<qqqqqqqqqqqq>"]);
        let b = tags(&["<p>", "<div>"]);
        assert_eq!(tag_similarity_one_way(&a, &b), 100.0);
    }
}
